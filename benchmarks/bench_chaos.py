"""Chaos soak: the fleet under a deterministic all-kinds fault plan.

PR 7 proved the fleet serves a bursty trace bitwise-correctly when
nothing goes wrong; this benchmark is the other half of the resilience
story (``docs/fleet.md``, "Resilience").  One fleet, three phases:

* **pre** — a clean bursty trace at full drain rate: the throughput
  baseline, zero failures tolerated;
* **fault** — :meth:`PumaFleet.arm_chaos` arms a plan touching all
  seven fault kinds (drop, delay, error — clean 5xx *and* garbage
  200 —, hang, crash, slow, corrupt_blob) against live traffic
  carrying end-to-end deadlines.  The soak's invariants:

  - every completed (200) response is **bitwise identical** to the
    single-engine reference — faults may slow or fail requests, never
    corrupt an answer;
  - every failure is **typed**: a 429/503/504 with a machine-readable
    reason.  Zero client-side timeouts, zero dropped front-door
    connections — the fleet never goes silent;
  - every armed fault kind actually **fired** (the injector ledgers
    prove coverage, plus a respawn for the crash);

* **post** — after the windows close and the crashed worker's
  replacement warm-starts, the same clean trace again: zero failures,
  and throughput at >= 80% of the pre-fault baseline (the CI floor,
  gated on usable CPUs like ``bench_fleet.py``).

Everything is seeded — the plan, the traces, the backoff jitter, the
corrupted byte — so a failure here replays bit-for-bit.

Run:  pytest benchmarks/bench_chaos.py -q
"""

import asyncio
import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.fleet import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FleetError,
    FleetModelSpec,
    PumaFleet,
    bursty_trace,
    default_inputs_builder,
    run_trace,
)

SPECS = [
    FleetModelSpec("mlp", "mlp", {"dims": [128, 256, 64]}, seed=0),
    FleetModelSpec("lstm", "lstm",
                   {"input_size": 16, "hidden_size": 24, "output_size": 8},
                   seed=0),
]
INPUT_LAYOUTS = {
    "mlp": {"x": 128},
    "lstm": {"x0": 16, "x1": 16},
}
NUM_WORKERS = 2
CLEAN_REQUESTS = 80          # pre/post phases (time_scale=0: drain rate)
FAULT_REQUESTS = 150         # fault phase (real time, spans the windows)
FAULT_RATE_RPS = 60.0
DEADLINE_MS = 2000.0
MIN_RECOVERY_RATIO = 0.8
TYPED_STATUSES = {429, 503, 504}

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR9.json"


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def chaos_plan(seed: int = 11) -> FaultPlan:
    """All seven kinds, spread over ~2s of the fault-phase trace.

    Request-level faults target worker 0's predict path only (health
    probes stay clean, so its ledger survives to prove coverage); the
    crash kills worker 1, whose replacement must warm-start through a
    corrupted first blob read.
    """
    predict = "/v1/predict"
    return FaultPlan(seed=seed, events=(
        FaultEvent("slow", at_s=0.0, duration_s=2.5, worker=0,
                   path=predict, delay_s=0.02),
        FaultEvent("drop", at_s=0.2, duration_s=0.6, worker=0,
                   path=predict, count=2),
        FaultEvent("delay", at_s=0.4, duration_s=0.8, worker=0,
                   path=predict, delay_s=0.1, count=3),
        FaultEvent("error", at_s=0.6, duration_s=0.8, worker=0,
                   path=predict, count=2),
        FaultEvent("error", at_s=0.8, duration_s=0.8, worker=0,
                   path=predict, garbage=True, count=2),
        FaultEvent("hang", at_s=1.2, duration_s=0.6, worker=0,
                   path=predict),
        FaultEvent("crash", at_s=0.5, worker=1),
        FaultEvent("corrupt_blob", at_s=0.0, duration_s=60.0, count=1),
    ))


def _make_checker(engines, inputs_for, mismatches: list):
    """A run_trace on_reply hook comparing every 200 bitwise."""
    cache: dict = {}

    def check(arrival, response):
        reply = response.json()
        key = (arrival.model, arrival.request_seed)
        if key not in cache:
            reference = engines[arrival.model].predict(
                {name: np.asarray(values)
                 for name, values in inputs_for(arrival).items()})
            cache[key] = {name: reference[name].tolist()
                          for name in reference}
        if reply["words"] != cache[key]:
            mismatches.append(
                f"{arrival.model} seed={arrival.request_seed} "
                f"answered by {reply.get('worker')}")

    return check


async def _wait_recovered(fleet: PumaFleet, inputs_for, trace,
                          timeout_s: float = 120.0) -> dict:
    """Poll (and gently warm) until the fleet is whole again.

    Whole = full worker count, all healthy, every worker hosting every
    model, no fault window still active.  The warming predicts are what
    drive lazy loads onto the crash replacement (its cold build /
    corrupted-blob fallback happens here, off the measured clock).
    """
    warm = {spec.name: inputs_for(next(a for a in trace
                                       if a.model == spec.name))
            for spec in SPECS}
    deadline = time.monotonic() + timeout_s
    while True:
        metrics = await fleet.metrics()
        workers = metrics["workers"]
        ready = len(workers) == NUM_WORKERS and all(
            entry["alive"] and entry["healthy"]
            and entry.get("metrics")
            and len(entry["metrics"]["models"]) == len(SPECS)
            and not entry["metrics"]["chaos"]["active"]
            for entry in workers.values())
        if ready:
            return metrics
        if time.monotonic() > deadline:
            raise AssertionError(
                f"fleet did not recover within {timeout_s:g}s: "
                f"{json.dumps(metrics['fleet'], default=str)[:500]}")
        for name, inputs in warm.items():
            try:
                await fleet.predict(name, inputs, timeout=30.0)
            except (FleetError, KeyError):
                pass            # still recovering; that's why we poll
        await asyncio.sleep(0.2)


async def _soak(work_dir: str) -> dict:
    from repro.fleet import build_engine

    engines = {spec.name: build_engine(spec) for spec in SPECS}
    inputs_for = default_inputs_builder(INPUT_LAYOUTS)
    mismatches: list[str] = []
    check = _make_checker(engines, inputs_for, mismatches)
    names = [spec.name for spec in SPECS]
    pre_trace = bursty_trace(names, CLEAN_REQUESTS, seed=21)
    fault_trace = bursty_trace(names, FAULT_REQUESTS,
                               base_rate_rps=FAULT_RATE_RPS,
                               burst_every_s=1.0, burst_len_s=0.3,
                               burst_multiplier=3.0, seed=22)
    post_trace = bursty_trace(names, CLEAN_REQUESTS, seed=23)
    plan = chaos_plan()

    async with PumaFleet(SPECS, num_workers=NUM_WORKERS,
                         replicas_per_model=NUM_WORKERS,
                         work_dir=work_dir, max_batch_size=8,
                         max_queue_depth=256) as fleet:
        pre = await run_trace(fleet.host, fleet.http.port, pre_trace,
                              inputs_for, time_scale=0.0, on_reply=check)
        armed = await fleet.arm_chaos(plan)
        fault = await run_trace(fleet.host, fleet.http.port, fault_trace,
                                inputs_for, time_scale=1.0,
                                deadline_ms=DEADLINE_MS, on_reply=check)
        await _wait_recovered(fleet, inputs_for, post_trace)
        post = await run_trace(fleet.host, fleet.http.port, post_trace,
                               inputs_for, time_scale=0.0, on_reply=check)
        metrics = await fleet.metrics()

    # Coverage: which fault kinds provably fired.  The crash is proven
    # by the respawn (the dead worker's own ledger died with it).
    fired = dict(metrics["fleet"]["chaos"]["fired"])
    for entry in metrics["workers"].values():
        if entry.get("metrics"):
            for kind, count in entry["metrics"]["chaos"]["fired"].items():
                fired[kind] = fired.get(kind, 0) + count
    if metrics["fleet"]["respawns"] >= 1:
        fired.setdefault("crash", 1)

    return {
        "plan": plan.to_dict(),
        "armed": armed,
        "phases": {"pre": pre.to_dict(), "fault": fault.to_dict(),
                   "post": post.to_dict()},
        "phase_errors": {"pre": pre.errors, "fault": fault.errors,
                         "post": post.errors},
        "fired": fired,
        "bitwise_mismatches": mismatches,
        "fleet": {key: metrics["fleet"][key]
                  for key in ("evictions", "respawns", "breaker_opens",
                              "store_evictions", "models")},
    }


def test_chaos_soak(once, tmp_path):
    """All 7 fault kinds: bitwise answers, typed failures, recovery."""
    result = once(lambda: asyncio.run(_soak(str(tmp_path / "chaos"))))
    phases = result["phases"]
    for name, report in phases.items():
        print(f"\n{name}: {report['completed']}/{report['num_requests']} "
              f"ok, {report['failed']} failed "
              f"(statuses {report['statuses']}), "
              f"{report['throughput_rps']:.1f} req/s")

    # Completed responses stayed bitwise == the single-engine reference
    # in every phase — faults never corrupt an answer.
    assert result["bitwise_mismatches"] == [], result["bitwise_mismatches"]

    # The clean phases lose nothing.
    for name in ("pre", "post"):
        assert phases[name]["failed"] == 0, (
            f"{name} phase failed: {result['phase_errors'][name]}")

    # Under fault: the fleet never goes silent (no hangs, no dropped
    # front-door connections) and every failure is a typed status.
    for name, report in phases.items():
        assert report["timeouts"] == 0, (
            f"{name}: client-side timeout (a hang): "
            f"{result['phase_errors'][name]}")
        assert report["transport_errors"] == 0, (
            f"{name}: front-door connection died: "
            f"{result['phase_errors'][name]}")
    untyped = {int(status) for status in phases["fault"]["statuses"]} \
        - TYPED_STATUSES
    assert not untyped, (
        f"untyped failure statuses under chaos: {sorted(untyped)}: "
        f"{result['phase_errors']['fault']}")

    # Every one of the seven fault kinds provably fired.
    missing = set(FAULT_KINDS) - set(result["fired"])
    assert not missing, (
        f"fault kinds never fired: {sorted(missing)} "
        f"(fired: {result['fired']})")
    assert result["fleet"]["respawns"] >= 1, (
        "the crashed worker was never replaced")

    ratio = (phases["post"]["throughput_rps"]
             / phases["pre"]["throughput_rps"])
    cpus = _usable_cpus()
    print(f"recovery: {ratio:.2f}x of pre-fault throughput "
          f"({cpus} usable CPUs); fired: {result['fired']}")

    BENCH_PATH.write_text(json.dumps({
        "benchmark": "fleet_chaos_soak",
        "models": [spec.name for spec in SPECS],
        "workers": NUM_WORKERS,
        "fault_kinds": list(FAULT_KINDS),
        "deadline_ms": DEADLINE_MS,
        **result,
        "recovery_ratio": ratio,
        "min_recovery_ratio_ci": MIN_RECOVERY_RATIO,
        "usable_cpus": cpus,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }, indent=2) + "\n")
    print(f"wrote {BENCH_PATH}")

    if cpus < 2:
        pytest.skip(f"recovery-throughput floor needs >= 2 usable CPUs "
                    f"to run 2 workers, have {cpus} "
                    f"(measured {ratio:.2f}x)")
    assert ratio >= MIN_RECOVERY_RATIO, (
        f"post-fault throughput recovered to only {ratio:.2f}x of the "
        f"pre-fault baseline, CI floor is {MIN_RECOVERY_RATIO}x")
