"""Section 7.4.3: analog vs digital MVMU comparison."""

import pytest

from repro.baselines.digital_mvmu import digital_mvmu_comparison


def test_digital_mvmu(benchmark):
    cmp = benchmark(digital_mvmu_comparison)
    # Paper: 4.17x energy / 8.97x area per MVMU; 6.76x / 4.93x chip level.
    assert cmp.energy_factor == pytest.approx(4.17, rel=0.05)
    assert cmp.area_factor == pytest.approx(8.97, rel=0.15)
    assert cmp.chip_energy_factor == pytest.approx(6.76, rel=0.05)
    assert cmp.chip_area_factor == pytest.approx(4.93, rel=0.25)
    print()
    print(f"memristive MVMU: {cmp.memristive_energy_nj:.2f} nJ, "
          f"{cmp.memristive_area_mm2:.4f} mm2 per {cmp.macs_per_mvm} MACs "
          f"in {cmp.latency_ns:.0f} ns")
    print(f"digital MVMU:    {cmp.digital_energy_nj:.2f} nJ "
          f"({cmp.energy_factor:.2f}x), {cmp.digital_area_mm2:.4f} mm2 "
          f"({cmp.area_factor:.2f}x)")
    print(f"chip level:      {cmp.chip_energy_factor:.2f}x energy, "
          f"{cmp.chip_area_factor:.2f}x area")
