"""Figure 11(c)+(d): batch energy savings and throughput vs Haswell.

Paper claims: PUMA keeps superior energy efficiency at every batch size;
the benefit shrinks slightly as batching exposes weight reuse that CMOS
can amortize (Section 7.3).
"""

from repro.figures import fig11
from repro.figures.common import format_table


def test_fig11_batch_energy(once):
    rows = once(fig11.batch_energy_rows)
    for row in rows:
        # Energy savings persist at every batch size...
        assert all(row[f"B{b}"] > 1 for b in (16, 32, 64, 128))
        # ... but shrink (or stay flat) as the batch grows.
        assert row["B128"] <= row["B16"]
    print()
    print(format_table(rows, title="Figure 11(c): batch energy savings "
                                   "vs Haswell"))


def test_fig11_batch_throughput(once):
    rows = once(fig11.batch_throughput_rows)
    for row in rows:
        assert all(row[f"B{b}"] > 0 for b in (16, 32, 64, 128))
    print()
    print(format_table(rows, title="Figure 11(d): batch throughput vs "
                                   "Haswell"))
