"""Figure 11(c)+(d): batching — analytic rows plus *real* batched runs.

Paper claims: PUMA keeps superior energy efficiency at every batch size;
the benefit shrinks slightly as batching exposes weight reuse that CMOS
can amortize (Section 7.3).

The analytic rows compare against Haswell at paper scale.  The real rows
execute the Figure-4 MLP through :class:`repro.engine.InferenceEngine` on
the detailed simulator — SIMD-over-batch — and check the engine's two
serving guarantees: batched outputs are bitwise identical to sequential
single-input runs, and batch-64 wall-clock throughput is at least 5x the
sequential per-input path.
"""

import time

import numpy as np

from repro.engine import InferenceEngine
from repro.figures import fig11
from repro.figures.common import format_table
from repro.workloads.mlp import FIGURE4_MLP_DIMS, build_mlp_model


def test_fig11_batch_energy(once):
    rows = once(fig11.batch_energy_rows)
    for row in rows:
        # Energy savings persist at every batch size...
        assert all(row[f"B{b}"] > 1 for b in (16, 32, 64, 128))
        # ... but shrink (or stay flat) as the batch grows.
        assert row["B128"] <= row["B16"]
    print()
    print(format_table(rows, title="Figure 11(c): batch energy savings "
                                   "vs Haswell (analytic)"))


def test_fig11_batch_throughput(once):
    rows = once(fig11.batch_throughput_rows)
    for row in rows:
        assert all(row[f"B{b}"] > 0 for b in (16, 32, 64, 128))
    print()
    print(format_table(rows, title="Figure 11(d): batch throughput vs "
                                   "Haswell (analytic)"))


def test_fig11_batch_measured(once):
    """Real batched runs: per-inference cycles and energy amortize."""
    rows = once(fig11.measured_batch_rows)
    assert all(row["Bitwise==sequential"] for row in rows)
    by_batch = {row["Batch"]: row for row in rows}
    # Simulated per-inference latency and energy both improve with batch.
    assert by_batch[64]["Cycles/inf"] < by_batch[1]["Cycles/inf"]
    assert by_batch[64]["Energy/inf (uJ)"] < by_batch[1]["Energy/inf (uJ)"]
    print()
    print(format_table(rows, title="Figure 11 (measured): real batched "
                                   "runs on the detailed simulator"))


def test_fig11_batch64_speedup(once):
    """InferenceEngine.run_batch(64) beats 64 sequential runs by >= 5x."""

    def measure():
        dims = list(FIGURE4_MLP_DIMS)
        engine = InferenceEngine(build_mlp_model(dims, seed=0), seed=0)
        rng = np.random.default_rng(0)
        x = engine.quantize(rng.normal(0.0, 0.5, size=(64, dims[0])))
        t0 = time.perf_counter()
        batched = engine.run_batch({"x": x})
        t_batched = time.perf_counter() - t0
        t0 = time.perf_counter()
        sequential = engine.run_sequential({"x": x})
        t_sequential = time.perf_counter() - t0
        exact = all(np.array_equal(batched[k], sequential[k])
                    for k in batched)
        return t_batched, t_sequential, exact

    t_batched, t_sequential, exact = once(measure)
    speedup = t_sequential / t_batched
    print(f"\nbatch-64 MLP: batched {t_batched * 1e3:.1f} ms, "
          f"sequential {t_sequential * 1e3:.1f} ms -> {speedup:.1f}x")
    assert exact, "batched outputs must be bitwise equal to sequential"
    assert speedup >= 5.0, (
        f"batch-64 throughput only {speedup:.1f}x the sequential path")
