"""Figure 11(a): inference energy normalized to PUMA (batch 1).

Paper reference points (vs Pascal): MLP 30.2-80.1x, Deep LSTM
2302-2446x, Wide LSTM 758-1336x, CNN 11.7-13.0x.  The reproduced shape
holds the ordering CNN < MLP/Wide < Deep and PUMA wins everywhere; see
EXPERIMENTS.md for the per-group deviations.
"""

from repro.figures import fig11
from repro.figures.common import format_table


def test_fig11_energy(once):
    rows = once(fig11.energy_rows)
    by_bench = {r["Benchmark"]: r for r in rows}
    # PUMA saves energy on every benchmark and platform.
    for row in rows:
        assert min(v for k, v in row.items() if k != "Benchmark") > 1
    # Deep LSTM shows the largest gains; CNN the smallest (vs Pascal).
    assert by_bench["NMTL3"]["Pascal"] > by_bench["BigLSTM"]["Pascal"]
    assert by_bench["BigLSTM"]["Pascal"] > by_bench["Vgg16"]["Pascal"]
    assert by_bench["NMTL3"]["Pascal"] > 1000
    assert by_bench["Vgg16"]["Pascal"] < 50
    print()
    print(format_table(rows, title="Figure 11(a): energy normalized to "
                                   "PUMA (higher = PUMA better)"))
