"""Figure 11(b): inference latency normalized to PUMA (batch 1).

Paper reference points (vs Pascal): MLP 0.24-0.40x (PUMA slower!),
Deep LSTM 41-66x, Wide LSTM 4.70-5.24x, CNN 2.73-2.99x.
"""

from repro.figures import fig11
from repro.figures.common import format_table


def test_fig11_latency(once):
    rows = once(fig11.latency_rows)
    by_bench = {r["Benchmark"]: r for r in rows}
    # Ordering vs Pascal: Deep LSTM > Wide LSTM > CNN, with MLP weakest.
    assert by_bench["NMTL3"]["Pascal"] > by_bench["BigLSTM"]["Pascal"]
    assert by_bench["BigLSTM"]["Pascal"] > by_bench["Vgg16"]["Pascal"]
    assert by_bench["MLPL4"]["Pascal"] == min(
        by_bench[b]["Pascal"] for b in ("MLPL4", "NMTL3", "BigLSTM",
                                        "Vgg16"))
    # Deep LSTM in the paper's band (41-66x), same order of magnitude.
    assert 30 < by_bench["NMTL3"]["Pascal"] < 150
    # CNN in the paper's band (2.73-2.99x).
    assert 1.5 < by_bench["Vgg16"]["Pascal"] < 6
    print()
    print(format_table(rows, title="Figure 11(b): latency normalized to "
                                   "PUMA (>1 = PUMA faster)"))
