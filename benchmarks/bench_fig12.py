"""Figure 12: design-space exploration sweeps."""

from repro.energy.dse import sweep, sweet_spot
from repro.figures import fig12


def test_fig12_sweeps(once):
    def all_sweeps():
        return {p: sweep(p) for p in fig12.SWEEP_PARAMETERS}

    results = once(all_sweeps)
    # Power efficiency peaks at the paper's design choices.
    dim = {p.mvmu_dim: p.gops_per_w for p in results["mvmu_dim"]}
    assert dim[128] == max(dim.values())
    vfu = {p.vfu_width: p.gops_per_w for p in results["vfu_width"]}
    assert vfu[4] == max(vfu.values())
    cores = {p.num_cores: p.gops_per_w for p in results["num_cores"]}
    assert cores[8] == max(cores.values())
    rf = [p.gops_per_w for p in results["rf_scale"]]
    assert rf == sorted(rf, reverse=True)
    sp = sweet_spot()
    print()
    print(fig12.render())
    assert sp.gops_per_w > 600


def test_fig12_register_spilling(once):
    rows = once(fig12.spill_rows)
    spills = {r["RF scale"]: r["% accesses from spills"] for r in rows}
    assert spills[0.25] > 0      # a too-small RF spills (Section 7.6)
    assert spills[16.0] == 0
