"""Figure 13: inference accuracy vs memristor precision and write noise."""

from repro.figures import fig13


def test_fig13(once):
    rows = once(fig13.rows, trials=5)
    grid = {row["sigma_N"]: row for row in rows}
    # sigma_N = 0: flat near the float accuracy at every precision.
    noiseless = [grid[0.0][f"{b}-bit"] for b in range(1, 7)]
    assert max(noiseless) - min(noiseless) < 2.0
    # The paper's conclusion: 2-bit cells tolerate sigma_N = 0.3 ...
    assert grid[0.3]["2-bit"] > 90
    # ... while high precisions lose their noise margin.
    assert grid[0.3]["6-bit"] < 50
    assert grid[0.2]["6-bit"] < grid[0.2]["4-bit"] < grid[0.2]["2-bit"] + 1
    print()
    print(fig13.render())
