"""Figure 4: static instruction usage (compiles all six workloads)."""

from repro.figures import fig4


def test_fig4(once):
    fig4.usage_breakdowns.cache_clear()
    rows = once(fig4.rows)
    assert len(rows) == 6
    cnn = next(r for r in rows if "CNN" in r["Workload"])
    assert cnn["Control Flow"] > 0          # the paper's CNN signature
    for row in rows:
        assert row["MVM Unit (crossbar)"] > 0
    print()
    print(fig4.render())
