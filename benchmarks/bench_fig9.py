"""Figure 9: scheduling example (linearization and coalescing pressure)."""

from repro.figures import fig9


def test_fig9(once):
    rows = once(fig9.rows)
    by_label = {r["Linearization"]: r for r in rows}
    rpo = by_label["reverse postorder + coalescing (9c/9e)"]
    naive = by_label["naive, no coalescing (9d)"]
    # Figure 9's claims: the compiler's order keeps fewer values live, and
    # coalescing halves the MVM instruction count.
    assert rpo["Peak live values"] <= naive["Peak live values"]
    assert rpo["MVM instructions"] < naive["MVM instructions"]
    print()
    print(fig9.render())
