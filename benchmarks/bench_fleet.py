"""Fleet serving: one mixed-model bursty trace vs 1/2/4-worker fleets.

PUMA's serving story scales past one accelerator node by replication
(Section 7.3): more nodes, same programmed weights, one front door.
:mod:`repro.fleet` is that layer, and this benchmark drives it the way
an operator would size it — replay the *identical* request sequence
(:func:`repro.fleet.bursty_trace` is seeded end to end) against fleets
of 1, 2, and 4 worker processes and compare what the client saw:

* **zero drops** — every fleet size serves the whole trace with no
  failures (asserted unconditionally, this is a correctness property);
* **throughput scaling** — the trace is replayed at ``time_scale=0``
  (every arrival due immediately), so the drain rate is the fleet's
  capacity, not the trace's pacing.  The CI floor is >= 1.5x at 4
  workers vs 1.  Real parallelism needs real cores, so the threshold
  requires >= 4 usable CPUs (measurements print and land in the JSON
  either way);
* **the paper trail** — p50/p99 latency and throughput per fleet size,
  per model, written to ``BENCH_PR7.json`` (uploaded by CI's fleet
  smoke job alongside the other ``BENCH_PR*.json`` artifacts).

Run:  pytest benchmarks/bench_fleet.py -q
"""

import asyncio
import json
import os
import platform
from pathlib import Path

import pytest

from repro.fleet import (
    FleetModelSpec,
    PumaFleet,
    bursty_trace,
    default_inputs_builder,
    run_trace,
)

# The mixed deployment: a light MLP taking most of the traffic, an LSTM,
# and the (heavier) CNN — the head-of-line-isolation case from the docs.
SPECS = [
    FleetModelSpec("mlp", "mlp", {"dims": [128, 256, 64]}, seed=0),
    FleetModelSpec("lstm", "lstm",
                   {"input_size": 16, "hidden_size": 24, "output_size": 8},
                   seed=0),
    FleetModelSpec("cnn", "cnn_small", {}, seed=0),
]
INPUT_LAYOUTS = {
    "mlp": {"x": 128},
    "lstm": {"x0": 16, "x1": 16},
    "cnn": {"image": 64},
}
MIX = [0.5, 0.3, 0.2]
NUM_REQUESTS = 120
FLEET_SIZES = (1, 2, 4)
# CI floor for 4 workers vs 1 — deliberately below perfect scaling so a
# loaded runner does not flake; the JSON records the real measurement.
MIN_SPEEDUP = 1.5

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR7.json"


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


async def _drive(num_workers: int, work_dir: str) -> dict:
    trace = bursty_trace([spec.name for spec in SPECS], NUM_REQUESTS,
                         base_rate_rps=80.0, burst_every_s=1.0,
                         burst_len_s=0.3, burst_multiplier=4.0,
                         mix=MIX, seed=7)
    inputs_for = default_inputs_builder(INPUT_LAYOUTS)
    # Full replication: every worker serves every model, so the trace
    # measures compute scaling rather than placement luck.
    async with PumaFleet(SPECS, num_workers=num_workers,
                         replicas_per_model=num_workers,
                         work_dir=work_dir,
                         max_batch_size=8) as fleet:
        report = await run_trace(fleet.host, fleet.http.port, trace,
                                 inputs_for, time_scale=0.0)
        metrics = await fleet.metrics()
    result = report.to_dict()
    result["errors"] = report.errors
    result["workers"] = num_workers
    result["store_blobs"] = len(metrics["fleet"]["store_blobs"])
    return result


def test_fleet_throughput_scaling(once, tmp_path):
    """Same trace, 1/2/4 workers: zero drops, >= 1.5x at 4 (CPU-gated)."""

    def measure():
        results = {}
        for size in FLEET_SIZES:
            results[size] = asyncio.run(
                _drive(size, str(tmp_path / f"fleet-{size}")))
        return results

    results = once(measure)
    for size, report in results.items():
        print(f"\n{size} worker(s): {report['completed']}/"
              f"{report['num_requests']} ok, "
              f"{report['throughput_rps']:.1f} req/s, "
              f"p50 {report['p50_ms']:.1f} ms, "
              f"p99 {report['p99_ms']:.1f} ms")
        assert report["failed"] == 0, (
            f"{size}-worker fleet dropped requests: {report['errors']}")
        assert report["completed"] == NUM_REQUESTS
        # Every model's artifact was published to the networked store.
        assert report["store_blobs"] == len(SPECS)

    speedup = (results[4]["throughput_rps"]
               / results[1]["throughput_rps"])
    cpus = _usable_cpus()
    print(f"4-worker vs 1-worker throughput: {speedup:.2f}x "
          f"({cpus} usable CPUs)")

    BENCH_PATH.write_text(json.dumps({
        "benchmark": "fleet_mixed_bursty_trace",
        "models": [spec.name for spec in SPECS],
        "mix": MIX,
        "num_requests": NUM_REQUESTS,
        "fleets": {str(size): report
                   for size, report in results.items()},
        "throughput_speedup_4v1": speedup,
        "min_speedup_ci": MIN_SPEEDUP,
        "usable_cpus": cpus,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }, indent=2) + "\n")
    print(f"wrote {BENCH_PATH}")

    if cpus < 4:
        pytest.skip(f"throughput threshold needs >= 4 usable CPUs to "
                    f"parallelize 4 workers, have {cpus} "
                    f"(measured {speedup:.2f}x)")
    assert speedup >= MIN_SPEEDUP, (
        f"4-worker throughput speedup only {speedup:.2f}x, "
        f"CI floor is {MIN_SPEEDUP}x")
