"""Trace-replay fast path: interpreter vs tape wall-clock on the hot path.

The serving steady state is many ``run_batch`` calls against one compiled,
programmed model.  PR 4's trace-replay engine records the resolved dynamic
schedule once and replays it as a flat tape of pre-bound numpy operations
(:mod:`repro.sim.tape`); this benchmark pins its three claims on the
mid-size MLP the sharding benchmark already uses:

* **bitwise** — replayed output words equal the event-driven interpreter's
  bit for bit, and the stats are field-identical (modelled cycles
  *unchanged*: the tape replays the schedule, it does not re-model it);
* **wall-clock speedup** — repeated batch-64 ``run_batch`` calls are
  >= 2x faster replayed than interpreted (the CI floor; the PR-4 target
  of >= 3x is what the measurement should show on an unloaded machine,
  and the recorded JSON keeps the trajectory honest);
* **machine-readable trail** — results land in ``BENCH_PR4.json`` next to
  the repo's other perf artifacts so later PRs can compare.

Run:  pytest benchmarks/bench_replay.py -q
"""

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.engine import InferenceEngine, tape_cache_info
from repro.workloads.mlp import build_mlp_model

# Same shape as bench_sharded_serving: wide enough that per-lane math is
# real work, small enough that a recording pass stays sub-second.
DIMS = [256, 512, 512, 64]
BATCH = 64
REPEATS = 5
# CI floor.  Deliberately below the >= 3x PR-4 target so a loaded shared
# runner does not flake; the JSON records the real measurement.
MIN_SPEEDUP = 2.0

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR4.json"


def _engines_and_batch():
    model = build_mlp_model(DIMS, seed=0)
    replaying = InferenceEngine(model, seed=0)
    interpreting = InferenceEngine(model, seed=0,
                                   execution_mode="interpret")
    rng = np.random.default_rng(0)
    x = replaying.quantize(rng.normal(0.0, 0.5, size=(BATCH, DIMS[0])))
    return replaying, interpreting, x


def _best_of(run, x, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run({"x": x})
        best = min(best, time.perf_counter() - t0)
    return best


def test_replay_speedup(once):
    """Replay >= 2x over the interpreter at batch 64, bitwise identical."""

    def measure():
        replaying, interpreting, x = _engines_and_batch()
        replaying.warm(batch=BATCH)  # records the tape up front
        interpreting.warm()
        reference = interpreting.run_batch({"x": x})
        replayed = replaying.run_batch({"x": x})
        assert replayed.execution == "replay"
        assert reference.execution == "interpreter"
        mismatch = not all(np.array_equal(replayed[name], reference[name])
                           for name in reference)
        t_interpreter = _best_of(interpreting.run_batch, x)
        t_replay = _best_of(replaying.run_batch, x)
        return {
            "mismatch": mismatch,
            "cycles_interpreter": reference.cycles,
            "cycles_replay": replayed.cycles,
            "stats_equal": replayed.stats == reference.stats,
            "t_interpreter_s": t_interpreter,
            "t_replay_s": t_replay,
            # Captured while the engines (and their compilation, which
            # the weak tape registry tracks) are still alive.
            "tape_cache": tape_cache_info()._asdict(),
        }

    m = once(measure)
    speedup = m["t_interpreter_s"] / m["t_replay_s"]
    print(f"\nbatch-{BATCH} MLP {DIMS}: interpreter "
          f"{m['t_interpreter_s'] * 1e3:.1f} ms, replay "
          f"{m['t_replay_s'] * 1e3:.1f} ms -> {speedup:.2f}x "
          f"(modelled cycles {m['cycles_interpreter']} both paths)")

    assert not m["mismatch"], "replayed outputs differ from the interpreter"
    assert m["stats_equal"], "replayed stats differ from the interpreter"
    assert m["cycles_replay"] == m["cycles_interpreter"], \
        "replay must not change modelled cycles"
    _write_record(m, speedup)
    assert speedup >= MIN_SPEEDUP, (
        f"replay speedup only {speedup:.2f}x (floor {MIN_SPEEDUP}x)")


def _write_record(measurement: dict, speedup: float) -> None:
    record = {
        "benchmark": "bench_replay",
        "pr": 4,
        "workload": {"model": "mlp", "dims": DIMS, "batch": BATCH},
        "interpreter_wall_s": measurement["t_interpreter_s"],
        "replay_wall_s": measurement["t_replay_s"],
        "speedup": round(speedup, 3),
        "min_speedup_asserted": MIN_SPEEDUP,
        "modelled_cycles": measurement["cycles_interpreter"],
        "modelled_cycles_unchanged": (measurement["cycles_replay"]
                                      == measurement["cycles_interpreter"]),
        "bitwise_identical": not measurement["mismatch"],
        "stats_field_identical": measurement["stats_equal"],
        "tape_cache": measurement["tape_cache"],
        "host": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {BENCH_PATH}")
