"""Trace-replay fast path: interpreter vs plain replay vs optimized replay.

The serving steady state is many ``run_batch`` calls against one compiled,
programmed model.  PR 4's trace-replay engine records the resolved dynamic
schedule once and replays it as a flat tape of pre-bound numpy operations
(:mod:`repro.sim.tape`); PR 8's optimizer compiles that tape into a
shorter plan — dead stores eliminated, store→load forwarding, adjacent
ops fused, independent MVMs batched into block BLAS calls
(:mod:`repro.sim.tapeopt`).  This benchmark pins the claims on the
mid-size MLP the sharding benchmark already uses:

* **bitwise** — both replay paths produce output words equal to the
  event-driven interpreter's bit for bit, and the stats are
  field-identical (modelled cycles *unchanged*: the tape replays the
  schedule, it does not re-model it);
* **wall-clock speedup** — repeated batch-64 ``run_batch`` calls are
  >= 2x faster optimized than interpreted (the CI floor), and the
  optimized plan is never slower than the plain tape it came from;
* **machine-readable trail** — results land in ``BENCH_PR8.json`` next to
  the repo's other perf artifacts so later PRs can compare (the trio of
  wall times plus the optimizer's own report: stores eliminated, loads
  forwarded, fused blocks, batched MVM groups).

Run:  pytest benchmarks/bench_replay.py -q
"""

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.engine import InferenceEngine, tape_cache_info
from repro.workloads.mlp import build_mlp_model

# Same shape as bench_sharded_serving: wide enough that per-lane math is
# real work, small enough that a recording pass stays sub-second.
DIMS = [256, 512, 512, 64]
BATCH = 64
REPEATS = 5
# CI floor for optimized-vs-interpreter.  Deliberately below what an
# unloaded machine shows so a loaded shared runner does not flake; the
# JSON records the real measurement.
MIN_SPEEDUP = 2.0
# The optimizer must never lose to the plain tape it was compiled from.
MIN_SPEEDUP_VS_REPLAY = 1.0

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR8.json"


def _engines_and_batch():
    model = build_mlp_model(DIMS, seed=0)
    optimizing = InferenceEngine(model, seed=0)  # auto -> optimized replay
    replaying = InferenceEngine(model, seed=0, execution_mode="replay")
    interpreting = InferenceEngine(model, seed=0,
                                   execution_mode="interpret")
    rng = np.random.default_rng(0)
    x = optimizing.quantize(rng.normal(0.0, 0.5, size=(BATCH, DIMS[0])))
    return optimizing, replaying, interpreting, x


def _best_of(run, x, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run({"x": x})
        best = min(best, time.perf_counter() - t0)
    return best


def _optimizer_report(engine):
    """The optimization report of the engine's (single, shared) tape."""
    tapes = list(engine.compiled.execution_tapes.values())
    assert len(tapes) == 1, "one batch-generic tape expected"
    plan = tapes[0].optimized
    assert plan is not None and not isinstance(plan, str), \
        f"tape not optimized: {plan!r}"
    return plan.report.as_dict()


def test_replay_speedup(once):
    """Optimized replay >= 2x over the interpreter at batch 64, bitwise
    identical, and never slower than the plain tape."""

    def measure():
        optimizing, replaying, interpreting, x = _engines_and_batch()
        optimizing.warm(batch=BATCH)   # records + optimizes the tape
        replaying.warm(batch=BATCH)
        interpreting.warm()
        reference = interpreting.run_batch({"x": x})
        replayed = replaying.run_batch({"x": x})
        optimized = optimizing.run_batch({"x": x})
        assert optimized.execution == "optimized"
        assert replayed.execution == "replay"
        assert reference.execution == "interpreter"
        mismatch = not all(
            np.array_equal(optimized[name], reference[name])
            and np.array_equal(replayed[name], reference[name])
            for name in reference)
        t_interpreter = _best_of(interpreting.run_batch, x)
        t_replay = _best_of(replaying.run_batch, x)
        t_optimized = _best_of(optimizing.run_batch, x)
        return {
            "mismatch": mismatch,
            "cycles_interpreter": reference.cycles,
            "cycles_replay": replayed.cycles,
            "cycles_optimized": optimized.cycles,
            "stats_equal": (optimized.stats == reference.stats
                            and replayed.stats == reference.stats),
            "t_interpreter_s": t_interpreter,
            "t_replay_s": t_replay,
            "t_optimized_s": t_optimized,
            "optimizer_report": _optimizer_report(optimizing),
            # Captured while the engines (and their compilation, which
            # the weak tape registry tracks) are still alive.
            "tape_cache": tape_cache_info()._asdict(),
        }

    m = once(measure)
    speedup = m["t_interpreter_s"] / m["t_optimized_s"]
    speedup_replay = m["t_interpreter_s"] / m["t_replay_s"]
    vs_replay = m["t_replay_s"] / m["t_optimized_s"]
    print(f"\nbatch-{BATCH} MLP {DIMS}: interpreter "
          f"{m['t_interpreter_s'] * 1e3:.1f} ms, plain replay "
          f"{m['t_replay_s'] * 1e3:.1f} ms, optimized "
          f"{m['t_optimized_s'] * 1e3:.1f} ms -> {speedup:.2f}x over "
          f"interpreter, {vs_replay:.2f}x over plain replay "
          f"(modelled cycles {m['cycles_interpreter']} all paths)")

    assert not m["mismatch"], "replayed outputs differ from the interpreter"
    assert m["stats_equal"], "replayed stats differ from the interpreter"
    assert m["cycles_replay"] == m["cycles_interpreter"], \
        "replay must not change modelled cycles"
    assert m["cycles_optimized"] == m["cycles_interpreter"], \
        "the optimizer must not change modelled cycles"
    assert m["tape_cache"]["optimizer_fallbacks"] == 0, \
        "the optimizer fell back during the benchmark"
    _write_record(m, speedup, speedup_replay, vs_replay)
    assert speedup >= MIN_SPEEDUP, (
        f"optimized-replay speedup only {speedup:.2f}x "
        f"(floor {MIN_SPEEDUP}x)")
    assert vs_replay >= MIN_SPEEDUP_VS_REPLAY, (
        f"optimized plan slower than the plain tape: {vs_replay:.2f}x")


def _write_record(measurement: dict, speedup: float,
                  speedup_replay: float, vs_replay: float) -> None:
    record = {
        "benchmark": "bench_replay",
        "pr": 8,
        "workload": {"model": "mlp", "dims": DIMS, "batch": BATCH},
        "interpreter_wall_s": measurement["t_interpreter_s"],
        "replay_wall_s": measurement["t_replay_s"],
        "optimized_wall_s": measurement["t_optimized_s"],
        "speedup_optimized_vs_interpreter": round(speedup, 3),
        "speedup_replay_vs_interpreter": round(speedup_replay, 3),
        "speedup_optimized_vs_replay": round(vs_replay, 3),
        "min_speedup_asserted": MIN_SPEEDUP,
        "min_speedup_vs_replay_asserted": MIN_SPEEDUP_VS_REPLAY,
        "modelled_cycles": measurement["cycles_interpreter"],
        "modelled_cycles_unchanged": (
            measurement["cycles_replay"]
            == measurement["cycles_optimized"]
            == measurement["cycles_interpreter"]),
        "bitwise_identical": not measurement["mismatch"],
        "stats_field_identical": measurement["stats_equal"],
        "optimizer_report": measurement["optimizer_report"],
        "tape_cache": measurement["tape_cache"],
        "host": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {BENCH_PATH}")
