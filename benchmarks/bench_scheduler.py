"""Latency-aware scheduling: EDF + continuous batching vs fixed-window FIFO.

PUMA inference is control-uniform, so a serving layer can reorder and
re-batch requests freely without changing any output bit — which makes
scheduling pure win: the only question is *which* requests wait.  This
benchmark replays one seeded mixed-priority arrival trace against two
otherwise-identical ``PumaServer`` configurations:

* **fifo** — arrival order, fixed ``batch_window_s`` hold (the
  pre-scheduler behavior, kept as the baseline);
* **edf** — priority-then-earliest-deadline order with the
  deadline-pressure early close (the PR 10 scheduler).

and asserts, always (machine-independent):

* **bitwise** — every served request equals the sequential
  single-request ``engine.predict`` reference bit for bit, under both
  policies and under continuous batching;
* **conservation** — ``admitted == dispatched + shed + drained`` with an
  empty queue at the end, for every server driven here;
* **zero drops** — the trace's deadlines are loose enough that both
  policies must serve everything.

and, gated on >= 2 usable CPUs (it is a wall-clock measurement):

* **p99 improvement** — the deadline-carrying (priority 1) cohort's p99
  latency under EDF beats the FIFO baseline.  Under a burst that
  overfills the batch window, FIFO drains urgent requests wherever they
  landed in arrival order while EDF lifts them into the first batches.

Results land in ``BENCH_PR10.json`` (uploaded by CI's scheduler smoke
job alongside the other ``BENCH_PR*.json`` artifacts).

Run:  pytest benchmarks/bench_scheduler.py -q
"""

import asyncio
import json
import os
import platform
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro.engine import InferenceEngine
from repro.serve import PumaServer
from repro.workloads.lstm import build_lstm_model
from repro.workloads.mlp import build_mlp_model

DIMS = [96, 128, 32]
MAX_BATCH = 8
BATCH_WINDOW_S = 0.02
NUM_BURSTS = 3
BURST_SIZE = 24          # 3x the batch size: urgent order matters
BURST_GAP_S = 0.15
URGENT_FRACTION = 0.25
URGENT_DEADLINE_S = 5.0  # loose: completion is asserted, not attainment

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR10.json"


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _record(section: str, payload: dict) -> None:
    """Merge one section into BENCH_PR10.json (tests run in any order)."""
    data = {}
    if BENCH_PATH.exists():
        data = json.loads(BENCH_PATH.read_text())
    data.setdefault("benchmark", "latency_aware_scheduler")
    data["python"] = platform.python_version()
    data["machine"] = platform.machine()
    data["usable_cpus"] = _usable_cpus()
    data[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {BENCH_PATH} [{section}]")


@dataclass(frozen=True)
class _Request:
    at_s: float
    seed: int
    priority: int
    deadline_s: float | None


def _mixed_trace(seed: int = 11) -> list[_Request]:
    """Seeded bursts with a deadline-carrying urgent cohort mixed in."""
    rng = np.random.default_rng(seed)
    trace: list[_Request] = []
    for burst in range(NUM_BURSTS):
        start = burst * BURST_GAP_S
        for index in range(BURST_SIZE):
            urgent = bool(rng.random() < URGENT_FRACTION)
            trace.append(_Request(
                at_s=start + float(rng.uniform(0.0, 0.002)),
                seed=seed * 100_003 + burst * 1_000 + index,
                priority=1 if urgent else 0,
                deadline_s=URGENT_DEADLINE_S if urgent else None))
    return sorted(trace, key=lambda r: r.at_s)


def _request_inputs(engine: InferenceEngine, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    return {name: rng.uniform(-1.0, 1.0, size=length)
            for name, (_tile, _addr, length)
            in sorted(engine.program.input_layout.items())}


async def _replay(server: PumaServer, engine: InferenceEngine,
                  trace: list[_Request],
                  references: dict[int, dict]) -> dict:
    """Fire the trace open-loop; per-cohort latencies + bitwise verdict."""
    latencies: dict[int, list[float]] = {0: [], 1: []}
    mismatches: list[int] = []
    errors: list[str] = []
    start = time.monotonic()

    async def fire(index: int, request: _Request) -> None:
        delay = request.at_s - (time.monotonic() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        sent = time.monotonic()
        try:
            result = await server.submit(
                _request_inputs(engine, request.seed),
                deadline_s=request.deadline_s, priority=request.priority)
        except Exception as error:  # noqa: BLE001 - tallied, then asserted
            errors.append(f"request {index}: {type(error).__name__}: "
                          f"{error}")
            return
        latencies[request.priority].append(time.monotonic() - sent)
        reference = references[request.seed]
        if not all(np.array_equal(np.asarray(result.words[name]).ravel(),
                                  np.asarray(reference[name]).ravel())
                   for name in reference):
            mismatches.append(index)

    await asyncio.gather(*(fire(i, r) for i, r in enumerate(trace)))
    return {"latencies": latencies, "mismatches": mismatches,
            "errors": errors}


async def _drive_policy(policy: str, engine: InferenceEngine,
                        trace: list[_Request],
                        references: dict[int, dict]) -> dict:
    server = PumaServer(engine, max_batch_size=MAX_BATCH,
                        batch_window_s=BATCH_WINDOW_S, scheduler=policy)
    await server.start()
    try:
        outcome = await _replay(server, engine, trace, references)
        stats = server.stats()
    finally:
        await server.stop()
    scheduler = stats["scheduler"]
    conserved = (scheduler["admitted"]
                 == scheduler["dispatched"] + scheduler["shed"]
                 + scheduler["drained"])
    urgent = outcome["latencies"][1]
    background = outcome["latencies"][0]
    return {
        "policy": policy,
        "served": len(urgent) + len(background),
        "errors": outcome["errors"],
        "mismatches": outcome["mismatches"],
        "conserved": conserved,
        "scheduler": scheduler,
        "urgent_p50_ms": float(np.percentile(urgent, 50)) * 1e3,
        "urgent_p99_ms": float(np.percentile(urgent, 99)) * 1e3,
        "background_p99_ms": float(np.percentile(background, 99)) * 1e3,
    }


def test_edf_vs_fifo_p99(once):
    """Mixed-priority trace: EDF beats FIFO p99 for the urgent cohort."""

    def measure():
        engine = InferenceEngine(build_mlp_model(DIMS, seed=0), seed=0)
        engine.warm()
        trace = _mixed_trace()
        references = {
            request.seed: {
                name: np.asarray(words)
                for name, words in engine.predict(
                    _request_inputs(engine, request.seed)).words.items()}
            for request in trace}
        results = {}
        for policy in ("fifo", "edf"):
            results[policy] = asyncio.run(
                _drive_policy(policy, engine, trace, references))
        return results

    results = once(measure)
    for policy, report in results.items():
        print(f"\n{policy}: urgent p50 {report['urgent_p50_ms']:.1f} ms, "
              f"urgent p99 {report['urgent_p99_ms']:.1f} ms, "
              f"background p99 {report['background_p99_ms']:.1f} ms, "
              f"early closes {report['scheduler']['early_closes']}")
        # Correctness is unconditional: every request served, bitwise
        # equal to the sequential reference, counters conserved.
        assert not report["errors"], report["errors"]
        assert report["served"] == NUM_BURSTS * BURST_SIZE
        assert not report["mismatches"], (
            f"{policy}: requests {report['mismatches']} differ from the "
            f"sequential reference")
        assert report["conserved"], report["scheduler"]

    improvement = (results["fifo"]["urgent_p99_ms"]
                   / results["edf"]["urgent_p99_ms"])
    cpus = _usable_cpus()
    print(f"urgent-cohort p99 improvement (fifo/edf): {improvement:.2f}x "
          f"({cpus} usable CPUs)")
    _record("edf_vs_fifo", {
        "trace": {"bursts": NUM_BURSTS, "burst_size": BURST_SIZE,
                  "urgent_fraction": URGENT_FRACTION,
                  "max_batch_size": MAX_BATCH,
                  "batch_window_s": BATCH_WINDOW_S},
        "policies": results,
        "urgent_p99_improvement": improvement,
    })

    if cpus < 2:
        pytest.skip(f"wall-clock p99 comparison needs >= 2 usable CPUs, "
                    f"have {cpus} (measured {improvement:.2f}x)")
    assert improvement > 1.0, (
        f"EDF urgent p99 ({results['edf']['urgent_p99_ms']:.1f} ms) did "
        f"not beat FIFO ({results['fifo']['urgent_p99_ms']:.1f} ms)")


def test_continuous_batching_bitwise(once):
    """Continuous LSTM serving: lanes join/leave, outputs stay bitwise."""

    def measure():
        # A long sequence: each cohort is in flight across many step
        # boundaries, so staggered arrivals genuinely join mid-flight.
        engine = InferenceEngine(
            build_lstm_model(16, 24, 8, seq_len=8, seed=0), seed=3)
        engine.warm()
        seeds = [7_000 + i for i in range(12)]
        references = {
            seed: {name: np.asarray(words)
                   for name, words in engine.predict(
                       _request_inputs(engine, seed)).words.items()}
            for seed in seeds}

        async def drive():
            server = PumaServer(engine, max_batch_size=4,
                                batch_window_s=0.001, continuous=True)
            await server.start()
            mismatches = []
            executions = set()
            try:
                async def fire(index, seed):
                    # Staggered arrivals: later requests land while
                    # earlier cohorts are mid-flight, so freed lanes
                    # refill at step boundaries instead of waiting for
                    # an empty node.
                    await asyncio.sleep(index * 0.003)
                    result = await server.submit(
                        _request_inputs(engine, seed))
                    executions.add(result.execution)
                    reference = references[seed]
                    if not all(np.array_equal(
                            np.asarray(result.words[name]).ravel(),
                            np.asarray(reference[name]).ravel())
                            for name in reference):
                        mismatches.append(seed)

                await asyncio.gather(*(fire(i, seed)
                                       for i, seed in enumerate(seeds)))
                stats = server.stats()
            finally:
                await server.stop()
            return mismatches, executions, stats

        return asyncio.run(drive())

    mismatches, executions, stats = once(measure)
    scheduler = stats["scheduler"]
    print(f"\ncontinuous LSTM: {scheduler['dispatched']} served, "
          f"{scheduler['refills']} lane refills, "
          f"{stats['batches_formed']} cohorts")
    assert not mismatches, (
        f"continuous lanes differ from sequential reference: {mismatches}")
    assert executions == {"continuous"}
    assert scheduler["admitted"] == 12
    assert (scheduler["admitted"]
            == scheduler["dispatched"] + scheduler["shed"]
            + scheduler["drained"])
    _record("continuous_lstm", {
        "requests": 12,
        "max_lanes": 4,
        "refills": scheduler["refills"],
        "cohorts": stats["batches_formed"],
        "scheduler": scheduler,
    })
