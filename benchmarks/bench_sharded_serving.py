"""Sharded serving: one batch fanned out across engine replicas.

PUMA scales throughput past one node by spatial replication (Section 7.3,
Fig 11c/d): every replica holds a copy of the programmed weights and
serves a slice of the traffic.  :class:`repro.serve.ShardedEngine` is
that layer; this benchmark checks its three claims on a batch-64 MLP:

* **bitwise** — the merged sharded result equals the single-engine
  ``run_batch`` bit for bit, for 1/2/4 shards and both lane policies;
* **modelled speedup** — merged cycles (max over the concurrent shards)
  beat the unsharded pass ≥ 1.5x at 4 shards.  This is simulated time:
  deterministic, machine-independent;
* **wall-clock speedup** — with forked worker processes the host-side
  pass is ≥ 1.5x faster at 4 shards.  Real parallelism needs real cores,
  so this assertion requires ≥ 4 usable CPUs (it prints measurements and
  skips the threshold otherwise).
"""

import os
import time

import numpy as np
import pytest

from repro.engine import InferenceEngine
from repro.serve import ShardedEngine
from repro.workloads.mlp import build_mlp_model

# Wide enough that per-lane work (the part sharding divides) dominates
# the batch-independent instruction interpretation overhead.
DIMS = [256, 512, 512, 64]
BATCH = 64


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _engine_and_batch():
    engine = InferenceEngine(build_mlp_model(DIMS, seed=0), seed=0)
    rng = np.random.default_rng(0)
    x = engine.quantize(rng.normal(0.0, 0.5, size=(BATCH, DIMS[0])))
    return engine, x


def test_sharded_bitwise(once):
    """Merged shard results equal the unsharded pass bit for bit."""

    def measure():
        engine, x = _engine_and_batch()
        single = engine.run_batch({"x": x})
        mismatches = []
        for shards in (1, 2, 4):
            for policy in ("contiguous", "interleaved"):
                with ShardedEngine(engine, num_shards=shards,
                                   shard_policy=policy,
                                   executor="thread") as sharded:
                    result = sharded.run_batch({"x": x})
                if not all(np.array_equal(single[name], result[name])
                           for name in single):
                    mismatches.append((shards, policy))
        return mismatches

    mismatches = once(measure)
    assert not mismatches, f"sharded != single for {mismatches}"


def test_sharded_modelled_speedup(once):
    """Merged cycles (max over shards) amortize >= 1.5x at 4 shards."""

    def measure():
        engine, x = _engine_and_batch()
        single = engine.run_batch({"x": x})
        cycles = {1: single.cycles}
        for shards in (2, 4):
            with ShardedEngine(engine, num_shards=shards,
                               executor="thread") as sharded:
                cycles[shards] = sharded.run_batch({"x": x}).cycles
        return cycles

    cycles = once(measure)
    print(f"\nmodelled cycles: {cycles} "
          f"(x4 speedup {cycles[1] / cycles[4]:.2f})")
    assert cycles[1] / cycles[2] >= 1.5
    assert cycles[1] / cycles[4] >= 1.5


def test_sharded_wallclock_speedup(once):
    """Process-pool fan-out beats the single engine >= 1.5x at 4 shards."""

    def measure():
        engine, x = _engine_and_batch()
        engine.warm()
        engine.run_batch({"x": x})  # warm pass (programmed-state cache)
        t_single = min(_timed(engine.run_batch, x) for _ in range(3))
        with ShardedEngine(engine, num_shards=4,
                           executor="process") as sharded:
            sharded.run_batch({"x": x})  # fork + first dispatch
            t_sharded = min(_timed(sharded.run_batch, x) for _ in range(3))
        return t_single, t_sharded

    t_single, t_sharded = once(measure)
    speedup = t_single / t_sharded
    cpus = _usable_cpus()
    print(f"\nbatch-{BATCH} MLP {DIMS}: single {t_single * 1e3:.1f} ms, "
          f"4-shard {t_sharded * 1e3:.1f} ms -> {speedup:.2f}x "
          f"({cpus} usable CPUs)")
    if cpus < 4:
        pytest.skip(f"wall-clock threshold needs >= 4 usable CPUs to "
                    f"parallelize 4 shards, have {cpus} "
                    f"(measured {speedup:.2f}x)")
    assert speedup >= 1.5, (
        f"4-shard wall-clock speedup only {speedup:.2f}x")


def _timed(run, x) -> float:
    t0 = time.perf_counter()
    run({"x": x})
    return time.perf_counter() - t0
