"""Artifact store: cold-process time-to-first-result, with and without.

The store's whole value proposition is the *cold process*: a CLI
invocation, a CI job, or a freshly-spawned serving replica that has no
in-process caches to inherit.  This benchmark measures exactly that, with
real OS processes, for the documented serving bring-up flow (compile,
program the crossbars, pre-record an execution tape per dynamic-batching
rung, serve the first batch):

* **cold** — a new Python process builds the mid-size MLP, compiles it,
  programs the crossbars, records the execution tape for every batch
  rung a dynamic-batching server coalesces (1..64 in powers of two —
  what ``cli warm --batch ...`` does), and runs the first batch-64 pass;
* **warm** — a new Python process loads the artifact a prior process
  wrote (``InferenceEngine.from_artifacts``), re-issues the same
  ``warm()`` ladder (all no-ops: the tapes came off disk), and runs the
  same batch.

Both children time themselves from interpreter entry to the first
completed batch (imports included — a cold replica pays those either
way), and both write their output words so the parent can assert the
**bitwise guarantee across the process boundary** before it asserts the
speedup.  The CI floor is >= 2x (measured ~2.8x on an unloaded machine);
the JSON trail lands in ``BENCH_PR5.json`` next to the repo's other perf
artifacts.

Run:  pytest benchmarks/bench_store.py -q
"""

import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.engine import InferenceEngine
from repro.workloads.mlp import build_mlp_model

# Mid-size MLP: real per-lane math, every recording pass sub-second.
DIMS = [512, 1024, 1024, 512]
BATCH = 64
# The batch sizes a dynamic-batching server actually coalesces; the cold
# bring-up records one tape per rung, the warm one loads them all.
LADDER = (1, 2, 4, 8, 16, 32, 64)
# CI floor.  Deliberately below the measured ~2.8x so a loaded shared
# runner does not flake; the JSON records the real measurement.
MIN_SPEEDUP = 2.0

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR5.json"
SRC = str(Path(__file__).resolve().parent.parent / "src")

# Both children time from interpreter entry (before the heavy imports).
_CHILD_PROLOGUE = """\
import time
_t0 = time.perf_counter()
import sys
import numpy as np
from repro.engine import InferenceEngine
"""

_COLD_CHILD = _CHILD_PROLOGUE + """\
from repro.workloads.mlp import build_mlp_model

dims = [int(d) for d in sys.argv[1].split(",")]
ladder = [int(b) for b in sys.argv[2].split(",")]
engine = InferenceEngine(build_mlp_model(dims, seed=0), seed=0)
for batch in ladder:
    engine.warm(batch=batch)
with np.load(sys.argv[3]) as data:
    inputs = {name: data[name] for name in data.files}
result = engine.run_batch(inputs)
elapsed = time.perf_counter() - _t0
engine.save_artifacts(sys.argv[4])
np.savez(sys.argv[5], elapsed=np.array(elapsed),
         execution=np.array(result.execution),
         cycles=np.array(result.cycles),
         **{name: result[name] for name in result})
"""

_WARM_CHILD = _CHILD_PROLOGUE + """\
engine = InferenceEngine.from_artifacts(sys.argv[1])
for batch in (int(b) for b in sys.argv[2].split(",")):
    engine.warm(batch=batch)        # no-ops: the tape came off disk
with np.load(sys.argv[3]) as data:
    inputs = {name: data[name] for name in data.files}
result = engine.run_batch(inputs)
elapsed = time.perf_counter() - _t0
np.savez(sys.argv[4], elapsed=np.array(elapsed),
         execution=np.array(result.execution),
         cycles=np.array(result.cycles),
         **{name: result[name] for name in result})
"""


def _run_child(script, args, out_file):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run([sys.executable, "-c", script, *args], check=True,
                   env=env, timeout=600)
    with np.load(out_file) as data:
        return {name: data[name] for name in data.files}


def test_store_cold_process_speedup(once):
    """Warm-start TTFR >= 2x over a cold process, bitwise identical."""

    def measure():
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            engine = InferenceEngine(build_mlp_model(DIMS, seed=0), seed=0)
            rng = np.random.default_rng(0)
            inputs = {"x": engine.quantize(
                rng.normal(0.0, 0.5, size=(BATCH, DIMS[0])))}
            inputs_file = tmp / "inputs.npz"
            np.savez(inputs_file, **inputs)
            artifact = tmp / "artifact"
            dims = ",".join(str(d) for d in DIMS)
            ladder = ",".join(str(b) for b in LADDER)

            cold = _run_child(
                _COLD_CHILD,
                [dims, ladder, str(inputs_file), str(artifact),
                 str(tmp / "cold.npz")],
                tmp / "cold.npz")
            warm = _run_child(
                _WARM_CHILD,
                [str(artifact), ladder, str(inputs_file),
                 str(tmp / "warm.npz")],
                tmp / "warm.npz")

            output_names = [n for n in cold
                            if n not in ("elapsed", "execution", "cycles")]
            mismatch = not all(np.array_equal(cold[name], warm[name])
                               for name in output_names)
            return {
                "mismatch": mismatch,
                "execution_cold": str(cold["execution"]),
                "execution_warm": str(warm["execution"]),
                "cycles_cold": int(cold["cycles"]),
                "cycles_warm": int(warm["cycles"]),
                "t_cold_s": float(cold["elapsed"]),
                "t_warm_s": float(warm["elapsed"]),
                "artifact_bytes": sum(
                    f.stat().st_size for f in artifact.iterdir()),
            }

    m = once(measure)
    speedup = m["t_cold_s"] / m["t_warm_s"]
    print(f"\nbatch-{BATCH} MLP {DIMS}, tape ladder {list(LADDER)} — "
          f"time-to-first-result: cold process {m['t_cold_s']:.2f} s, "
          f"warm (from_artifacts) {m['t_warm_s']:.2f} s -> "
          f"{speedup:.2f}x (artifact {m['artifact_bytes'] / 2**20:.1f} MiB)")

    assert not m["mismatch"], \
        "warm-started outputs differ from the cold process"
    assert m["cycles_warm"] == m["cycles_cold"], \
        "modelled cycles must not depend on how the engine was built"
    # Both sides serve the measured batch from the optimized tape (the
    # cold child recorded it during bring-up; the warm child loaded it,
    # optimizer plan included).
    assert m["execution_cold"] == "optimized"
    assert m["execution_warm"] == "optimized"
    assert speedup >= MIN_SPEEDUP, (
        f"cold-process warm-start speedup {speedup:.2f}x below the "
        f"{MIN_SPEEDUP}x CI floor")

    BENCH_PATH.write_text(json.dumps({
        "benchmark": "artifact_store_cold_process_ttfr",
        "dims": DIMS,
        "batch": BATCH,
        "tape_ladder": list(LADDER),
        "speedup": speedup,
        "min_speedup_ci": MIN_SPEEDUP,
        **{k: v for k, v in m.items()},
        "python": platform.python_version(),
        "machine": platform.machine(),
    }, indent=2) + "\n")
    print(f"wrote {BENCH_PATH}")
