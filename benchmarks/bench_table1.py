"""Table 1: workload characterization."""

from repro.figures import table1


def test_table1(benchmark):
    rows = benchmark(table1.rows)
    assert len(rows) == 3
    mlp, lstm, cnn = rows
    assert mlp["Bounded resource"] == "Memory"
    assert lstm["Bounded resource"] == "Memory"
    assert cnn["Bounded resource"] == "Compute"
    print()
    print(table1.render())
