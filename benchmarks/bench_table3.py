"""Table 3: PUMA hardware characteristics (component model roll-ups)."""

import pytest

from repro.figures import table3


def test_table3(benchmark):
    rows = benchmark(table3.rows)
    by_name = {r["component"]: r for r in rows}
    node = by_name["Node"]
    assert node["model_power_mw"] == pytest.approx(62500, rel=0.03)
    assert node["model_area_mm2"] == pytest.approx(90.638, rel=0.03)
    print()
    print(table3.render())
