"""Table 5: benchmark catalog with parameter counts."""

import pytest

from repro.figures import table5


def test_table5(benchmark):
    rows = benchmark(table5.rows)
    params = {r["DNN Name"]: r["# Parameters (M)"] for r in rows}
    assert params["MLPL4"] == pytest.approx(5, rel=0.05)
    assert params["NMTL3"] == pytest.approx(91, rel=0.02)
    assert params["BigLSTM"] == pytest.approx(856, rel=0.01)
    assert params["Vgg16"] == pytest.approx(136, rel=0.03)
    print()
    print(table5.render())
