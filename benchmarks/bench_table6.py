"""Table 6: comparison with the TPU and ISAAC."""

import pytest

from repro.figures import table6


def test_table6(benchmark):
    factors = benchmark(table6.comparison_factors)
    # Paper: PUMA has 8.3x the TPU's peak area efficiency, 1.65x its
    # power efficiency; 29.2%/20.7% below ISAAC's (programmability cost).
    assert factors["puma_vs_tpu_peak_ae"] == pytest.approx(8.3, rel=0.05)
    assert factors["puma_vs_tpu_peak_pe"] == pytest.approx(1.65, rel=0.05)
    assert factors["puma_vs_isaac_ae"] == pytest.approx(0.708, rel=0.05)
    assert factors["puma_vs_isaac_pe"] == pytest.approx(0.793, rel=0.05)
    print()
    print(table6.render())
