"""Table 7: programmability comparison with ISAAC."""

from repro.figures import table7


def test_table7(benchmark):
    rows = benchmark(table7.rows)
    workloads = next(r for r in rows if r["Aspect"] == "Workloads")
    assert workloads["ISAAC"] == "CNN"
    assert "LSTM" in workloads["PUMA"]
    print()
    print(table7.render())
