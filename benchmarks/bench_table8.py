"""Table 8: optimization ablations (compiled and simulated)."""

from repro.figures import table8


def test_table8_compiled_ablations(once):
    table8.compiled_ablation_rows.cache_clear()
    rows = once(table8.compiled_ablation_rows)
    for row in rows:
        # Affinity partitioning never loses to random placement.
        assert row["Graph partitioning (energy)"] <= 1.02
        # Paper: little or no spilled-register traffic.
        assert row["Register pressure (% spilled)"] < 3.0
        # Coalescing cannot hurt latency.
        assert row["MVM coalescing (latency)"] <= 1.0
    print()
    print(table8.render())


def test_table8_input_shuffling(once):
    ratios = once(table8.input_shuffling_ratios)
    # Shuffling halves the XbarIn traffic on Lenet5.
    assert ratios["load_words_ratio"] < 0.6
    assert ratios["energy_ratio"] <= 1.0


def test_table8_shared_memory_sizing(once):
    rows = once(table8.shared_memory_sizing_rows)
    ratios = {r["Workload"]: r["Energy ratio"] for r in rows}
    assert ratios["MLPL4"] == 1          # MLPs gain nothing (no reuse)
    assert ratios["NMTL3"] < 0.9         # pipelined sizing saves energy
    assert ratios["Vgg16"] < 1.0
