"""Toolchain throughput: compiler and simulator performance.

Not a paper exhibit — keeps the reproduction's own machinery honest by
timing how fast models compile and how fast PUMAsim retires instructions.
"""

import numpy as np

from repro import compile_model, default_config
from repro.engine import InferenceEngine
from repro.fixedpoint import FixedPointFormat
from repro.workloads.mlp import build_mlp_model

FMT = FixedPointFormat()
CFG = default_config()
DIMS = [256, 384, 384, 128]


def test_compile_throughput(benchmark):
    def compile_once():
        return compile_model(build_mlp_model(DIMS, seed=1), CFG)

    compiled = benchmark(compile_once)
    assert compiled.program.total_instructions() > 0


def test_simulation_throughput(benchmark):
    engine = InferenceEngine(build_mlp_model(DIMS, seed=1), CFG, seed=0)
    x = FMT.quantize(np.random.default_rng(0).normal(0, 0.3, size=DIMS[0]))

    result = benchmark(engine.run, {"x": x})
    assert result.stats.total_instructions > 0


def test_mvmu_throughput(benchmark):
    """Functional crossbar MVM rate (the simulator's inner loop)."""
    from repro.arch.crossbar import CrossbarModel
    from repro.arch.mvmu import MVMU

    rng = np.random.default_rng(0)
    mvmu = MVMU(CrossbarModel(), FMT)
    mvmu.program(FMT.quantize(rng.normal(0, 0.1, size=(128, 128))))
    x = FMT.quantize(rng.normal(0, 0.5, size=128))

    result = benchmark(mvmu.execute, x)
    assert result.shape == (128,)
