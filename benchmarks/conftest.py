"""Benchmark harness configuration.

Each ``bench_*`` module regenerates one of the paper's tables or figures
(see DESIGN.md's per-experiment index) under pytest-benchmark timing.
Expensive exhibits run one round via ``benchmark.pedantic``.

Run:  pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a regeneration exactly once under timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run
