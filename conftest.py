"""Repo-level pytest configuration.

Defines the ``--update-golden`` flag used by the codegen snapshot tests
(``tests/test_golden_codegen.py``): golden disassembly files under
``tests/golden/`` are compared by default and regenerated when the flag
is passed.  The option lives here (not in ``tests/conftest.py``) because
pytest only honours ``pytest_addoption`` from initial conftests.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate the golden codegen snapshots under tests/golden/ "
             "instead of comparing against them")
