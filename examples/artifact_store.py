"""Artifact store: pay compilation/programming/recording once per fleet.

PUMA's premise is that inference cost is paid at configuration time and
amortized across requests (Section 3.2.5).  The in-process caches
amortize within one process; :mod:`repro.store` amortizes across
*processes*: one engine serializes its compilation, programmed crossbar
state, and batch-generic execution tape (optimizer plan included)
into an on-disk artifact, and any
later process loads it back and serves **bitwise identically** — no
compile, no programming pass, no tape recording.

This example plays both roles in one script:

1. the "warm" process: build an engine, pre-record the tape (and the
   serving batch size's timing stats), and ``save_artifacts``;
2. the "cold replica": ``InferenceEngine.from_artifacts`` in a real
   subprocess, which verifies its outputs match the builder bit for bit
   and reports its time-to-first-result.

Run:  python examples/artifact_store.py
"""

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.engine import InferenceEngine
from repro.store import store_info
from repro.workloads.mlp import FIGURE4_MLP_DIMS, build_mlp_model

BATCH = 16

_REPLICA = """\
import time
_t0 = time.perf_counter()
import sys
import numpy as np
from repro.engine import InferenceEngine

engine = InferenceEngine.from_artifacts(sys.argv[1])
with np.load(sys.argv[2]) as data:
    inputs = {name: data[name] for name in data.files}
result = engine.run_batch(inputs)
print(f"  replica: first result in {time.perf_counter() - _t0:.2f} s "
      f"(execution={result.execution})")
np.savez(sys.argv[3], **{name: result[name] for name in result})
"""


def main() -> None:
    dims = list(FIGURE4_MLP_DIMS)
    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "artifact"

        t0 = time.perf_counter()
        engine = InferenceEngine(build_mlp_model(dims, seed=0), seed=0)
        engine.warm(batch=BATCH)           # program + record the tape
        engine.save_artifacts(artifact)
        print(f"built + saved {dims} MLP artifact in "
              f"{time.perf_counter() - t0:.2f} s "
              f"({sum(f.stat().st_size for f in artifact.iterdir()) / 2**20:.1f} MiB)")

        rng = np.random.default_rng(0)
        inputs = {"x": engine.quantize(
            rng.normal(0.0, 0.4, size=(BATCH, dims[0])))}
        reference = engine.run_batch(inputs)

        inputs_file = Path(tmp) / "inputs.npz"
        outputs_file = Path(tmp) / "outputs.npz"
        np.savez(inputs_file, **inputs)
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        print("spawning a cold replica process...")
        subprocess.run(
            [sys.executable, "-c", _REPLICA, str(artifact),
             str(inputs_file), str(outputs_file)], check=True, env=env)

        with np.load(outputs_file) as replica:
            for name in reference:
                assert np.array_equal(replica[name], reference[name]), name
        print("  replica outputs are bitwise identical to the builder's")
        print(f"store counters: {store_info()}")


if __name__ == "__main__":
    main()
