"""Async serving: concurrent clients, dynamic micro-batching, one engine.

The PUMA deployment model (Section 3.2.5 + 7.3): program the crossbars
once, then serve a stream of requests through them.
:class:`~repro.serve.PumaServer` is the software front-end for that —
clients submit single float-vector requests concurrently; the server
coalesces whatever is waiting (up to ``max_batch_size``, held open for
``batch_window_s``) into one SIMD-over-batch pass and hands each client
its own :class:`~repro.serve.RunResult`.

The script fires 32 clients with staggered arrivals, verifies every
response is bitwise identical to the sequential single-input reference,
and prints the batching counters.

Run:  python examples/async_serving.py
"""

import asyncio

import numpy as np

from repro import InferenceEngine, PumaServer
from repro.engine import compile_cache_info
from repro.workloads.mlp import FIGURE4_MLP_DIMS, build_mlp_model

CLIENTS = 32
MAX_BATCH = 8


async def client(server: PumaServer, x: np.ndarray, delay_s: float):
    """One user: arrive after ``delay_s``, submit, await the result."""
    await asyncio.sleep(delay_s)
    return await server.submit({"x": x})


async def main() -> None:
    dims = list(FIGURE4_MLP_DIMS)
    engine = InferenceEngine(build_mlp_model(dims, seed=0), seed=0)
    rng = np.random.default_rng(1)
    xs = rng.normal(0.0, 0.5, size=(CLIENTS, dims[0]))
    # Deterministic staggered arrivals: three waves of concurrent users.
    delays = [0.01 * (i % 3) for i in range(CLIENTS)]

    async with PumaServer(engine, max_batch_size=MAX_BATCH,
                          batch_window_s=0.02) as server:
        results = await asyncio.gather(
            *(client(server, xs[i], delays[i]) for i in range(CLIENTS)))
        counters = server.counters

    print(f"served {counters.requests_served} requests in "
          f"{counters.batches_formed} simulator passes "
          f"(mean batch {counters.mean_batch_size:.1f}, "
          f"{counters.mean_occupancy * 100:.0f}% of max {MAX_BATCH})")
    assert counters.batches_formed < CLIENTS, \
        "dynamic batching must coalesce concurrent requests"

    # Every per-request result is bitwise the sequential reference.
    reference = engine.run_sequential({"x": engine.quantize(xs)})
    for i, result in enumerate(results):
        assert np.array_equal(result["out"], reference["out"][i]), i
    print("all responses bitwise identical to the sequential reference")

    sample = results[0]
    print(f"request 0 rode in a batch of {sample.batch}: "
          f"{sample.cycles_per_inference:.0f} cycles/inference, "
          f"{sample.energy_per_inference_j * 1e9:.1f} nJ/inference")
    print(f"compile cache: {compile_cache_info()}")
    print("OK")


if __name__ == "__main__":
    asyncio.run(main())
