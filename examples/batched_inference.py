"""Batched inference: serve many inputs through one compiled model.

Builds the Figure-4 MLP, compiles it once through the cached
:class:`repro.engine.InferenceEngine`, then pushes a 64-input batch through
a single SIMD-over-batch simulation and compares against the sequential
per-input path — same bits, a fraction of the wall-clock, and amortized
simulated latency/energy per inference (the paper's Section 7.3 batching
story).

Run:  python examples/batched_inference.py
"""

import time

import numpy as np

from repro.engine import InferenceEngine
from repro.workloads.mlp import FIGURE4_MLP_DIMS, build_mlp_model, mlp_reference

BATCH = 64


def main() -> None:
    dims = list(FIGURE4_MLP_DIMS)
    engine = InferenceEngine(build_mlp_model(dims, seed=0), seed=0)
    print(f"compiled {dims} MLP onto {engine.compiled.num_mvmus_used} MVMUs "
          f"/ {engine.compiled.num_cores_used} cores (cached)")

    rng = np.random.default_rng(1)
    x_real = rng.normal(0.0, 0.5, size=(BATCH, dims[0]))
    inputs = {"x": engine.quantize(x_real)}

    t0 = time.perf_counter()
    batched = engine.run_batch(inputs)
    t_batched = time.perf_counter() - t0
    print(f"batched:    {BATCH} inferences in one pass, "
          f"{t_batched * 1e3:.1f} ms wall, {batched.cycles} simulated "
          f"cycles ({batched.cycles_per_inference:.0f}/inference)")

    t0 = time.perf_counter()
    sequential = engine.run_sequential(inputs)
    t_sequential = time.perf_counter() - t0
    print(f"sequential: {BATCH} single-input passes, "
          f"{t_sequential * 1e3:.1f} ms wall "
          f"({sequential.stats.cycles} cycles each)")

    assert all(np.array_equal(batched[k], sequential[k]) for k in batched)
    print(f"outputs bitwise identical; "
          f"speedup {t_sequential / t_batched:.1f}x")

    expected = mlp_reference(dims, x_real, seed=0)
    error = np.abs(engine.dequantize(batched["out"]) - expected).max()
    print(f"max |PUMA - numpy| = {error:.4f} (16-bit fixed point)")
    assert error < 0.1
    print("OK")


if __name__ == "__main__":
    main()
