"""Lenet5 on PUMA through the loop-based CNN lowering.

Convolutions compile to row/column loops (``brn`` + scalar address
arithmetic — the control-flow share Figure 4 shows for CNNs), with sliding
windows kept in XbarIn as circular buffers via the MVM filter/stride
operands (input shuffling, Section 3.2.3).  The script runs the same image
with shuffling on and off: identical results, much less data movement.

Run:  python examples/cnn_lenet.py
"""

import numpy as np

from repro import InferenceEngine, default_config
from repro.compiler.cnn import cnn_reference, compile_cnn
from repro.isa.opcodes import Opcode
from repro.workloads.cnn import build_lenet5_spec


def run(spec, image, input_shuffle):
    config = default_config()
    compiled = compile_cnn(spec, config, input_shuffle=input_shuffle)
    engine = InferenceEngine.from_compiled(compiled, config, seed=0)
    result = engine.predict({"image": image.reshape(-1)})
    return result.outputs["out"], result


def main() -> None:
    spec = build_lenet5_spec(seed=2)
    rng = np.random.default_rng(4)
    image = rng.uniform(-0.5, 0.5, size=(32, 32, 1))

    logits_shuffled, res_s = run(spec, image, input_shuffle=True)
    logits_plain, res_p = run(spec, image, input_shuffle=False)
    reference = cnn_reference(spec, image)

    print("Lenet5 (conv 5x5x6 / pool / conv 5x5x16 / pool / 400-120-84-10)")
    print(f"predicted class: {np.argmax(logits_shuffled)} "
          f"(float reference: {np.argmax(reference)})")
    print(f"max |PUMA - numpy| = "
          f"{np.abs(logits_shuffled - reference).max():.4f}")
    assert np.argmax(logits_shuffled) == np.argmax(reference)
    assert np.allclose(logits_shuffled, logits_plain, atol=1e-9), \
        "shuffled and plain codegen must agree bit-for-bit"

    words_s = res_s.stats.words_by_opcode[Opcode.LOAD]
    words_p = res_p.stats.words_by_opcode[Opcode.LOAD]
    print(f"\nwith input shuffling:    {words_s:8d} words loaded, "
          f"{res_s.cycles} cycles")
    print(f"without input shuffling: {words_p:8d} words loaded, "
          f"{res_p.cycles} cycles")
    print(f"shuffling moves {words_s / words_p:.2f}x the data "
          "(reused window columns stay in XbarIn; the MVM's filter/stride "
          "operands rotate them logically)")

    brn = res_s.stats.dynamic_instructions[Opcode.BRN]
    print(f"\ndynamic branches executed: {brn} "
          "(row and column loops; Figure 4's CNN control flow)")


if __name__ == "__main__":
    main()
