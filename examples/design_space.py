"""Design-space exploration with the Table 3 component models.

Recomputes the paper's headline efficiency numbers (Table 6's 52.31 TOPS/s,
0.58 TOPS/s/mm2, 0.84 TOPS/s/W node metrics) from the configuration, then
walks the Figure 12 sweeps to show why the shipped design point —
128x128 crossbars, 2 MVMUs/core, narrow VFU, 8 cores/tile — sits where
it does.

Run:  python examples/design_space.py
"""

from repro import default_config
from repro.baselines.digital_mvmu import digital_mvmu_comparison
from repro.energy.area import node_metrics
from repro.energy.dse import SWEEP_PARAMETERS_DOC, sweep, sweet_spot


def main() -> None:
    metrics = node_metrics(default_config())
    print("PUMA node (Table 3 configuration):")
    print(f"  peak throughput : {metrics.peak_tops:.2f} TOPS/s "
          "(paper: 52.31)")
    print(f"  area            : {metrics.area_mm2:.1f} mm2 (paper: 90.6)")
    print(f"  power           : {metrics.power_w:.1f} W (paper: 62.5)")
    print(f"  area efficiency : {metrics.tops_per_mm2:.3f} TOPS/s/mm2 "
          "(paper: 0.58)")
    print(f"  power efficiency: {metrics.tops_per_w:.3f} TOPS/s/W "
          "(paper: 0.84)")
    print(f"  weight capacity : {metrics.weight_capacity_bytes / 2**20:.0f} "
          "MB (paper: 69 MB)")

    cmp = digital_mvmu_comparison()
    print("\nWhy analog? A latency-matched digital MVMU would cost "
          f"{cmp.energy_factor:.2f}x the energy and {cmp.area_factor:.1f}x "
          "the area (Section 7.4.3: 4.17x / 8.97x).")

    sp = sweet_spot()
    print(f"\nFigure 12 sweeps (tile level; sweet spot {sp.gops:.0f} GOPS, "
          f"{sp.gops_per_mm2:.0f} GOPS/s/mm2, {sp.gops_per_w:.0f} GOPS/s/W):")
    for parameter in ("mvmu_dim", "num_mvmus", "vfu_width", "num_cores",
                      "rf_scale"):
        points = sweep(parameter)
        print(f"\n  {parameter}: {SWEEP_PARAMETERS_DOC[parameter]}")
        for p in points:
            marker = " <-- design point" if _is_design_point(parameter, p) \
                else ""
            print(f"    {getattr(p, parameter):>6} : "
                  f"AE {p.gops_per_mm2:6.1f}  PE {p.gops_per_w:6.1f}"
                  f"{marker}")


def _is_design_point(parameter: str, point) -> bool:
    design = {"mvmu_dim": 128, "num_mvmus": 2, "vfu_width": 4,
              "num_cores": 8, "rf_scale": 1.0}
    return getattr(point, parameter) == design[parameter]


if __name__ == "__main__":
    main()
