"""Fleet serving: worker processes, a networked store, one front door.

PUMA's production story (Section 7.3) is many accelerator nodes serving
the same programmed models behind one endpoint.  :mod:`repro.fleet` is
that layer in miniature, with every moving part real: worker processes
are spawned (not forked — they start with cold caches, like a fresh
node), artifacts move over HTTP with integrity hashes, and the front
door routes by consistent hashing on each model's route key.

This example walks the lifecycle an operator would see:

1. deploy three models onto a 2-worker fleet — each model cold-builds
   on one worker, which publishes its artifact blob; the *other* worker
   warm-starts over the network without ever running the compiler;
2. replay a deterministic bursty trace through the HTTP front door and
   read the load report (p50/p99, throughput, zero failures);
3. spot-check a fleet reply **bitwise** against a local single-engine
   build — which replica answered is unobservable by design;
4. kill a worker and watch the health loop evict and respawn it; the
   replacement warm-starts off the networked store too;
5. stop the fleet gracefully — queued requests drain, nothing drops.

Run:  python examples/fleet_serving.py
"""

import asyncio
import tempfile
import time

import numpy as np

from repro.fleet import (
    FleetModelSpec,
    PumaFleet,
    build_engine,
    bursty_trace,
    default_inputs_builder,
    run_trace,
)

SPECS = [
    FleetModelSpec("mlp", "mlp", {"dims": [32, 24, 10]}),
    FleetModelSpec("lstm", "lstm",
                   {"input_size": 8, "hidden_size": 12, "output_size": 6}),
    FleetModelSpec("noisy-mlp", "mlp", {"dims": [32, 24, 10]},
                   crossbar={"write_noise_sigma": 0.05}),
]
LAYOUTS = {
    "mlp": {"x": 32},
    "lstm": {"x0": 8, "x1": 8},
    "noisy-mlp": {"x": 32},
}


async def demo(work_dir: str) -> None:
    async with PumaFleet(SPECS, num_workers=2, replicas_per_model=2,
                         work_dir=work_dir, max_batch_size=8,
                         health_interval_s=0.2,
                         health_failures=1) as fleet:
        print(f"fleet up at {fleet.url}: 2 workers, "
              f"{len(SPECS)} models, 2 replicas each")

        # -- 1. who built, who warm-started ----------------------------
        metrics = await fleet.metrics()
        for worker_id, entry in sorted(metrics["workers"].items()):
            hosted = ", ".join(
                f"{m['name']} ({m['source']})"
                for m in entry["metrics"]["models"].values())
            print(f"  {worker_id}: {hosted}")
        print(f"  blob store: {len(metrics['fleet']['store_blobs'])} "
              f"artifacts (one per model — replicas pulled, not rebuilt)")

        # -- 2. a bursty trace through the front door ------------------
        trace = bursty_trace([s.name for s in SPECS], 48,
                             base_rate_rps=120.0, seed=1)
        inputs_for = default_inputs_builder(LAYOUTS)
        report = await run_trace(fleet.host, fleet.http.port, trace,
                                 inputs_for)
        print(f"trace: {report.summary()}")

        # -- 3. the bitwise spot check ---------------------------------
        arrival = trace[0]
        reply = await fleet.predict(arrival.model, inputs_for(arrival))
        local = build_engine(next(s for s in SPECS
                                  if s.name == arrival.model))
        reference = local.predict(
            {name: np.asarray(values)
             for name, values in inputs_for(arrival).items()})
        matched = reply["words"] == {name: reference[name].tolist()
                                     for name in reference}
        print(f"bitwise vs local engine ({arrival.model}, "
              f"answered by {reply['worker']}): "
              f"{'identical' if matched else 'MISMATCH'}")

        # -- 4. kill a worker; the fleet heals -------------------------
        victim = next(iter(fleet.manager.workers))
        fleet.manager.workers[victim].process.terminate()
        print(f"killed {victim}; requests keep flowing while the "
              f"health loop evicts + respawns...")
        reply = await fleet.predict(arrival.model, inputs_for(arrival))
        assert reply["words"] == {name: reference[name].tolist()
                                  for name in reference}
        deadline = time.monotonic() + 30
        while fleet.respawns < 1 and time.monotonic() < deadline:
            await asyncio.sleep(0.1)
        print(f"evictions {fleet.evictions}, respawns {fleet.respawns}, "
              f"workers {len(fleet.manager.workers)}")

    # -- 5. the context manager exit above was the graceful drain ------
    print("fleet stopped: queued work drained, workers shut down")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-fleet-demo-") as tmp:
        asyncio.run(demo(tmp))


if __name__ == "__main__":
    main()
