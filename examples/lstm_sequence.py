"""LSTM sequence processing on PUMA — the workload class the paper first
demonstrated on a memristor accelerator (Section 2.2).

Unrolls an LSTM over a short input sequence, compiles it (the gate matvec
coalesces onto both MVMUs of a core; sigmoid/tanh evaluate through the
ROM-Embedded RAM), simulates it, checks numerics against numpy, and prints
where the cycles and energy went.

Run:  python examples/lstm_sequence.py
"""

import numpy as np

from repro import InferenceEngine, default_config
from repro.isa.opcodes import Opcode
from repro.workloads.lstm import build_lstm_model, lstm_reference

INPUT, HIDDEN, OUTPUT, STEPS = 64, 128, 32, 3


def main() -> None:
    model = build_lstm_model(INPUT, HIDDEN, OUTPUT, seq_len=STEPS, seed=7)
    engine = InferenceEngine(model, default_config(), seed=0)
    compiled = engine.compiled
    usage = compiled.program.usage_breakdown()
    print(f"compiled LSTM({INPUT}-{HIDDEN}-{OUTPUT}) x {STEPS} steps:")
    print(f"  {compiled.num_mvmus_used} MVMUs, {compiled.num_cores_used} "
          f"cores, {compiled.num_tiles_used} tile(s)")
    print(f"  static instruction mix: {usage}")

    rng = np.random.default_rng(3)
    xs = [rng.normal(0, 0.4, size=INPUT) for _ in range(STEPS)]
    run = engine.predict({f"x{t}": xs[t] for t in range(STEPS)})
    result = run.outputs["out"]

    expected = lstm_reference(INPUT, HIDDEN, OUTPUT, xs, seed=7)
    error = np.abs(result - expected).max()
    print(f"\nsimulated {run.cycles} cycles "
          f"({run.latency_ns / 1000:.1f} us), "
          f"{run.energy_j * 1e6:.2f} uJ")
    print(f"max |PUMA - numpy| = {error:.4f}")
    assert error < 0.05

    mvms = run.stats.dynamic_instructions.get(Opcode.MVM, 0)
    print(f"\ndynamic MVM instructions: {mvms} "
          f"({STEPS} steps x gate+projection tiles, coalesced)")
    print("energy by component:")
    for category, joules in sorted(run.stats.energy.as_dict().items(),
                                   key=lambda kv: -kv[1]):
        if joules > 0:
            share = joules / run.energy_j * 100
            print(f"  {category:<14s} {joules * 1e6:8.3f} uJ  ({share:4.1f}%)")
    print("\nMVM (crossbar) energy dominates — the in-memory computing "
          "advantage the paper builds on.")


if __name__ == "__main__":
    main()
