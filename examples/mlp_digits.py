"""Digit-style classification on PUMA: train in float, deploy on crossbars.

The inference-accelerator workflow of the paper: a classifier is trained
offline (numpy SGD), its weights are written into memristor crossbars at
configuration time (Section 3.2.5), and inference runs entirely on-chip in
16-bit fixed point.  The script compares float accuracy against the
simulated fixed-point accelerator, and then against deployment on *noisy*
crossbars (the Figure 13 scenario).

Run:  python examples/mlp_digits.py
"""

import numpy as np

from repro.accuracy import (
    corrupt_weights,
    make_dataset,
    rescale_for_fixed_point,
    simulated_accuracy,
    train_mlp,
)


def puma_accuracy(weights, data, samples=60):
    """Score on the detailed simulator: all samples, one batched pass."""
    return simulated_accuracy(weights, data.x_test, data.y_test, samples)


def main() -> None:
    data = make_dataset(seed=0)
    model = train_mlp(data, seed=0)
    float_acc = model.accuracy(data.x_test, data.y_test)
    print(f"float accuracy:                {float_acc * 100:.1f}%")

    # Deploy-time rescaling keeps pre-activations inside the 16-bit
    # fixed-point range (argmax is unchanged for ReLU networks).
    deployed = rescale_for_fixed_point(model.weights, data.x_train)
    puma_acc = puma_accuracy(deployed, data)
    print(f"PUMA 16-bit fixed point:       {puma_acc * 100:.1f}% "
          "(simulated, ideal crossbars)")

    rng = np.random.default_rng(1)
    for bits, sigma in ((2, 0.3), (6, 0.3)):
        noisy = [(corrupt_weights(w, bits, sigma, rng), b)
                 for w, b in deployed]
        acc = puma_accuracy(noisy, data)
        print(f"PUMA {bits}-bit cells, sigma={sigma}: "
              f"{acc * 100:.1f}% (simulated, noisy crossbars)")

    print("\nThe 2-bit configuration (the paper's conservative choice) "
          "holds accuracy; 6-bit cells collapse under the same write "
          "noise — Figure 13's conclusion.")


if __name__ == "__main__":
    main()
