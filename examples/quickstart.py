"""Quickstart: the paper's Figure 7 example, end to end.

Builds ``z = tanh(A @ x + B @ y)`` with the high-level programming
interface, compiles it with the full backend (tiling, partitioning, MVM
coalescing, scheduling, register allocation) through the
:class:`~repro.engine.InferenceEngine`, runs it float-first on the
detailed PUMAsim simulator, and checks the result against numpy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ConstMatrix,
    InferenceEngine,
    InVector,
    Model,
    OutVector,
    default_config,
    tanh,
)

M, N = 256, 128


def main() -> None:
    rng = np.random.default_rng(42)
    a = rng.normal(0, 0.1, size=(M, N))
    b = rng.normal(0, 0.1, size=(M, N))

    # 1. Describe the model (Figure 7's code, in Python).
    model = Model.create("example")
    x = InVector.create(model, M, "x")
    y = InVector.create(model, M, "y")
    z = OutVector.create(model, N, "z")
    mat_a = ConstMatrix.create(model, M, N, "A", a)
    mat_b = ConstMatrix.create(model, M, N, "B", b)
    z.assign(tanh(mat_a @ x + mat_b @ y))

    # 2. Compile to PUMA ISA (cached process-wide by the engine).
    engine = InferenceEngine(model, default_config(), seed=0)
    compiled = engine.compiled
    print(f"compiled onto {compiled.num_mvmus_used} MVMUs across "
          f"{compiled.num_cores_used} cores / {compiled.num_tiles_used} "
          f"tile(s); {compiled.program.total_instructions()} instructions")
    print(f"coalesced MVM instructions: {compiled.coalesced_mvm_instructions}"
          f" (for {compiled.num_mvmus_used} weight tiles)")

    # 3. Simulate — floats in, floats out; quantization is the engine's job.
    xv = rng.normal(0, 0.5, size=M)
    yv = rng.normal(0, 0.5, size=M)
    result = engine.predict({"x": xv, "y": yv})

    # 4. Compare against numpy.
    expected = np.tanh(xv @ a + yv @ b)
    error = np.abs(result.outputs["z"] - expected).max()
    print(f"\nsimulated {result.cycles} cycles "
          f"({result.latency_ns / 1000:.2f} us), "
          f"{result.energy_j * 1e9:.1f} nJ")
    print(f"max |PUMA - numpy| = {error:.4f} (16-bit fixed point)")
    assert error < 0.05
    print("OK")


if __name__ == "__main__":
    main()
