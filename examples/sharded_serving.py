"""Sharded serving: fan a batch out across engine replicas.

PUMA reaches production throughput by spatial replication — many nodes,
each holding a copy of the programmed weights, each serving a slice of
the traffic (Section 7.3).  :class:`repro.serve.ShardedEngine` is that
data-parallel layer: it splits a ``(batch, length)`` request across N
:class:`~repro.engine.InferenceEngine` replicas, runs the shards
concurrently, and merges the results **bitwise identically** to a
single-engine pass.  Merged stats model the replicas running side by
side: cycles are the max over shards (the modelled throughput win),
energy and instruction counters the sum.

Replication is nearly free: replicas share the process-wide compile
cache and the compiled model's programmed-crossbar state, so the weights
are compiled and programmed once no matter how many replicas serve them.

The example finishes with the same fan-out driving the async front-end:
``PumaServer(engine, num_shards=...)`` splits every dynamically-formed
micro-batch across the replicas.

Run:  python examples/sharded_serving.py
"""

import asyncio

import numpy as np

from repro.engine import InferenceEngine
from repro.serve import PumaServer, ShardedEngine
from repro.workloads.mlp import FIGURE4_MLP_DIMS, build_mlp_model

BATCH = 64
SHARDS = 4


def main() -> None:
    dims = list(FIGURE4_MLP_DIMS)
    engine = InferenceEngine(build_mlp_model(dims, seed=0), seed=0)
    print(f"compiled {dims} MLP onto {engine.compiled.num_mvmus_used} MVMUs; "
          f"replicas share the compilation and programmed crossbars")

    rng = np.random.default_rng(1)
    x = rng.normal(0.0, 0.5, size=(BATCH, dims[0]))

    single = engine.predict({"x": x})
    print(f"single engine: batch {BATCH} in one pass, "
          f"{single.cycles} simulated cycles "
          f"({single.cycles_per_inference:.0f}/inference)")

    # Thread workers keep the example portable; use executor="process"
    # (the default where fork exists) for real multi-core wall-clock wins.
    with ShardedEngine(engine, num_shards=SHARDS,
                       executor="thread") as sharded:
        merged = sharded.predict({"x": x})
    assert all(np.array_equal(single[name], merged[name]) for name in single)
    per_shard = [s.cycles for s in merged.shard_stats]
    print(f"{SHARDS} shards:     lanes split {per_shard} cycles/shard, "
          f"merged cycles = max = {merged.cycles} "
          f"({single.cycles / merged.cycles:.1f}x modelled speedup)")
    print(f"outputs bitwise identical to the single engine; energy "
          f"{merged.energy_j * 1e6:.1f} uJ total "
          f"(sum over replicas, was {single.energy_j * 1e6:.1f})")

    # The same fan-out behind the async server: micro-batches formed from
    # concurrent clients are split across the replicas transparently.
    async def serve() -> None:
        requests = [x[i] for i in range(16)]
        async with PumaServer(engine, max_batch_size=8, num_shards=SHARDS,
                              shard_executor="thread") as server:
            results = await asyncio.gather(
                *(server.submit({"x": r}) for r in requests))
        for i, result in enumerate(results):
            expect = single.lane(i) if i < BATCH else None
            assert expect is None or np.array_equal(result["out"],
                                                    expect["out"])
        print(f"served {len(requests)} concurrent clients sharded: "
              f"{server.counters.summary()}")

    asyncio.run(serve())
    print("OK")


if __name__ == "__main__":
    main()
