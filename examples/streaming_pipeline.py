"""Spatial pipelining: streaming a batch through stationary weights.

PUMA's crossbars hold the model permanently (Section 3.2.5); independent
inputs stream through the layer pipeline, each layer working on a
different item at once (Sections 4.1.2, 7.3).  This script compiles one
program that pushes a whole batch through shared weight matrices and
shows the steady-state throughput beating the single-inference latency.

Run:  python examples/streaming_pipeline.py
"""

import numpy as np

from repro import InferenceEngine, default_config
from repro.compiler.frontend import (
    ConstMatrix,
    InVector,
    Model,
    OutVector,
    relu,
)

DIMS = (128, 128, 128, 64)


def batched_model(batch: int, seed: int = 0) -> Model:
    rng = np.random.default_rng(seed)
    model = Model.create(f"stream_b{batch}")
    mats = [ConstMatrix.create(model, m, n, f"w{i}",
                               rng.normal(0, 1 / np.sqrt(m), (m, n)))
            for i, (m, n) in enumerate(zip(DIMS[:-1], DIMS[1:]))]
    for b in range(batch):
        h = InVector.create(model, DIMS[0], f"x{b}")
        for i, mat in enumerate(mats):
            h = mat @ h
            if i < len(mats) - 1:
                h = relu(h)
        OutVector.create(model, DIMS[-1], f"out{b}").assign(h)
    return model


def run(batch: int):
    engine = InferenceEngine(batched_model(batch), default_config(), seed=0)
    rng = np.random.default_rng(1)
    inputs = {f"x{b}": rng.normal(0, 0.3, size=DIMS[0])
              for b in range(batch)}
    return engine.compiled, engine.predict(inputs)


def main() -> None:
    print(f"MLP {'-'.join(map(str, DIMS))}, weights stationary in "
          "crossbars; batches stream through the layer pipeline\n")
    single, res1 = run(1)
    print(f"{'batch':>6} {'cycles':>9} {'cycles/item':>12} "
          f"{'throughput gain':>16} {'crossbars':>10}")
    for batch in (1, 2, 4, 8):
        compiled, res = run(batch)
        gain = (res1.cycles * batch) / res.cycles
        print(f"{batch:>6} {res.cycles:>9} "
              f"{res.cycles / batch:>12.0f} {gain:>15.2f}x "
              f"{len(compiled.program.weights):>10}")
    print("\nThe crossbar count stays constant — the same weights serve "
          "every item — while per-item cycles fall to the bottleneck "
          "core's MVM work.")


if __name__ == "__main__":
    main()
