"""repro: a from-scratch reproduction of PUMA (ASPLOS 2019).

PUMA is a programmable memristor-crossbar accelerator for ML inference.
This package provides the full system described in the paper:

* the microarchitecture and ISA (:mod:`repro.arch`, :mod:`repro.isa`);
* the compiler from a high-level model API to per-core/tile instruction
  streams (:mod:`repro.compiler`);
* PUMAsim, the functional + timing + energy simulator (:mod:`repro.sim`);
* the serving layer: the batched :class:`~repro.engine.InferenceEngine`
  and the async dynamic-batching front-end :class:`~repro.serve.PumaServer`
  (:mod:`repro.engine`, :mod:`repro.serve`);
* power/area models and design-space exploration (:mod:`repro.energy`);
* DNN workload builders matching the paper's benchmarks
  (:mod:`repro.workloads`);
* analytic baseline platforms (CPU/GPU/TPU/ISAAC) and the PUMA layer-level
  performance model used for paper-scale networks (:mod:`repro.baselines`,
  :mod:`repro.perf`);
* the accuracy-under-write-noise study (:mod:`repro.accuracy`) and the
  experiment drivers that regenerate every table and figure
  (:mod:`repro.figures`).

Quickstart (the paper's Figure 7 example)::

    import numpy as np
    from repro import (Model, InVector, OutVector, ConstMatrix, tanh,
                       quick_run)

    m = Model.create("example")
    x = InVector.create(m, 128, "x")
    y = InVector.create(m, 128, "y")
    z = OutVector.create(m, 64, "z")
    A = ConstMatrix.create(m, 128, 64, "A", np.random.randn(128, 64) * 0.1)
    B = ConstMatrix.create(m, 128, 64, "B", np.random.randn(128, 64) * 0.1)
    z.assign(tanh(A @ x + B @ y))

    result = quick_run(m, {"x": x_float, "y": y_float})   # floats in
    print(result.outputs["z"], result.stats.summary())    # floats out

``quick_run`` compiles through the process-wide cache and runs one
float-first inference (or a whole ``(batch, length)`` matrix per input) —
see :class:`~repro.engine.InferenceEngine` for the persistent serving
object and :class:`~repro.serve.PumaServer` for the async front-end.
"""

from repro.arch.config import (
    CoreConfig,
    NodeConfig,
    PumaConfig,
    TileConfig,
    default_config,
)
from repro.arch.crossbar import Crossbar, CrossbarModel
from repro.compiler import (
    CompiledModel,
    CompilerOptions,
    ConstMatrix,
    InVector,
    Model,
    OutVector,
    binarize,
    compile_model,
    concat,
    exp,
    log,
    log_softmax,
    maximum,
    minimum,
    random_like,
    relu,
    sigmoid,
    tanh,
)
from repro.compiler.frontend import const_vector
from repro.engine import InferenceEngine
from repro.fixedpoint import FixedPointFormat
from repro.serve import (
    InferenceRequest,
    PumaServer,
    RunResult,
    ShardedEngine,
    ShardExecutionError,
)
from repro.sim import SimulationDeadlock, SimulationStats, Simulator
from repro.store import ArtifactError, store_info

__version__ = "1.2.0"


def quick_run(model, inputs, config=None, *, options=None,
              crossbar_model=None, seed=0):
    """Compile (cached) and run float inputs end to end.

    Args:
        model: a frontend :class:`Model`.
        inputs: real-valued arrays per input name — ``(length,)`` for one
            inference, ``(batch, length)`` for a batched pass.
        config: accelerator configuration (Table 3 defaults when omitted).
        options: compiler options (part of the compile-cache key).
        crossbar_model: overrides the device model (noise studies).
        seed: RNG seed for crossbar noise and the RANDOM op.

    Returns:
        The run's :class:`~repro.serve.RunResult` (float outputs in
        ``.outputs``, fixed-point words via the mapping interface, stats
        in ``.stats``).
    """
    engine = InferenceEngine(model, config, options,
                             crossbar_model=crossbar_model, seed=seed)
    return engine.predict(inputs)


__all__ = [
    "CoreConfig",
    "TileConfig",
    "NodeConfig",
    "PumaConfig",
    "default_config",
    "Crossbar",
    "CrossbarModel",
    "FixedPointFormat",
    "Model",
    "InVector",
    "OutVector",
    "ConstMatrix",
    "const_vector",
    "relu",
    "sigmoid",
    "tanh",
    "exp",
    "log",
    "log_softmax",
    "maximum",
    "minimum",
    "concat",
    "random_like",
    "binarize",
    "CompilerOptions",
    "CompiledModel",
    "compile_model",
    "Simulator",
    "SimulationStats",
    "SimulationDeadlock",
    "InferenceEngine",
    "InferenceRequest",
    "RunResult",
    "PumaServer",
    "ShardedEngine",
    "ShardExecutionError",
    "ArtifactError",
    "store_info",
    "quick_run",
    "__version__",
]
