"""Inference accuracy under memristor write noise (Figure 13)."""

from repro.accuracy.dataset import make_dataset
from repro.accuracy.train import TrainedMlp, train_mlp
from repro.accuracy.noise import corrupt_weights, weight_noise_sigma
from repro.accuracy.deploy import rescale_for_fixed_point
from repro.accuracy.eval import (
    accuracy_sweep,
    classifier_model,
    noisy_accuracy,
    simulated_accuracy,
)

__all__ = [
    "make_dataset",
    "TrainedMlp",
    "train_mlp",
    "corrupt_weights",
    "weight_noise_sigma",
    "rescale_for_fixed_point",
    "noisy_accuracy",
    "accuracy_sweep",
    "classifier_model",
    "simulated_accuracy",
]
