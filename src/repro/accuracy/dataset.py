"""Synthetic classification dataset for the accuracy study.

The paper evaluates inference accuracy of an MLP classifier (digit
recognition); no image datasets ship offline, so we synthesize a 10-class
problem with the same character: each class is a smooth prototype pattern
in [0, 1]^d plus per-sample noise and distractor dimensions.  A small MLP
reaches ~97-99% — headroom for noise-induced degradation to show, exactly
what Figure 13 plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Dataset:
    """Train/test split of the synthetic classification problem."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray

    @property
    def num_classes(self) -> int:
        return int(self.y_train.max()) + 1

    @property
    def num_features(self) -> int:
        return self.x_train.shape[1]


def make_dataset(num_classes: int = 10, num_features: int = 64,
                 train_per_class: int = 200, test_per_class: int = 100,
                 sample_noise: float = 0.65, seed: int = 0) -> Dataset:
    """Generate the synthetic dataset.

    Prototypes are smooth (low-frequency) random patterns, so classes
    overlap in individual features and classification requires weighing
    many inputs — like downsampled digits.
    """
    rng = np.random.default_rng(seed)
    base = rng.normal(0.0, 1.0, size=(num_classes, num_features))
    # Smooth each prototype with a running mean to correlate neighbours.
    kernel = np.ones(5) / 5.0
    prototypes = np.array([np.convolve(row, kernel, mode="same")
                           for row in base])
    prototypes /= np.abs(prototypes).max(axis=1, keepdims=True)

    def sample(per_class: int) -> tuple[np.ndarray, np.ndarray]:
        xs, ys = [], []
        for cls in range(num_classes):
            noise = rng.normal(0.0, sample_noise,
                               size=(per_class, num_features))
            xs.append(prototypes[cls] + noise)
            ys.append(np.full(per_class, cls))
        x = np.concatenate(xs)
        y = np.concatenate(ys)
        order = rng.permutation(len(y))
        return x[order], y[order]

    x_train, y_train = sample(train_per_class)
    x_test, y_test = sample(test_per_class)
    return Dataset(x_train, y_train, x_test, y_test)
