"""Deploy-time rescaling for fixed-point inference.

The datapath's 16-bit fixed-point format represents roughly [-8, 8); a
float-trained network whose pre-activations exceed that range saturates on
the accelerator.  For ReLU networks the standard remedy costs nothing:
``relu(a*x) = a*relu(x)`` for ``a > 0``, so each layer's weights can be
scaled down until its pre-activations fit, and the final logits are a
positive multiple of the originals — argmax (the classification) is
unchanged.

This is part of the configuration-time deployment flow (Section 3.2.5):
weights are prepared once, written to the crossbars, and never touched
during execution.
"""

from __future__ import annotations

import numpy as np

# Keep calibrated pre-activations comfortably inside the [-8, 8) range.
DEFAULT_LIMIT = 6.0


def rescale_for_fixed_point(weights: list, x_calibration: np.ndarray,
                            limit: float = DEFAULT_LIMIT) -> list:
    """Scale a ReLU MLP so pre-activations fit the fixed-point range.

    Args:
        weights: list of ``(W, b)`` pairs (hidden layers use ReLU).
        x_calibration: batch of representative inputs.
        limit: target bound for calibrated |pre-activation|.

    Returns:
        New ``(W, b)`` list computing a positively-scaled version of the
        same function (identical argmax, bounded intermediate values).
    """
    if limit <= 0:
        raise ValueError("limit must be positive")
    h = np.asarray(x_calibration, dtype=np.float64)
    scaled = []
    for i, (w, b) in enumerate(weights):
        pre = h @ w + b
        peak = float(np.max(np.abs(pre)))
        alpha = min(1.0, limit / peak) if peak > 0 else 1.0
        scaled.append((w * alpha, b * alpha))
        pre = pre * alpha
        h = np.maximum(pre, 0.0) if i < len(weights) - 1 else pre
    return scaled
