"""Accuracy sweeps over memristor precision and write noise (Figure 13).

Two evaluation paths share this module:

* the fast analytic sweep (:func:`noisy_accuracy` / :func:`accuracy_sweep`)
  deploys weights through the noise model and scores them in float numpy —
  the Figure 13 grid at full trial counts;
* :func:`simulated_accuracy` runs the deployed classifier on the *detailed
  simulator* through the :class:`~repro.engine.InferenceEngine`, pushing
  all test samples through the programmed crossbars as one
  SIMD-over-batch pass (16-bit fixed point end to end).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.accuracy.dataset import make_dataset
from repro.accuracy.noise import corrupt_weights
from repro.accuracy.train import TrainedMlp, train_mlp

PRECISION_SWEEP = (1, 2, 3, 4, 5, 6)
SIGMA_SWEEP = (0.0, 0.1, 0.2, 0.3)


@lru_cache(maxsize=1)
def _trained_model(seed: int = 0) -> tuple[TrainedMlp, object]:
    data = make_dataset(seed=seed)
    model = train_mlp(data, seed=seed)
    return model, data


def noisy_accuracy(bits_per_cell: int, sigma_n: float, trials: int = 5,
                   seed: int = 0) -> float:
    """Mean test accuracy with weights deployed through the noise model."""
    model, data = _trained_model(seed)
    rng = np.random.default_rng(seed + 1)
    accuracies = []
    for _ in range(max(1, trials)):
        noisy = TrainedMlp(weights=[
            (corrupt_weights(w, bits_per_cell, sigma_n, rng), b.copy())
            for w, b in model.weights])
        accuracies.append(noisy.accuracy(data.x_test, data.y_test))
    return float(np.mean(accuracies))


def accuracy_sweep(precisions=PRECISION_SWEEP, sigmas=SIGMA_SWEEP,
                   trials: int = 5, seed: int = 0
                   ) -> dict[float, dict[int, float]]:
    """The Figure 13 grid: ``result[sigma_n][bits] = accuracy``."""
    return {
        sigma: {bits: noisy_accuracy(bits, sigma, trials, seed)
                for bits in precisions}
        for sigma in sigmas
    }


def classifier_model(weights: list, name: str = "classifier"):
    """Wrap trained ``(W, b)`` pairs as a compilable PUMA model.

    Hidden layers use ReLU; the final layer emits raw ``logits`` — the
    deployment shape of :mod:`repro.accuracy.train`'s MLPs.
    """
    from repro import ConstMatrix, InVector, Model, OutVector, const_vector, relu

    model = Model.create(name)
    in_features = weights[0][0].shape[0]
    h = InVector.create(model, in_features, "x")
    for i, (w, b) in enumerate(weights):
        mat = ConstMatrix.create(model, *w.shape, f"w{i}", np.asarray(w))
        h = mat @ h + const_vector(model, np.asarray(b), f"b{i}")
        if i < len(weights) - 1:
            h = relu(h)
    out = OutVector.create(model, weights[-1][0].shape[1], "logits")
    out.assign(h)
    return model


def simulated_accuracy(weights: list, x: np.ndarray, y: np.ndarray,
                       samples: int | None = None, *,
                       crossbar_model=None, seed: int = 0) -> float:
    """Classification accuracy on the detailed simulator.

    Deploys ``weights`` onto the modelled crossbars and pushes the first
    ``samples`` rows of ``x`` through one SIMD-over-batch engine pass
    (bitwise identical to per-sample runs — the engine's guarantee), so
    whole-test-set scoring costs roughly one simulation.

    Args:
        weights: ``(W, b)`` pairs (hidden layers ReLU), already rescaled
            for the fixed-point range (:func:`rescale_for_fixed_point`).
        x, y: test inputs ``(N, features)`` and integer labels ``(N,)``.
        samples: rows of ``x`` to score (default: all).
        crossbar_model: optional noisy device model.
        seed: simulator seed (crossbar programming noise, RANDOM op).
    """
    from repro.engine import InferenceEngine

    n = len(x) if samples is None else min(samples, len(x))
    engine = InferenceEngine(classifier_model(weights),
                             crossbar_model=crossbar_model, seed=seed)
    result = engine.predict({"x": np.asarray(x[:n], dtype=np.float64)})
    predictions = np.argmax(result.outputs["logits"], axis=-1)
    return float(np.mean(predictions == np.asarray(y[:n])))
