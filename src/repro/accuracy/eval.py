"""Accuracy sweeps over memristor precision and write noise (Figure 13)."""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.accuracy.dataset import make_dataset
from repro.accuracy.noise import corrupt_weights
from repro.accuracy.train import TrainedMlp, train_mlp

PRECISION_SWEEP = (1, 2, 3, 4, 5, 6)
SIGMA_SWEEP = (0.0, 0.1, 0.2, 0.3)


@lru_cache(maxsize=1)
def _trained_model(seed: int = 0) -> tuple[TrainedMlp, object]:
    data = make_dataset(seed=seed)
    model = train_mlp(data, seed=seed)
    return model, data


def noisy_accuracy(bits_per_cell: int, sigma_n: float, trials: int = 5,
                   seed: int = 0) -> float:
    """Mean test accuracy with weights deployed through the noise model."""
    model, data = _trained_model(seed)
    rng = np.random.default_rng(seed + 1)
    accuracies = []
    for _ in range(max(1, trials)):
        noisy = TrainedMlp(weights=[
            (corrupt_weights(w, bits_per_cell, sigma_n, rng), b.copy())
            for w, b in model.weights])
        accuracies.append(noisy.accuracy(data.x_test, data.y_test))
    return float(np.mean(accuracies))


def accuracy_sweep(precisions=PRECISION_SWEEP, sigmas=SIGMA_SWEEP,
                   trials: int = 5, seed: int = 0
                   ) -> dict[float, dict[int, float]]:
    """The Figure 13 grid: ``result[sigma_n][bits] = accuracy``."""
    return {
        sigma: {bits: noisy_accuracy(bits, sigma, trials, seed)
                for bits in precisions}
        for sigma in sigmas
    }
