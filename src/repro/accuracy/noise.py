"""Crossbar write-noise model for deployed weights (Figure 13).

Devices have an *absolute* conductance write-noise floor: programming
pulses land the conductance within a Gaussian whose width is a property of
the device stack, not of how many levels the designer squeezes into the
conductance window.  We express the floor as ``sigma_n`` in units of the
2-bit level separation (the paper's conservative cell), matching
:class:`repro.arch.crossbar.CrossbarModel`.

A 16-bit weight is distributed over ``ceil(16 / b)`` cells of ``b`` bits.
The most-significant cell dominates the deployed weight error: its level
spacing shrinks as ``2^-b`` while the noise floor stays put, so the error
*relative to the weight's full scale* grows with bits per cell::

    sigma_rel(b, sigma_n) = sigma_n * (2^b - 1) / NOISE_MARGIN_SCALE

This is the "reduction in noise margin" of Section 7.6: at sigma_n = 0.3 a
2-bit cell still classifies well while 5-6 bit cells collapse, and the
sigma_n = 0 curve stays flat at every precision.
"""

from __future__ import annotations

import math

import numpy as np

# Normalizes the per-cell noise floor to full-scale weight error; the value
# calibrates sigma_n = 0.3 to "2-bit cells fine, high precisions collapse"
# (Figure 13's qualitative claim).
NOISE_MARGIN_SCALE = 24.0


def weight_noise_sigma(bits_per_cell: int, sigma_n: float) -> float:
    """Deployed weight-error sigma relative to the weight full scale."""
    if bits_per_cell < 1:
        raise ValueError("bits_per_cell must be >= 1")
    if sigma_n < 0:
        raise ValueError("sigma_n must be non-negative")
    return sigma_n * ((1 << bits_per_cell) - 1) / NOISE_MARGIN_SCALE


def corrupt_weights(weights: np.ndarray, bits_per_cell: int, sigma_n: float,
                    rng: np.random.Generator | None = None) -> np.ndarray:
    """Return weights as deployed on noisy crossbars.

    The weight is quantized to the 16-bit fixed-point grid (the datapath
    precision) and perturbed by the write-noise model; the result is
    clipped to the representable range (conductances clip at
    ``g_min``/``g_max``).
    """
    rng = rng if rng is not None else np.random.default_rng()
    w = np.asarray(weights, dtype=np.float64)
    scale = float(np.max(np.abs(w))) or 1.0
    sigma = weight_noise_sigma(bits_per_cell, sigma_n) * scale
    noisy = w + rng.normal(0.0, sigma, size=w.shape) if sigma > 0 else w.copy()
    # 16-bit quantization grid over the deployed range.
    step = 2.0 * scale / (1 << 16)
    quantized = np.round(noisy / step) * step
    return np.clip(quantized, -scale, scale)


def cells_per_weight(bits_per_cell: int, weight_bits: int = 16) -> int:
    """Devices per weight at a given cell precision (storage density)."""
    return math.ceil(weight_bits / bits_per_cell)
