"""Minimal numpy MLP training (softmax cross-entropy, SGD with momentum).

Training happens offline in float (PUMA is an inference accelerator;
crossbars are written once at configuration time, Section 3.2.5); the
trained weights are then deployed through the noise model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accuracy.dataset import Dataset


@dataclass
class TrainedMlp:
    """A trained two-hidden-layer ReLU MLP."""

    weights: list = field(default_factory=list)   # list of (W, b)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Logits for a batch of inputs."""
        h = np.asarray(x, dtype=np.float64)
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(self.weights):
            h = h @ w + b
            if i < last:
                h = np.maximum(h, 0.0)
        return h

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        predictions = np.argmax(self.forward(x), axis=1)
        return float(np.mean(predictions == y))


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def train_mlp(data: Dataset, hidden: tuple[int, ...] = (24, 16),
              epochs: int = 30, batch_size: int = 32, lr: float = 0.05,
              momentum: float = 0.9, seed: int = 0) -> TrainedMlp:
    """Train an MLP classifier on the dataset.

    Returns:
        The trained model (typically >=97% test accuracy on the default
        synthetic dataset).
    """
    rng = np.random.default_rng(seed)
    dims = [data.num_features, *hidden, data.num_classes]
    weights = []
    for m, n in zip(dims[:-1], dims[1:]):
        weights.append([rng.normal(0, np.sqrt(2.0 / m), size=(m, n)),
                        np.zeros(n)])
    velocity = [[np.zeros_like(w), np.zeros_like(b)] for w, b in weights]

    n_train = len(data.y_train)
    one_hot = np.eye(data.num_classes)[data.y_train]
    for _epoch in range(epochs):
        order = rng.permutation(n_train)
        for start in range(0, n_train, batch_size):
            idx = order[start:start + batch_size]
            x = data.x_train[idx]
            t = one_hot[idx]
            # Forward with cached activations.
            activations = [x]
            h = x
            for i, (w, b) in enumerate(weights):
                h = h @ w + b
                if i < len(weights) - 1:
                    h = np.maximum(h, 0.0)
                activations.append(h)
            probs = _softmax(activations[-1])
            grad = (probs - t) / len(idx)
            # Backward.
            for i in reversed(range(len(weights))):
                w, b = weights[i]
                a_in = activations[i]
                gw = a_in.T @ grad
                gb = grad.sum(axis=0)
                if i > 0:
                    grad = grad @ w.T
                    grad[activations[i] <= 0.0] = 0.0
                velocity[i][0] = momentum * velocity[i][0] - lr * gw
                velocity[i][1] = momentum * velocity[i][1] - lr * gb
                weights[i][0] = w + velocity[i][0]
                weights[i][1] = b + velocity[i][1]

    return TrainedMlp(weights=[(w.copy(), b.copy()) for w, b in weights])
