"""Static verification and lint framework for compiled PUMA programs.

Layers (see ``docs/analysis.md``):

* :mod:`repro.analysis.cfg` / :mod:`repro.analysis.dataflow` — per-stream
  control-flow graphs and word-precise register dataflow;
* :mod:`repro.analysis.commgraph` — NoC flows and shared-memory traffic;
* :mod:`repro.analysis.depgraph` — the reusable static dependence graph,
  including the :class:`ExecutionTape` cross-check the engine runs;
* :mod:`repro.analysis.checks` — the checker suite (see
  :data:`~repro.analysis.checks.CHECK_CATALOG`);
* :mod:`repro.analysis.verifier` — entry points wired into
  ``CompilerOptions.verify`` and ``cli lint``.
"""

from repro.analysis.checks import CHECK_CATALOG, run_all
from repro.analysis.depgraph import StaticDependenceGraph
from repro.analysis.diagnostics import (
    ANALYZER_VERSION,
    AnalysisReport,
    Diagnostic,
    Location,
    Severity,
)
from repro.analysis.verifier import (
    VerificationError,
    analyze_program,
    program_digest,
    verify_program,
)

__all__ = [
    "ANALYZER_VERSION",
    "AnalysisReport",
    "CHECK_CATALOG",
    "Diagnostic",
    "Location",
    "Severity",
    "StaticDependenceGraph",
    "VerificationError",
    "analyze_program",
    "program_digest",
    "run_all",
    "verify_program",
]
