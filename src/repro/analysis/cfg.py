"""Per-stream control-flow graphs over PUMA instruction lists.

Core and tile streams are flat instruction lists with ``jmp``/``brn``
targets expressed as absolute instruction indices (``Instruction.pc``).
Most streams the backend emits are straight-line (a single block ending in
``hlt``); the CNN lowering emits real loops.  The CFG is the substrate for
the dataflow analyses in :mod:`repro.analysis.dataflow` and for the
unreachable / fall-off-end checkers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode

# Sentinel successor meaning "execution leaves the stream past its end
# without a hlt" — the fall-off-end condition.
EXIT = -1


@dataclass
class BasicBlock:
    """A maximal single-entry straight-line run of instructions.

    Attributes:
        index: position of this block in :attr:`ControlFlowGraph.blocks`.
        start: pc of the first instruction (inclusive).
        end: pc past the last instruction (exclusive).
        successors: indices of successor blocks; may contain :data:`EXIT`.
    """

    index: int
    start: int
    end: int
    successors: list[int] = field(default_factory=list)


@dataclass
class ControlFlowGraph:
    """CFG of one instruction stream (a core or the tile control unit)."""

    instructions: list[Instruction]
    blocks: list[BasicBlock] = field(default_factory=list)
    block_of: dict[int, int] = field(default_factory=dict)

    @classmethod
    def build(cls, instructions: list[Instruction]) -> "ControlFlowGraph":
        cfg = cls(instructions=list(instructions))
        n = len(cfg.instructions)
        if n == 0:
            return cfg
        leaders = {0}
        for pc, instr in enumerate(cfg.instructions):
            if instr.opcode in (Opcode.JMP, Opcode.BRN):
                if instr.pc < n:
                    leaders.add(instr.pc)
                if pc + 1 < n:
                    leaders.add(pc + 1)
            elif instr.opcode == Opcode.HLT and pc + 1 < n:
                leaders.add(pc + 1)
        starts = sorted(leaders)
        for index, start in enumerate(starts):
            end = starts[index + 1] if index + 1 < len(starts) else n
            cfg.blocks.append(BasicBlock(index=index, start=start, end=end))
            for pc in range(start, end):
                cfg.block_of[pc] = index
        for block in cfg.blocks:
            last = cfg.instructions[block.end - 1]
            if last.opcode == Opcode.HLT:
                continue
            if last.opcode == Opcode.JMP:
                block.successors.append(cfg._target_block(last.pc))
                continue
            if last.opcode == Opcode.BRN:
                block.successors.append(cfg._target_block(last.pc))
            # Fall through (including the not-taken branch edge).
            if block.end < n:
                block.successors.append(cfg.block_of[block.end])
            else:
                block.successors.append(EXIT)
        return cfg

    def _target_block(self, pc: int) -> int:
        if pc >= len(self.instructions):
            return EXIT
        return self.block_of[pc]

    @property
    def is_straight_line(self) -> bool:
        """True when the stream has no branches (single linear block)."""
        return not any(i.opcode in (Opcode.JMP, Opcode.BRN)
                       for i in self.instructions)

    def reachable_blocks(self) -> set[int]:
        """Block indices reachable from the stream entry."""
        if not self.blocks:
            return set()
        seen = {0}
        frontier = [0]
        while frontier:
            for succ in self.blocks[frontier.pop()].successors:
                if succ != EXIT and succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return seen

    def falls_off_end(self) -> list[int]:
        """Pcs of reachable block ends where execution leaves the stream
        without a ``hlt`` (the simulator tolerates it; the compiler never
        emits it)."""
        reachable = self.reachable_blocks()
        return [self.blocks[b].end - 1 for b in sorted(reachable)
                if EXIT in self.blocks[b].successors]

    def unreachable_pcs(self) -> list[int]:
        """First pc of every unreachable block (dead code)."""
        reachable = self.reachable_blocks()
        return [block.start for block in self.blocks
                if block.index not in reachable]
