"""The checker suite: every static check, each emitting typed diagnostics.

Checks consume a :class:`~repro.analysis.depgraph.StaticDependenceGraph`
(streams + communication graph) and return
:class:`~repro.analysis.diagnostics.Diagnostic` lists.  The catalog below
is the contract rendered in ``docs/analysis.md``; check ids are stable —
tests and lint baselines key on them.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.commgraph import PERSISTENT_COUNT
from repro.analysis.dataflow import loop_use_before_def, scan_straight_line
from repro.analysis.depgraph import StaticDependenceGraph, StreamInfo
from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.isa.opcodes import AluOp, Opcode

# check id -> (severity, one-line description); the docs page renders this.
CHECK_CATALOG: dict[str, tuple[Severity, str]] = {
    "reg-use-before-def": (
        Severity.ERROR,
        "a core instruction reads a register no instruction has written"),
    "reg-dead-store": (
        Severity.WARNING,
        "a register value is written but never read before the stream ends"),
    "reg-clobber-before-consume": (
        Severity.ERROR,
        "a register value is completely overwritten before any read"),
    "noc-send-unbalanced": (
        Severity.ERROR,
        "a (tile, fifo) flow sends more words than its receives consume"),
    "noc-receive-unbalanced": (
        Severity.ERROR,
        "a (tile, fifo) flow receives more words than are ever sent"),
    "noc-width-mismatch": (
        Severity.ERROR,
        "the k-th send and k-th receive of a flow disagree on width"),
    "noc-comm-cycle": (
        Severity.INFO,
        "tiles form a communication cycle (potential deadlock shape)"),
    "mem-load-undefined": (
        Severity.ERROR,
        "a load/send reads shared-memory words nothing writes or preloads"),
    "mem-count-imbalance": (
        Severity.ERROR,
        "shared-memory words carry fewer consume counts than static "
        "reads — a reader will block forever"),
    "mem-count-overprovision": (
        Severity.WARNING,
        "shared-memory words carry more consume counts than static "
        "reads — they are never invalidated (attribute-entry leak)"),
    "lut-domain": (
        Severity.ERROR,
        "a constant outside the ROM-LUT domain feeds a transcendental"),
    "cfg-unreachable": (
        Severity.WARNING,
        "instructions can never execute (dead code)"),
    "cfg-fall-off-end": (
        Severity.WARNING,
        "execution can leave a stream without reaching hlt"),
}


def _loc(info: StreamInfo, pc: int | None = None) -> Location:
    return Location(tile=info.tile, core=info.core, pc=pc)


def _reg_range(words: list[int]) -> str:
    lo, hi = min(words), max(words)
    return f"r{lo}" if lo == hi else f"r{lo}..r{hi}"


def _group_by_pc(findings: list[tuple[int, int]]) -> dict[int, list[int]]:
    grouped: dict[int, list[int]] = {}
    for pc, word in findings:
        grouped.setdefault(pc, []).append(word)
    return grouped


def check_register_dataflow(
        graph: StaticDependenceGraph) -> list[Diagnostic]:
    """use-before-def, dead stores, clobber-before-consume (core streams).

    Tile control streams are exempt: the tile scalar file is
    zero-initialized and indexed mod 64, so every read is well-defined.
    """
    out: list[Diagnostic] = []
    for info in graph.streams.values():
        if info.core is None:
            continue
        if not info.is_straight_line:
            findings = loop_use_before_def(
                info.cfg, info.effects, info.num_registers,
                predefined=info.predefined)
            for pc, words in sorted(_group_by_pc(findings).items()):
                out.append(Diagnostic(
                    "reg-use-before-def", Severity.ERROR, _loc(info, pc),
                    f"reads {_reg_range(words)} which no path defines"))
            continue
        facts = scan_straight_line(
            info.instructions, info.effects, info.num_registers,
            predefined=info.predefined)
        for pc, words in sorted(_group_by_pc(facts.use_before_def).items()):
            out.append(Diagnostic(
                "reg-use-before-def", Severity.ERROR, _loc(info, pc),
                f"reads {_reg_range(words)} before any write defines it"))
        for pc, definition in facts.clobbers:
            span = _reg_range([definition.start,
                               definition.start + definition.width - 1])
            out.append(Diagnostic(
                "reg-clobber-before-consume", Severity.ERROR,
                _loc(info, pc),
                f"overwrites the value of {span} defined at "
                f"pc={definition.pc} before anything read it"))
        for definition in facts.dead_stores:
            span = _reg_range([definition.start,
                               definition.start + definition.width - 1])
            out.append(Diagnostic(
                "reg-dead-store", Severity.WARNING,
                _loc(info, definition.pc),
                f"value written to {span} is never read"))
    return out


def check_noc_balance(graph: StaticDependenceGraph) -> list[Diagnostic]:
    """Send/receive pairing, word balance, and width agreement per flow.

    Flows touching a *dynamic* tile (loops or register-indirect
    addressing) are skipped — their traffic repeats at runtime and only
    the tape cross-check can account for it exactly.
    """
    out: list[Diagnostic] = []
    comm = graph.comm
    for (dst, fifo), flow in sorted(comm.flows.items()):
        if (flow.src_tiles | {dst}) & comm.dynamic_tiles:
            continue
        sent, received = flow.send_words, flow.receive_words
        if sent > received:
            site = flow.sends[-1]
            out.append(Diagnostic(
                "noc-send-unbalanced", Severity.ERROR,
                Location(tile=site.src_tile, pc=site.pc),
                f"flow to t{dst} fifo {fifo} sends {sent} words but "
                f"receives only consume {received}"))
        elif received > sent:
            site = flow.receives[-1]
            out.append(Diagnostic(
                "noc-receive-unbalanced", Severity.ERROR,
                Location(tile=dst, pc=site.pc),
                f"fifo {fifo} receives {received} words but senders "
                f"only provide {sent}"))
        if len(flow.src_tiles) == 1:
            for k, (s, r) in enumerate(zip(flow.sends, flow.receives)):
                if s.width != r.width:
                    out.append(Diagnostic(
                        "noc-width-mismatch", Severity.ERROR,
                        Location(tile=dst, pc=r.pc),
                        f"receive #{k} on fifo {fifo} expects "
                        f"{r.width} words, matching send "
                        f"(t{s.src_tile}:pc={s.pc}) carries {s.width}"))
                    break
    return out


def check_noc_cycles(graph: StaticDependenceGraph) -> list[Diagnostic]:
    """Cycles in the tile communication graph (potential deadlocks)."""
    out: list[Diagnostic] = []
    for cycle in graph.comm.cycles():
        members = ", ".join(f"t{t}" for t in cycle)
        out.append(Diagnostic(
            "noc-comm-cycle", Severity.INFO, Location(tile=cycle[0]),
            f"communication cycle among {{{members}}}; safe only if the "
            f"schedule staggers the blocking sends"))
    return out


def check_shared_memory(graph: StaticDependenceGraph) -> list[Diagnostic]:
    """Definedness and count conservation of shared-memory words.

    Exact only for non-dynamic tiles.  Words written with the persistent
    count (127 — also where codegen clamps large consumer counts) are
    exempt from count conservation: they are never invalidated.
    """
    out: list[Diagnostic] = []
    comm = graph.comm
    for tile_id in sorted(comm.mem_reads):
        if tile_id in comm.dynamic_tiles:
            continue
        preloaded = comm.preloaded.get(tile_id, set())
        counts: dict[int, int] = {}
        persistent: set[int] = set(preloaded)
        last_writer: dict[int, object] = {}
        for write in comm.mem_writes[tile_id]:
            for word in range(write.addr, write.addr + write.width):
                if write.count == PERSISTENT_COUNT:
                    persistent.add(word)
                else:
                    counts[word] = counts.get(word, 0) + write.count
                last_writer[word] = write
        written = set(last_writer) | preloaded
        reads: dict[int, int] = {}
        for read in comm.mem_reads[tile_id]:
            missing = [w for w in range(read.addr, read.addr + read.width)
                       if w not in written]
            if missing:
                out.append(Diagnostic(
                    "mem-load-undefined", Severity.ERROR,
                    Location(tile=read.tile, core=read.core, pc=read.pc),
                    f"reads shared-memory {_word_range(missing)} which "
                    f"nothing stores, receives, or preloads"))
            for word in range(read.addr, read.addr + read.width):
                reads[word] = reads.get(word, 0) + 1
        flagged: set[int] = set()
        for word in sorted(counts):
            if word in persistent or word in flagged:
                continue
            n_reads = reads.get(word, 0)
            if counts[word] == n_reads:
                continue
            writer = last_writer[word]
            span = [w for w in range(writer.addr,
                                     writer.addr + writer.width)
                    if counts.get(w) == counts[word]
                    and reads.get(w, 0) == n_reads
                    and w not in persistent]
            flagged.update(span)
            location = Location(tile=writer.tile, core=writer.core,
                                pc=writer.pc)
            detail = (f"{_word_range(span)} carries total consume count "
                      f"{counts[word]} but has {n_reads} static read"
                      f"{'s' if n_reads != 1 else ''}")
            if counts[word] < n_reads:
                out.append(Diagnostic(
                    "mem-count-imbalance", Severity.ERROR, location,
                    f"{detail}; a reader will block forever"))
            else:
                out.append(Diagnostic(
                    "mem-count-overprovision", Severity.WARNING, location,
                    f"{detail}; the words are never invalidated"))
    return out


def _word_range(words: list[int]) -> str:
    lo, hi = min(words), max(words)
    if lo == hi:
        return f"word {lo}"
    return f"words [{lo}, {hi + 1})"


def check_lut_domain(graph: StaticDependenceGraph) -> list[Diagnostic]:
    """Constants outside a ROM-LUT's domain feeding a transcendental.

    Light constant propagation over straight-line core streams: ``set``
    defines constants, ``copy`` forwards them, every other write kills
    them.  ``log`` (and nothing else in the LUT family) has a restricted
    domain — a non-positive fixed-point constant can never index it.
    """
    out: list[Diagnostic] = []
    for info in graph.streams.values():
        if info.core is None or not info.is_straight_line:
            continue
        const: dict[int, int] = {}
        for pc, instr in enumerate(info.instructions):
            if instr.opcode == Opcode.ALU and instr.alu_op == AluOp.LOG:
                checked = range(instr.src1, instr.src1 + instr.vec_width)
                bad = next((w for w in checked
                            if const.get(w) is not None
                            and const[w] <= 0), None)
                if bad is not None:
                    out.append(Diagnostic(
                        "lut-domain", Severity.ERROR, _loc(info, pc),
                        f"log of non-positive constant {const[bad]} in "
                        f"r{bad} (outside the LUT domain)"))
            if instr.opcode == Opcode.SET:
                for w in range(instr.dest,
                               instr.dest + instr.vec_width):
                    const[w] = instr.imm
            elif instr.opcode == Opcode.COPY:
                for k in range(instr.vec_width):
                    value = const.get(instr.src1 + k)
                    if value is None:
                        const.pop(instr.dest + k, None)
                    else:
                        const[instr.dest + k] = value
            else:
                for start, width in info.effects[pc].all_writes():
                    for w in range(start, start + width):
                        const.pop(w, None)
    return out


def check_cfg(graph: StaticDependenceGraph) -> list[Diagnostic]:
    """Unreachable code and streams execution can fall off the end of."""
    out: list[Diagnostic] = []
    for info in graph.streams.values():
        if not info.instructions:
            continue
        cfg = info.cfg
        for pc in cfg.unreachable_pcs():
            out.append(Diagnostic(
                "cfg-unreachable", Severity.WARNING, _loc(info, pc),
                "instruction is unreachable"))
        for pc in cfg.falls_off_end():
            out.append(Diagnostic(
                "cfg-fall-off-end", Severity.WARNING, _loc(info, pc),
                "execution can run past the end of the stream "
                "without a hlt"))
    return out


ALL_CHECKS: list[Callable[[StaticDependenceGraph], list[Diagnostic]]] = [
    check_register_dataflow,
    check_noc_balance,
    check_noc_cycles,
    check_shared_memory,
    check_lut_domain,
    check_cfg,
]


def run_all(graph: StaticDependenceGraph) -> list[Diagnostic]:
    """Run every checker; diagnostics in checker, then program, order."""
    out: list[Diagnostic] = []
    for check in ALL_CHECKS:
        out.extend(check(graph))
    return out
