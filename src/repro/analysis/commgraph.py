"""Inter-tile communication graph: NoC flows and shared-memory traffic.

Collects, per compiled :class:`~repro.isa.program.NodeProgram`:

* every NoC flow — sends grouped by ``(destination tile, fifo)`` with the
  matching receives from the destination's tile stream;
* every shared-memory access — core ``store``/``load`` plus tile-stream
  ``receive``/``send`` (which write/read shared memory respectively),
  with the consume counts the attribute buffer will enforce;
* the tile-level dataflow edges (who sends to whom), with cycle
  detection — a cycle is a *potential* deadlock under the blocking
  valid/count protocol, worth a note even when the schedule resolves it.

Static accounting is exact only for straight-line streams with direct
addressing; tiles whose streams loop or use register-indirect addressing
are marked ``dynamic`` and the exact count checks skip them (the tape
cross-check in :mod:`repro.analysis.depgraph` covers those at runtime).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.config import TileConfig
from repro.isa.opcodes import Opcode
from repro.isa.program import NodeProgram

# The attribute buffer treats this count as "never consumed" (see
# repro.tile.attribute_buffer); codegen also clamps large consumer counts
# to it, so words tagged 127 are excluded from exact balance checks.
PERSISTENT_COUNT = 127


@dataclass(frozen=True)
class SendSite:
    src_tile: int
    pc: int
    mem_addr: int
    width: int


@dataclass(frozen=True)
class ReceiveSite:
    tile: int
    pc: int
    mem_addr: int
    width: int
    count: int


@dataclass
class Flow:
    """All traffic into one receive FIFO of one tile."""

    dst_tile: int
    fifo: int
    sends: list[SendSite] = field(default_factory=list)
    receives: list[ReceiveSite] = field(default_factory=list)

    @property
    def send_words(self) -> int:
        return sum(s.width for s in self.sends)

    @property
    def receive_words(self) -> int:
        return sum(r.width for r in self.receives)

    @property
    def src_tiles(self) -> set[int]:
        return {s.src_tile for s in self.sends}


@dataclass(frozen=True)
class MemWrite:
    """A shared-memory producer: core ``store`` or tile ``receive``."""

    tile: int
    core: int | None  # None = the tile control stream (receive)
    pc: int
    addr: int
    width: int
    count: int


@dataclass(frozen=True)
class MemRead:
    """A shared-memory consumer: core ``load`` or tile ``send``."""

    tile: int
    core: int | None  # None = the tile control stream (send)
    pc: int
    addr: int
    width: int


@dataclass
class CommGraph:
    """NoC flows, shared-memory traffic, and tile dataflow edges."""

    flows: dict[tuple[int, int], Flow] = field(default_factory=dict)
    mem_writes: dict[int, list[MemWrite]] = field(default_factory=dict)
    mem_reads: dict[int, list[MemRead]] = field(default_factory=dict)
    # Words preloaded persistently before execution: constants and inputs.
    preloaded: dict[int, set[int]] = field(default_factory=dict)
    # Tiles whose static accounting is inexact: loops or indirect addrs.
    dynamic_tiles: set[int] = field(default_factory=set)
    edges: set[tuple[int, int]] = field(default_factory=set)

    @classmethod
    def build(cls, program: NodeProgram,
              config: TileConfig) -> "CommGraph":
        del config  # reserved for capacity checks; layout is flat words
        graph = cls()
        for tile_id, tile in sorted(program.tiles.items()):
            graph.mem_writes[tile_id] = []
            graph.mem_reads[tile_id] = []
            graph.preloaded[tile_id] = set()
            if any(i.opcode in (Opcode.JMP, Opcode.BRN)
                   for i in tile.tile_instructions):
                graph.dynamic_tiles.add(tile_id)
            for pc, instr in enumerate(tile.tile_instructions):
                if instr.opcode == Opcode.SEND:
                    key = (instr.target, instr.fifo_id)
                    flow = graph.flows.setdefault(
                        key, Flow(dst_tile=instr.target,
                                  fifo=instr.fifo_id))
                    flow.sends.append(SendSite(
                        src_tile=tile_id, pc=pc,
                        mem_addr=instr.mem_addr, width=instr.vec_width))
                    graph.edges.add((tile_id, instr.target))
                    graph.mem_reads[tile_id].append(MemRead(
                        tile=tile_id, core=None, pc=pc,
                        addr=instr.mem_addr, width=instr.vec_width))
                elif instr.opcode == Opcode.RECEIVE:
                    key = (tile_id, instr.fifo_id)
                    flow = graph.flows.setdefault(
                        key, Flow(dst_tile=tile_id, fifo=instr.fifo_id))
                    flow.receives.append(ReceiveSite(
                        tile=tile_id, pc=pc, mem_addr=instr.mem_addr,
                        width=instr.vec_width, count=instr.count))
                    graph.mem_writes[tile_id].append(MemWrite(
                        tile=tile_id, core=None, pc=pc,
                        addr=instr.mem_addr, width=instr.vec_width,
                        count=instr.count))
            for core_id, core in sorted(tile.cores.items()):
                for pc, instr in enumerate(core.instructions):
                    if instr.opcode in (Opcode.JMP, Opcode.BRN):
                        graph.dynamic_tiles.add(tile_id)
                    elif instr.opcode == Opcode.STORE:
                        if instr.reg_indirect:
                            graph.dynamic_tiles.add(tile_id)
                            continue
                        graph.mem_writes[tile_id].append(MemWrite(
                            tile=tile_id, core=core_id, pc=pc,
                            addr=instr.mem_addr, width=instr.vec_width,
                            count=instr.count))
                    elif instr.opcode == Opcode.LOAD:
                        if instr.reg_indirect:
                            graph.dynamic_tiles.add(tile_id)
                            continue
                        graph.mem_reads[tile_id].append(MemRead(
                            tile=tile_id, core=core_id, pc=pc,
                            addr=instr.mem_addr, width=instr.vec_width))
        for tile_id, regions in program.const_memory.items():
            words = graph.preloaded.setdefault(tile_id, set())
            for addr, data in regions:
                words.update(range(addr, addr + len(data)))
        for layout in (program.input_layout, program.output_layout):
            for tile_id, addr, length in layout.values():
                words = graph.preloaded.setdefault(tile_id, set())
                words.update(range(addr, addr + length))
        return graph

    def cycles(self) -> list[list[int]]:
        """Tile-id cycles in the communication graph (Tarjan SCCs).

        Returns each strongly-connected component of size > 1, plus
        self-loops, as a sorted tile-id list.
        """
        adjacency: dict[int, list[int]] = {}
        for src, dst in sorted(self.edges):
            adjacency.setdefault(src, []).append(dst)
            adjacency.setdefault(dst, [])
        index: dict[int, int] = {}
        lowlink: dict[int, int] = {}
        on_stack: set[int] = set()
        stack: list[int] = []
        counter = [0]
        result: list[list[int]] = []

        def strongconnect(root: int) -> None:
            work = [(root, iter(adjacency[root]))]
            index[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in index:
                        index[succ] = lowlink[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(adjacency[succ])))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if (len(component) > 1
                            or (node, node) in self.edges):
                        result.append(sorted(component))

        for node in sorted(adjacency):
            if node not in index:
                strongconnect(node)
        return result
