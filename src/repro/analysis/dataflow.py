"""Register-level dataflow over compiled instruction streams.

The model is word-precise: every instruction is summarized as interval
reads/writes over the flat per-core register space (or the tile control
unit's 64 scalar registers), split into *definite* and *may* effects:

* ``RANDOM`` reads nothing — the VFU only uses the operand's shape, and
  the backend deliberately emits ``alu random, d, d`` over an unwritten
  destination.
* ``MVM`` may-read the full XbarIn vector of each active MVMU: staging
  often writes fewer words than ``mvmu_dim`` and the zero-padded weight
  rows make the tail harmless, so those reads consume definitions but
  never count as use-before-def.
* ``SUBSAMPLE`` writes a runtime-dependent prefix of the destination, so
  its write is a may-write: it defines words for use-before-def purposes
  but is not tracked as a clobberable definition.

For straight-line streams (everything the backend emits except CNN
loops) :func:`scan_straight_line` runs an exact forward scan producing
use-before-def, dead-store, and clobber-before-consume facts.  For loopy
streams :func:`may_defined_in` runs a union ("maybe defined") forward
fixpoint over the CFG; a definite read of a word no path defines is a
certain bug, which keeps the loop analysis free of false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import ControlFlowGraph
from repro.arch.config import CoreConfig
from repro.isa.instruction import Instruction
from repro.isa.opcodes import AluOp, Opcode

TILE_SCALAR_REGISTERS = 64

Interval = tuple[int, int]  # (start register, width in words)


@dataclass(frozen=True)
class Effects:
    """Register intervals one instruction reads and writes."""

    reads: tuple[Interval, ...] = ()
    may_reads: tuple[Interval, ...] = ()
    writes: tuple[Interval, ...] = ()
    may_writes: tuple[Interval, ...] = ()

    def all_reads(self) -> tuple[Interval, ...]:
        return self.reads + self.may_reads

    def all_writes(self) -> tuple[Interval, ...]:
        return self.writes + self.may_writes


def _mvmu_indices(mask: int, num_mvmus: int) -> list[int]:
    return [m for m in range(num_mvmus) if mask & (1 << m)]


def core_effects(instr: Instruction, config: CoreConfig) -> Effects:
    """Effects of one core-stream instruction on the core register file."""
    op = instr.opcode
    w = instr.vec_width
    if op == Opcode.MVM:
        dim = config.mvmu_dim
        mvmus = _mvmu_indices(instr.mask, config.num_mvmus)
        return Effects(
            may_reads=tuple((config.xbar_in_base(m), dim) for m in mvmus),
            writes=tuple((config.xbar_out_base(m), dim) for m in mvmus),
        )
    if op == Opcode.ALU:
        aop = instr.alu_op
        if aop == AluOp.RANDOM:
            return Effects(writes=((instr.dest, w),))
        if aop == AluOp.SUBSAMPLE:
            return Effects(reads=((instr.src1, w), (instr.src2, 1)),
                           may_writes=((instr.dest, w),))
        if aop.num_sources == 1:
            return Effects(reads=((instr.src1, w),),
                           writes=((instr.dest, w),))
        return Effects(reads=((instr.src1, w), (instr.src2, w)),
                       writes=((instr.dest, w),))
    if op == Opcode.ALUI:
        return Effects(reads=((instr.src1, w),), writes=((instr.dest, w),))
    if op == Opcode.ALU_INT:
        reads = [(instr.src1, 1)]
        if not instr.imm_mode:
            reads.append((instr.src2, 1))
        return Effects(reads=tuple(reads), writes=((instr.dest, 1),))
    if op == Opcode.SET:
        return Effects(writes=((instr.dest, w),))
    if op == Opcode.COPY:
        return Effects(reads=((instr.src1, w),), writes=((instr.dest, w),))
    if op == Opcode.LOAD:
        reads = ((instr.addr_reg, 1),) if instr.reg_indirect else ()
        return Effects(reads=reads, writes=((instr.dest, w),))
    if op == Opcode.STORE:
        reads = [(instr.src1, w)]
        if instr.reg_indirect:
            reads.append((instr.addr_reg, 1))
        return Effects(reads=tuple(reads))
    if op == Opcode.BRN:
        return Effects(reads=((instr.src1, 1), (instr.src2, 1)))
    # JMP / HLT (SEND/RECEIVE never appear in core streams).
    return Effects()


def tile_effects(instr: Instruction) -> Effects:
    """Effects of one tile-stream instruction on the 64 scalar registers.

    The control unit indexes its register file mod 64; indices are
    normalized here so interval bookkeeping stays in range.
    """
    op = instr.opcode

    def reg(i: int) -> Interval:
        return (i % TILE_SCALAR_REGISTERS, 1)

    if op == Opcode.SET:
        return Effects(writes=(reg(instr.dest),))
    if op == Opcode.ALU_INT:
        reads = [reg(instr.src1)]
        if not instr.imm_mode:
            reads.append(reg(instr.src2))
        return Effects(reads=tuple(reads), writes=(reg(instr.dest),))
    if op == Opcode.BRN:
        return Effects(reads=(reg(instr.src1), reg(instr.src2)))
    # SEND / RECEIVE / JMP / HLT touch shared memory or control flow only.
    return Effects()


@dataclass
class Definition:
    """One definite register write and what became of its words."""

    pc: int
    start: int
    width: int
    reads: int = 0
    live_words: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.live_words:
            self.live_words = set(range(self.start, self.start + self.width))


@dataclass
class StraightLineFacts:
    """Findings of the exact forward scan over a straight-line stream."""

    # (pc, register) — definite read of a never-written word.
    use_before_def: list[tuple[int, int]] = field(default_factory=list)
    # Definitions never read and still (at least partly) live at stream end.
    dead_stores: list[Definition] = field(default_factory=list)
    # (overwriting pc, clobbered definition) — all words overwritten with
    # zero reads in between.
    clobbers: list[tuple[int, Definition]] = field(default_factory=list)
    # Every definite definition, in program order (def-use chain substrate).
    definitions: list[Definition] = field(default_factory=list)


def scan_straight_line(instructions: list[Instruction],
                       effects: list[Effects],
                       num_registers: int,
                       predefined: bool = False) -> StraightLineFacts:
    """Exact word-level scan of a branch-free stream.

    ``predefined`` marks every register as defined at entry (the tile
    control unit zero-initializes its scalar file, so reading an
    unwritten tile scalar is well-defined and never reported).
    """
    facts = StraightLineFacts()
    defined = [predefined] * num_registers
    maybe = [False] * num_registers
    def_of: list[Definition | None] = [None] * num_registers

    def clip(interval: Interval) -> range:
        start, width = interval
        return range(min(start, num_registers),
                     min(start + width, num_registers))

    for pc, (instr, eff) in enumerate(zip(instructions, effects)):
        for interval in eff.reads:
            for word in clip(interval):
                if not defined[word] and not maybe[word]:
                    facts.use_before_def.append((pc, word))
                if def_of[word] is not None:
                    def_of[word].reads += 1
        for interval in eff.may_reads:
            for word in clip(interval):
                if def_of[word] is not None:
                    def_of[word].reads += 1
        for interval in eff.writes:
            start = interval[0]
            width = len(clip(interval))
            if width <= 0:
                continue
            definition = Definition(pc=pc, start=start, width=width)
            facts.definitions.append(definition)
            for word in clip(interval):
                old = def_of[word]
                if old is not None:
                    old.live_words.discard(word)
                    if not old.live_words and old.reads == 0:
                        facts.clobbers.append((pc, old))
                defined[word] = True
                def_of[word] = definition
        for interval in eff.may_writes:
            for word in clip(interval):
                maybe[word] = True
                # A may-write leaves the old definition conservatively
                # live: its value might survive.
    for definition in facts.definitions:
        if definition.reads == 0 and definition.live_words:
            facts.dead_stores.append(definition)
    return facts


def may_defined_in(cfg: ControlFlowGraph, effects: list[Effects],
                   num_registers: int,
                   predefined: bool = False) -> list[set[int]]:
    """Per-block "maybe defined at entry" word sets (union fixpoint).

    Used for loopy streams: a definite read of a word absent from the set
    (and not written earlier in the block) is defined on *no* path — a
    certain use-before-def, reportable without loop false positives.
    """
    everything = set(range(num_registers))
    gen: list[set[int]] = []
    for block in cfg.blocks:
        words: set[int] = set()
        for pc in range(block.start, block.end):
            for interval in effects[pc].all_writes():
                start, width = interval
                words.update(range(min(start, num_registers),
                                   min(start + width, num_registers)))
        gen.append(words)
    preds: list[list[int]] = [[] for _ in cfg.blocks]
    for block in cfg.blocks:
        for succ in block.successors:
            if succ >= 0:
                preds[succ].append(block.index)
    entry = everything if predefined else set()
    live_in = [set(entry) for _ in cfg.blocks]
    changed = True
    while changed:
        changed = False
        for block in cfg.blocks:
            new_in = set(entry) if block.index == 0 else set()
            for pred in preds[block.index]:
                new_in |= live_in[pred] | gen[pred]
            if block.index == 0:
                for pred in preds[0]:
                    new_in |= live_in[pred] | gen[pred]
            if new_in != live_in[block.index]:
                live_in[block.index] = new_in
                changed = True
    return live_in


def loop_use_before_def(cfg: ControlFlowGraph, effects: list[Effects],
                        num_registers: int,
                        predefined: bool = False) -> list[tuple[int, int]]:
    """Use-before-def facts for a stream with branches (conservative)."""
    live_in = may_defined_in(cfg, effects, num_registers, predefined)
    findings: list[tuple[int, int]] = []
    reachable = cfg.reachable_blocks()
    for block in cfg.blocks:
        if block.index not in reachable:
            continue
        defined = set(live_in[block.index])
        for pc in range(block.start, block.end):
            eff = effects[pc]
            for interval in eff.reads:
                start, width = interval
                for word in range(min(start, num_registers),
                                  min(start + width, num_registers)):
                    if word not in defined:
                        findings.append((pc, word))
            for interval in eff.all_writes():
                start, width = interval
                defined.update(range(min(start, num_registers),
                                     min(start + width, num_registers)))
    return findings
