"""Static dependence graph over a compiled program, and the tape cross-check.

:class:`StaticDependenceGraph` is the reusable substrate for everything
that reasons about ordering in a compiled :class:`NodeProgram`:

* per-stream :class:`StreamInfo` (CFG, word-level effects, the
  data-carrying instruction sequence a tape must realize);
* register dependence edges (RAW/WAR/WAW) for straight-line streams —
  the def-use chains a future tape optimizer reorders against;
* the :class:`~repro.analysis.commgraph.CommGraph` of NoC flows and
  shared-memory traffic (FLOW edges);
* :meth:`StaticDependenceGraph.validate_tape` — checks that a recorded
  :class:`~repro.sim.tape.ExecutionTape` is a legal realization of the
  program: every stream's steps follow its instruction sequence, every
  receive is fed by a matching earlier send on its flow, and the whole
  schedule respects the shared-memory valid/count protocol word by word
  (replayed dynamically off the tape's effective addresses, which also
  covers register-indirect CNN streams the static accounting skips).

The engine consults :meth:`validate_tape` after recording; a mismatch is
counted and the tape discarded (interpreter fallback), mirroring the
PR-4 validation pattern.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.commgraph import PERSISTENT_COUNT, CommGraph
from repro.analysis.dataflow import (
    TILE_SCALAR_REGISTERS,
    Effects,
    core_effects,
    tile_effects,
)
from repro.arch.config import PumaConfig
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import NodeProgram
from repro.sim.tape import ExecutionTape

# Must match repro.sim.tape's notion of "data-carrying": the recorder
# omits these, so the static sequence a tape realizes omits them too.
_CORE_CONTROL = frozenset({Opcode.JMP, Opcode.BRN, Opcode.HLT})
_TILE_CONTROL = _CORE_CONTROL | {Opcode.SET, Opcode.ALU_INT}

_MAX_PROBLEMS = 20


class EdgeKind(enum.Enum):
    """Why one instruction must stay ordered after another."""

    RAW = "raw"    # read-after-write (true dependence)
    WAR = "war"    # write-after-read (anti dependence)
    WAW = "waw"    # write-after-write (output dependence)
    FLOW = "flow"  # NoC send -> receive pairing


@dataclass(frozen=True)
class DepEdge:
    """A dependence between two pcs of one stream (or one NoC flow)."""

    kind: EdgeKind
    src_pc: int
    dst_pc: int


@dataclass
class StreamInfo:
    """One instruction stream plus its analysis artifacts."""

    tile: int
    core: int | None  # None = the tile control stream
    instructions: list[Instruction]
    num_registers: int
    predefined: bool  # registers defined at entry (tile scalars zero-init)

    @cached_property
    def cfg(self) -> ControlFlowGraph:
        return ControlFlowGraph.build(self.instructions)

    @cached_property
    def is_straight_line(self) -> bool:
        return self.cfg.is_straight_line

    @cached_property
    def effects(self) -> list[Effects]:
        if self.core is None:
            return [tile_effects(i) for i in self.instructions]
        return [self._core_effects(i) for i in self.instructions]

    def _core_effects(self, instr: Instruction) -> Effects:
        return core_effects(instr, self._core_config)

    @cached_property
    def data_sequence(self) -> list[Instruction]:
        """Data-carrying instructions in program order — what a tape of a
        straight-line stream must realize exactly once, in order."""
        control = _TILE_CONTROL if self.core is None else _CORE_CONTROL
        return [i for i in self.instructions if i.opcode not in control]

    @cached_property
    def data_members(self) -> set[Instruction]:
        return set(self.data_sequence)

    # Injected by StaticDependenceGraph.from_program.
    _core_config: object = None

    def register_edges(self) -> list[DepEdge]:
        """RAW/WAR/WAW edges between pcs (straight-line streams only).

        May-effects are included: the optimizer must respect a dependence
        that *might* exist.  Loopy streams return no edges — a loop's
        dependences are iteration-indexed, beyond this static summary.
        """
        if not self.is_straight_line:
            return []
        last_writer: dict[int, int] = {}
        readers: dict[int, set[int]] = {}
        edges: set[DepEdge] = set()
        for pc, eff in enumerate(self.effects):
            for start, width in eff.all_reads():
                for word in range(start, min(start + width,
                                             self.num_registers)):
                    if word in last_writer:
                        edges.add(DepEdge(EdgeKind.RAW,
                                          last_writer[word], pc))
                    readers.setdefault(word, set()).add(pc)
            for start, width in eff.all_writes():
                for word in range(start, min(start + width,
                                             self.num_registers)):
                    for reader in readers.pop(word, ()):
                        if reader != pc:
                            edges.add(DepEdge(EdgeKind.WAR, reader, pc))
                    if word in last_writer and last_writer[word] != pc:
                        edges.add(DepEdge(EdgeKind.WAW,
                                          last_writer[word], pc))
                    last_writer[word] = pc
        return sorted(edges, key=lambda e: (e.src_pc, e.dst_pc,
                                            e.kind.value))


StreamKey = tuple[int, int | None]  # (tile, core); core None = tile stream


@dataclass
class StaticDependenceGraph:
    """Dependence structure of one compiled program.

    Build once per (program, config) with :meth:`from_program`; consumed
    by the checker suite (:mod:`repro.analysis.checks`), the engine's
    tape cross-check, and — by design — the future tape optimizer.
    """

    program: NodeProgram
    config: PumaConfig
    streams: dict[StreamKey, StreamInfo] = field(default_factory=dict)

    @classmethod
    def from_program(cls, program: NodeProgram,
                     config: PumaConfig) -> "StaticDependenceGraph":
        graph = cls(program=program, config=config)
        core_config = config.tile.core
        for tile_id, tile in sorted(program.tiles.items()):
            info = StreamInfo(
                tile=tile_id, core=None,
                instructions=list(tile.tile_instructions),
                num_registers=TILE_SCALAR_REGISTERS, predefined=True)
            graph.streams[(tile_id, None)] = info
            for core_id, core in sorted(tile.cores.items()):
                info = StreamInfo(
                    tile=tile_id, core=core_id,
                    instructions=list(core.instructions),
                    num_registers=core_config.num_registers,
                    predefined=False)
                info._core_config = core_config
                graph.streams[(tile_id, core_id)] = info
        return graph

    @cached_property
    def comm(self) -> CommGraph:
        return CommGraph.build(self.program, self.config.tile)

    # -- tape cross-check --------------------------------------------------

    def validate_tape(self, tape: ExecutionTape) -> list[str]:
        """Mismatches between a recorded tape and this program ([] = legal).

        Three independent obligations, all checked in one walk of the
        recorded completion order:

        1. *Stream realization*: a straight-line stream's steps must be
           exactly its data-carrying instruction sequence, in order and
           complete; a loopy stream's steps must at least be members of
           the stream.
        2. *Flow pairing*: the k-th receive on a ``(tile, fifo)`` flow
           consumes the k-th prior send, with matching width.
        3. *Memory protocol*: every store/receive hits invalid
           (consumed) words and every load/send hits valid ones, with
           consume counts decremented exactly as the attribute buffer
           would — replayed off the tape's resolved effective addresses.
        """
        problems: list[str] = []

        def report(message: str) -> bool:
            problems.append(message)
            return len(problems) >= _MAX_PROBLEMS

        cursors: dict[StreamKey, int] = {key: 0 for key in self.streams}
        flows: dict[tuple[int, int], list[int]] = {}
        words = self.config.tile.shared_memory_words
        valid = {t: np.zeros(words, dtype=bool) for t in self.program.tiles}
        count = {t: np.zeros(words, dtype=np.int64)
                 for t in self.program.tiles}
        for tile_id, regions in self.program.const_memory.items():
            for addr, data in regions:
                valid[tile_id][addr:addr + len(data)] = True
                count[tile_id][addr:addr + len(data)] = PERSISTENT_COUNT
        for tile_id, addr, length in self.program.input_layout.values():
            valid[tile_id][addr:addr + length] = True
            count[tile_id][addr:addr + length] = PERSISTENT_COUNT

        def write(tile_id: int, addr: int, width: int, n: int,
                  what: str) -> bool:
            if addr + width > words:
                return report(f"{what} overruns shared memory at "
                              f"[{addr}, {addr + width})")
            if valid[tile_id][addr:addr + width].any():
                return report(f"{what} overwrites unconsumed words at "
                              f"t{tile_id}:[{addr}, {addr + width})")
            valid[tile_id][addr:addr + width] = True
            count[tile_id][addr:addr + width] = n
            return False

        def read(tile_id: int, addr: int, width: int, what: str) -> bool:
            if addr + width > words:
                return report(f"{what} overruns shared memory at "
                              f"[{addr}, {addr + width})")
            window = slice(addr, addr + width)
            if not valid[tile_id][window].all():
                return report(f"{what} reads invalid words at "
                              f"t{tile_id}:[{addr}, {addr + width})")
            persistent = count[tile_id][window] == PERSISTENT_COUNT
            count[tile_id][window] -= np.where(persistent, 0, 1)
            consumed = (count[tile_id][window] == 0) & ~persistent
            valid[tile_id][window] &= ~consumed
            return False

        for index, step in enumerate(tape.steps):
            key = (step.tile_id, step.core_id)
            info = self.streams.get(key)
            where = (f"step {index} (t{step.tile_id}:"
                     f"{'ctrl' if step.core_id is None else 'c%d' % step.core_id})")
            if info is None:
                if report(f"{where}: no such stream in the program"):
                    break
                continue
            instr = step.instruction
            if info.is_straight_line:
                cursor = cursors[key]
                expected = (info.data_sequence[cursor]
                            if cursor < len(info.data_sequence) else None)
                if expected is None or expected != instr:
                    if report(f"{where}: {instr.opcode.name.lower()} is not "
                              f"the stream's next data instruction"):
                        break
                    continue
                cursors[key] = cursor + 1
            elif instr not in info.data_members:
                if report(f"{where}: instruction is not part of the "
                          f"stream"):
                    break
                continue
            op = instr.opcode
            stop = False
            if op == Opcode.SEND:
                flows.setdefault((instr.target, instr.fifo_id),
                                 []).append(instr.vec_width)
                stop = read(step.tile_id, step.eff_addr, instr.vec_width,
                            f"{where}: send")
            elif op == Opcode.RECEIVE:
                queue = flows.get((step.tile_id, instr.fifo_id), [])
                if not queue:
                    stop = report(f"{where}: receive on fifo "
                                  f"{instr.fifo_id} with no pending send")
                else:
                    sent = queue.pop(0)
                    if sent != instr.vec_width:
                        stop = report(
                            f"{where}: receive width {instr.vec_width} != "
                            f"sent width {sent}")
                if not stop:
                    stop = write(step.tile_id, step.eff_addr,
                                 instr.vec_width, instr.count,
                                 f"{where}: receive")
            elif op == Opcode.STORE:
                stop = write(step.tile_id, step.eff_addr, instr.vec_width,
                             instr.count, f"{where}: store")
            elif op == Opcode.LOAD:
                stop = read(step.tile_id, step.eff_addr, instr.vec_width,
                            f"{where}: load")
            if stop:
                break
        else:
            for key, cursor in cursors.items():
                info = self.streams[key]
                if info.is_straight_line and cursor != len(
                        info.data_sequence):
                    tile, core = key
                    name = "ctrl" if core is None else f"c{core}"
                    problems.append(
                        f"t{tile}:{name}: tape realizes {cursor} of "
                        f"{len(info.data_sequence)} data instructions")
            for (tile_id, fifo), queue in sorted(flows.items()):
                if queue:
                    problems.append(
                        f"t{tile_id}:fifo {fifo}: {len(queue)} sends "
                        f"never received")
        return problems
