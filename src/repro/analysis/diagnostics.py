"""Typed diagnostics emitted by the static program verifier.

Every checker in :mod:`repro.analysis.checks` reports findings as
:class:`Diagnostic` values — a check id, a severity, a program location
(tile / core / pc), and a human-readable message — collected into an
:class:`AnalysisReport`.  The report is the unit the rest of the stack
consumes: ``CompilerOptions.verify`` raises when it carries errors,
``cli lint`` renders and exits non-zero on it, and the artifact store
records its clean-bill digest in the manifest.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field

# Bumped whenever a checker's semantics change, so a manifest's clean-bill
# digest identifies *which* analyzer vouched for the program.
ANALYZER_VERSION = 1


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering supports ``max()`` over a report."""

    INFO = 0
    WARNING = 1
    ERROR = 2


@dataclass(frozen=True)
class Location:
    """Where in a :class:`~repro.isa.program.NodeProgram` a finding lives.

    Attributes:
        tile: tile id, or ``None`` for node-level findings.
        core: core id within the tile; ``None`` means the tile control
            stream (or a tile/node-level finding).
        pc: instruction index within the stream, or ``None`` when the
            finding is not anchored to one instruction.
    """

    tile: int | None = None
    core: int | None = None
    pc: int | None = None

    def __str__(self) -> str:
        if self.tile is None:
            return "node"
        parts = [f"t{self.tile}"]
        if self.core is not None:
            parts.append(f"c{self.core}")
        else:
            parts.append("ctrl")
        if self.pc is not None:
            parts.append(f"pc={self.pc}")
        return ":".join(parts)


@dataclass(frozen=True)
class Diagnostic:
    """One finding: check id, severity, location, message."""

    check: str
    severity: Severity
    location: Location
    message: str

    def __str__(self) -> str:
        return (f"{self.severity.name.lower()}[{self.check}] "
                f"{self.location}: {self.message}")


@dataclass
class AnalysisReport:
    """Every diagnostic one analysis pass produced, plus identity data.

    Attributes:
        diagnostics: findings in emission order (checker by checker).
        program_name: name of the analyzed program.
        program_sha256: digest of the analyzed program's encoded
            instruction streams, tying the report to exact bits.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)
    program_name: str = ""
    program_sha256: str = ""

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity == Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == Severity.ERROR for d in self.diagnostics)

    def by_check(self, check: str) -> list[Diagnostic]:
        """Findings of one checker, in emission order."""
        return [d for d in self.diagnostics if d.check == check]

    def summary(self) -> str:
        """One-line tally, e.g. ``2 errors, 1 warning, 0 notes``."""
        e, w = len(self.errors), len(self.warnings)
        i = len(self.diagnostics) - e - w
        return (f"{e} error{'s' if e != 1 else ''}, "
                f"{w} warning{'s' if w != 1 else ''}, "
                f"{i} note{'s' if i != 1 else ''}")

    def render(self) -> str:
        """Multi-line listing: every diagnostic, then the summary."""
        lines = [str(d) for d in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    def clean_bill_digest(self) -> str | None:
        """Digest certifying *these bits* passed *this analyzer* clean.

        ``None`` when the report carries errors — there is no clean bill
        to certify.  Warnings and notes are folded into the digest so a
        consumer can distinguish "clean" from "clean with findings".
        """
        if self.has_errors:
            return None
        payload = "\n".join([
            f"analyzer-version:{ANALYZER_VERSION}",
            f"program:{self.program_sha256}",
            *sorted(str(d) for d in self.diagnostics),
        ])
        return hashlib.sha256(payload.encode()).hexdigest()
