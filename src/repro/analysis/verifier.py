"""Entry points: analyze a compiled program, or verify-and-raise.

``analyze_program`` builds the dependence graph, runs every checker, and
packages an :class:`~repro.analysis.diagnostics.AnalysisReport` tied to a
digest of the program's encoded instruction streams.  ``verify_program``
is the compiler gate (``CompilerOptions.verify``): same analysis, but
error-severity findings raise :class:`VerificationError`.
"""

from __future__ import annotations

import hashlib

from repro.analysis.checks import run_all
from repro.analysis.depgraph import StaticDependenceGraph
from repro.analysis.diagnostics import AnalysisReport
from repro.arch.config import PumaConfig
from repro.isa.encoding import encode_program
from repro.isa.program import NodeProgram


class VerificationError(RuntimeError):
    """A compiled program failed static verification with errors.

    Carries the full :class:`AnalysisReport` so callers can inspect or
    render every finding, not just the first.
    """

    def __init__(self, report: AnalysisReport) -> None:
        self.report = report
        errors = report.errors
        shown = "\n".join(str(d) for d in errors[:5])
        more = len(errors) - 5
        if more > 0:
            shown += f"\n... and {more} more"
        super().__init__(
            f"program {report.program_name!r} failed static verification "
            f"({report.summary()}):\n{shown}")


def program_digest(program: NodeProgram) -> str:
    """sha256 over every encoded instruction stream, in tile/core order."""
    digest = hashlib.sha256()
    for tile_id, tile in sorted(program.tiles.items()):
        digest.update(f"tile:{tile_id}".encode())
        digest.update(encode_program(tile.tile_instructions))
        for core_id, core in sorted(tile.cores.items()):
            digest.update(f"core:{core_id}".encode())
            digest.update(encode_program(core.instructions))
    return digest.hexdigest()


def analyze_program(program: NodeProgram,
                    config: PumaConfig) -> AnalysisReport:
    """Run the full checker suite; never raises on findings."""
    graph = StaticDependenceGraph.from_program(program, config)
    return AnalysisReport(
        diagnostics=run_all(graph),
        program_name=program.name,
        program_sha256=program_digest(program))


def verify_program(program: NodeProgram,
                   config: PumaConfig) -> AnalysisReport:
    """Analyze and gate: raise :class:`VerificationError` on any error."""
    report = analyze_program(program, config)
    if report.has_errors:
        raise VerificationError(report)
    return report
