"""PUMA core microarchitecture: crossbars, MVMU, VFU, SFU, register file.

This package models the core tier of the three-tier spatial architecture
(cores / tiles / nodes, Section 3): the analog matrix-vector multiply units
built from memristor crossbars, the digital functional units that surround
them, and the in-order instruction pipeline that drives everything.
"""

from repro.arch.config import (
    CoreConfig,
    NodeConfig,
    PumaConfig,
    TileConfig,
    default_config,
)
from repro.arch.crossbar import Crossbar, CrossbarModel
from repro.arch.mvmu import MVMU
from repro.arch.rom_lut import RomLutTable, build_lut
from repro.arch.registers import RegisterFile
from repro.arch.vfu import VectorFunctionalUnit
from repro.arch.sfu import ScalarFunctionalUnit
from repro.arch.core import Core

__all__ = [
    "CoreConfig",
    "TileConfig",
    "NodeConfig",
    "PumaConfig",
    "default_config",
    "Crossbar",
    "CrossbarModel",
    "MVMU",
    "RomLutTable",
    "build_lut",
    "RegisterFile",
    "VectorFunctionalUnit",
    "ScalarFunctionalUnit",
    "Core",
]
