"""Analog-to-digital converter model (SAR design, Section 6.1).

The ADC digitizes the integrated column current of a crossbar.  Its
resolution bounds the largest column dot product that can be read back
exactly: a crossbar of ``dim`` rows with ``b_c``-bit cells and ``b_in``-bit
input slices produces column sums up to
``dim * (2**b_in - 1) * (2**b_c - 1)``.

:func:`exact_adc_bits` returns the resolution needed for lossless readout —
the functional simulator's default — while callers may configure fewer bits
to study quantization loss (the energy model separately charges ADC
power/area as a function of resolution, which is what drives the Figure 12
MVMU-dimension trade-off).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def exact_adc_bits(dim: int, bits_per_cell: int, bits_per_input: int) -> int:
    """Resolution for lossless readout of a full column dot product."""
    max_sum = dim * ((1 << bits_per_input) - 1) * ((1 << bits_per_cell) - 1)
    return max(1, math.ceil(math.log2(max_sum + 1)))


@dataclass(frozen=True)
class AdcArray:
    """Column ADC shared across crossbar columns via multiplexing (Fig 2b).

    Attributes:
        bits: converter resolution.
        full_scale: the analog value (integrated column sum, in
            level units) mapped to the top code.
    """

    bits: int
    full_scale: float

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("ADC bits must be >= 1")
        if self.full_scale <= 0:
            raise ValueError("full_scale must be positive")

    @property
    def levels(self) -> int:
        return 1 << self.bits

    @property
    def lsb(self) -> float:
        """Analog units per code."""
        return self.full_scale / (self.levels - 1)

    def convert(self, analog: np.ndarray) -> np.ndarray:
        """Quantize analog column sums to integer codes (clipping at range)."""
        arr = np.asarray(analog, dtype=np.float64)
        codes = np.round(arr / self.lsb)
        return np.clip(codes, 0, self.levels - 1).astype(np.int64)

    def reconstruct(self, codes: np.ndarray) -> np.ndarray:
        """Map codes back to analog-unit estimates (what digital logic sees).

        With ``lsb == 1`` (exact resolution) this is the identity on
        integer sums, making the ideal crossbar bit-exact.
        """
        return np.asarray(codes, dtype=np.float64) * self.lsb
