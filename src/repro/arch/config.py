"""PUMA architecture configuration (Table 3 defaults).

Everything that Figure 12 sweeps is a field here: MVMU dimension, MVMUs per
core, VFU width, cores per tile, and register-file size.  The energy/area
models in :mod:`repro.energy` consume these same dataclasses so that a single
configuration object drives the functional simulator, the timing model, and
the design-space exploration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.fixedpoint import FixedPointFormat
from repro.isa.opcodes import RegisterClass


@dataclass(frozen=True)
class CoreConfig:
    """One PUMA core (Figure 1, Table 3).

    Attributes:
        mvmu_dim: crossbar rows/columns (128 in the paper).
        num_mvmus: MVMUs per core (2 in the paper).
        bits_per_cell: memristor device precision (2 in the paper).
        bits_per_input: DAC input-slice width for bit-streamed inputs.
        vfu_width: VFU lanes; temporal SIMD executes wider vectors over
            multiple cycles (Table 3 lists width 1; Section 7.6 finds the
            sweet spot at 4 — we default to Table 3).
        num_general_registers: general-purpose register file entries.
            Table 3's 1 KB register file = 512 16-bit words, which matches
            the sizing rule 2 * mvmu_dim * num_mvmus (Section 3.4.2).
        instruction_memory_bytes: core instruction memory (4 KB).
        rom_lut_entries: entries per transcendental look-up table in the
            ROM-Embedded RAM.
    """

    mvmu_dim: int = 128
    num_mvmus: int = 2
    bits_per_cell: int = 2
    bits_per_input: int = 1
    vfu_width: int = 1
    num_general_registers: int = 512
    instruction_memory_bytes: int = 4096
    rom_lut_entries: int = 256
    fixed_point: FixedPointFormat = field(default_factory=FixedPointFormat)

    def __post_init__(self) -> None:
        if self.mvmu_dim <= 0 or self.num_mvmus <= 0:
            raise ValueError("mvmu_dim and num_mvmus must be positive")
        if self.fixed_point.total_bits % self.bits_per_cell != 0:
            raise ValueError(
                "word width must be divisible by bits_per_cell "
                f"({self.fixed_point.total_bits} % {self.bits_per_cell})"
            )
        if self.vfu_width <= 0:
            raise ValueError("vfu_width must be positive")

    @property
    def num_slices(self) -> int:
        """Crossbars ganged per MVMU for full-precision weights (8 = 16/2)."""
        return self.fixed_point.total_bits // self.bits_per_cell

    @property
    def xbar_in_size(self) -> int:
        """Total XbarIn registers: one vector of mvmu_dim per MVMU."""
        return self.mvmu_dim * self.num_mvmus

    @property
    def xbar_out_size(self) -> int:
        """Total XbarOut registers: one vector of mvmu_dim per MVMU."""
        return self.mvmu_dim * self.num_mvmus

    @property
    def num_registers(self) -> int:
        """Size of the flat register index space."""
        return self.xbar_in_size + self.xbar_out_size + self.num_general_registers

    def register_class(self, index: int) -> RegisterClass:
        """Which register class a flat index belongs to."""
        if index < 0 or index >= self.num_registers:
            raise IndexError(f"register index {index} out of range "
                             f"[0, {self.num_registers})")
        if index < self.xbar_in_size:
            return RegisterClass.XBAR_IN
        if index < self.xbar_in_size + self.xbar_out_size:
            return RegisterClass.XBAR_OUT
        return RegisterClass.GENERAL

    def xbar_in_base(self, mvmu: int) -> int:
        """Flat index of XbarIn register 0 of ``mvmu``."""
        self._check_mvmu(mvmu)
        return mvmu * self.mvmu_dim

    def xbar_out_base(self, mvmu: int) -> int:
        """Flat index of XbarOut register 0 of ``mvmu``."""
        self._check_mvmu(mvmu)
        return self.xbar_in_size + mvmu * self.mvmu_dim

    @property
    def general_base(self) -> int:
        """Flat index of general-purpose register 0."""
        return self.xbar_in_size + self.xbar_out_size

    def _check_mvmu(self, mvmu: int) -> None:
        if not 0 <= mvmu < self.num_mvmus:
            raise IndexError(f"MVMU index {mvmu} out of range "
                             f"[0, {self.num_mvmus})")

    @property
    def max_instructions(self) -> int:
        """Instruction-memory capacity in instructions."""
        from repro.isa.encoding import INSTRUCTION_BYTES

        return self.instruction_memory_bytes // INSTRUCTION_BYTES


@dataclass(frozen=True)
class TileConfig:
    """One PUMA tile (Figure 5, Table 3)."""

    num_cores: int = 8
    shared_memory_bytes: int = 65536       # 64 KB eDRAM
    tile_instruction_memory_bytes: int = 8192
    attribute_entries: int = 32768         # 32K valid/count entries
    receive_fifos: int = 16
    receive_fifo_depth: int = 2
    memory_bus_width_bits: int = 384
    core: CoreConfig = field(default_factory=CoreConfig)

    @property
    def shared_memory_words(self) -> int:
        """Shared-memory capacity in 16-bit words."""
        return self.shared_memory_bytes // 2


@dataclass(frozen=True)
class NodeConfig:
    """One PUMA node (Table 3): tiles plus the on-chip network."""

    num_tiles: int = 138
    noc_flit_size_bits: int = 32
    noc_ports: int = 4
    noc_concentration: int = 4
    offchip_link_bandwidth_gbps: float = 6.4
    tile: TileConfig = field(default_factory=TileConfig)


@dataclass(frozen=True)
class PumaConfig:
    """Top-level configuration: the accelerator plus global timing facts.

    ``num_nodes`` > 1 enables large-scale execution across the chip-to-chip
    interconnect (Section 3: "nodes can be connected together via a
    chip-to-chip interconnect for large-scale execution").  Tiles carry
    global ids; tile ``t`` lives on node ``t // node.num_tiles``.
    """

    clock_ghz: float = 1.0
    num_nodes: int = 1
    node: NodeConfig = field(default_factory=NodeConfig)

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.clock_ghz

    @property
    def total_tiles(self) -> int:
        """Tiles across the whole multi-node system."""
        return self.num_nodes * self.node.num_tiles

    def node_of_tile(self, tile_id: int) -> int:
        """Which node hosts global tile ``tile_id``."""
        if not 0 <= tile_id < self.total_tiles:
            raise IndexError(f"tile {tile_id} outside the "
                             f"{self.total_tiles}-tile system")
        return tile_id // self.node.num_tiles

    @property
    def core(self) -> CoreConfig:
        return self.node.tile.core

    @property
    def tile(self) -> TileConfig:
        return self.node.tile

    def with_core(self, **kwargs) -> "PumaConfig":
        """Derive a configuration with modified core parameters."""
        core = replace(self.core, **kwargs)
        return self._rebuild(core=core)

    def with_tile(self, **kwargs) -> "PumaConfig":
        """Derive a configuration with modified tile parameters."""
        core = kwargs.pop("core", self.core)
        tile = replace(self.tile, core=core, **kwargs)
        node = replace(self.node, tile=tile)
        return replace(self, node=node)

    def with_node(self, **kwargs) -> "PumaConfig":
        """Derive a configuration with modified node parameters."""
        tile = kwargs.pop("tile", self.tile)
        node = replace(self.node, tile=tile, **kwargs)
        return replace(self, node=node)

    def _rebuild(self, core: CoreConfig) -> "PumaConfig":
        tile = replace(self.tile, core=core)
        node = replace(self.node, tile=tile)
        return replace(self, node=node)


def default_config() -> PumaConfig:
    """The Table 3 configuration: 1 GHz, 2x128x128 MVMUs, 8 cores, 138 tiles."""
    return PumaConfig()
