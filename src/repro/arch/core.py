"""Core execution engine: the functional semantics of one PUMA core.

A :class:`Core` owns the architectural state of Figure 1 — program counter,
register file (XbarIn / XbarOut / general purpose), MVMUs, VFU, SFU — and
executes instructions one at a time.  Memory-side effects go through the
owning tile's shared memory, whose valid/count protocol can *block* an
instruction; blocking is reported to the simulator through
:class:`ExecStatus` rather than by spinning, so the scheduler can park the
core on the memory's waiter list.

Timing and energy are intentionally absent here: the simulator charges them
via :mod:`repro.energy` using the :class:`ExecOutcome` description of what
the instruction did.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.arch.config import CoreConfig
from repro.arch.crossbar import CrossbarModel
from repro.arch.mvmu import MVMU
from repro.arch.registers import RegisterFile
from repro.arch.sfu import ScalarFunctionalUnit
from repro.arch.vfu import VectorFunctionalUnit
from repro.isa.instruction import Instruction
from repro.isa.opcodes import AluOp, Opcode

if TYPE_CHECKING:  # avoid a circular import with repro.tile
    from repro.tile.shared_memory import SharedMemory


class ExecStatus(enum.Enum):
    """What happened when the core tried to execute an instruction."""

    DONE = "done"
    BLOCKED_READ = "blocked-read"     # load/send waiting for valid data
    BLOCKED_WRITE = "blocked-write"   # store/receive waiting for free space
    BLOCKED_FIFO = "blocked-fifo"     # receive waiting for a packet
    HALTED = "halted"


@dataclass(frozen=True)
class ExecOutcome:
    """Result of one execution attempt, consumed by the timing model.

    Attributes:
        status: completion or the blocking reason.
        instruction: what executed (or tried to).
        vec_width: effective vector width processed.
        mvm_count: MVMUs activated (coalesced MVM activates several).
        rom_access: whether the op went through the ROM-Embedded RAM.
        eff_addr: resolved effective memory address of a completed
            ``load``/``store``/``send``/``receive`` (register-indirect
            addressing folded in), recorded for trace replay
            (:mod:`repro.sim.tape`); 0 for non-memory instructions.
    """

    status: ExecStatus
    instruction: Instruction | None = None
    vec_width: int = 1
    mvm_count: int = 0
    rom_access: bool = False
    eff_addr: int = 0


class Core:
    """One PUMA core: registers, MVMUs, functional units, and a PC.

    With ``batch > 1`` the core executes its instruction stream once while
    every data-carrying value (registers, memory words, MVM operands) holds
    one lane per batch input — SIMD over batch.  Control flow must be
    uniform across lanes, which holds for PUMA programs: branches only
    consume loop counters and compile-time bounds, never model data.
    Scalar/control reads therefore take lane 0.

    Args:
        core_id: index within the tile.
        config: core configuration.
        shared_memory: the owning tile's shared memory.
        crossbar_model: device model for the MVMU crossbars.
        rng: random generator (write noise, RANDOM op).
        batch: SIMD batch lanes carried by the datapath.
    """

    def __init__(self, core_id: int, config: CoreConfig,
                 shared_memory: "SharedMemory",
                 crossbar_model: CrossbarModel | None = None,
                 rng: np.random.Generator | None = None,
                 batch: int = 1) -> None:
        self.core_id = core_id
        self.config = config
        self.memory = shared_memory
        self.batch = batch
        self._rng = rng if rng is not None else np.random.default_rng()
        model = crossbar_model if crossbar_model is not None else CrossbarModel(
            dim=config.mvmu_dim,
            bits_per_cell=config.bits_per_cell,
            bits_per_input=config.bits_per_input,
        )
        if model.dim != config.mvmu_dim:
            raise ValueError(
                f"crossbar dim {model.dim} != core mvmu_dim {config.mvmu_dim}")
        self.registers = RegisterFile(config, batch=batch)
        self.mvmus = [MVMU(model, config.fixed_point, rng=self._rng)
                      for _ in range(config.num_mvmus)]
        self.vfu = VectorFunctionalUnit(
            config.vfu_width, config.fixed_point,
            lut=self.registers.lut_evaluate, rng=self._rng)
        self.sfu = ScalarFunctionalUnit(config.fixed_point)
        self.pc = 0
        self.halted = False
        self.instructions_executed = 0
        # ALUI/SET immediates expand to the same vector on every execution;
        # cache the expansions (read-only) instead of re-allocating np.full
        # in the loop bodies the compiler emits.
        self._imm_vectors: dict[tuple[int, int], np.ndarray] = {}

    def program_mvmu(self, mvmu_index: int, matrix: np.ndarray) -> None:
        """Configuration-time crossbar write (Section 3.2.5)."""
        self.mvmus[mvmu_index].program(matrix)

    def reset(self) -> None:
        """Reset control state (registers and crossbars persist)."""
        self.pc = 0
        self.halted = False

    def execute(self, instr: Instruction) -> ExecOutcome:
        """Attempt to execute ``instr`` at the current PC.

        On DONE the PC advances (or jumps); on a blocked outcome all state
        is untouched so the attempt can be retried verbatim.
        """
        if self.halted:
            return ExecOutcome(ExecStatus.HALTED)
        handler = self._HANDLERS.get(instr.opcode)
        if handler is None:
            raise ValueError(
                f"{instr.opcode.name} cannot execute on a core "
                f"(tile-level instruction)")
        outcome = handler(self, instr)
        if outcome.status == ExecStatus.DONE:
            self.instructions_executed += 1
        return outcome

    # -- instruction handlers -------------------------------------------

    def _imm_vector(self, imm: int, width: int) -> np.ndarray:
        """A cached, read-only ``(width,)`` immediate expansion."""
        key = (imm, width)
        vec = self._imm_vectors.get(key)
        if vec is None:
            vec = np.full(width, imm, dtype=np.int64)
            vec.setflags(write=False)
            self._imm_vectors[key] = vec
        return vec

    def _advance(self, instr: Instruction, next_pc: int | None = None,
                 **fields) -> ExecOutcome:
        self.pc = self.pc + 1 if next_pc is None else next_pc
        return ExecOutcome(ExecStatus.DONE, instr, **fields)

    def _read_scalar(self, reg: int) -> int:
        """Lane-0 value of a scalar register (control is batch-uniform)."""
        return self.registers.read_scalar(reg)

    def _exec_mvm(self, instr: Instruction) -> ExecOutcome:
        active = [i for i in range(self.config.num_mvmus)
                  if instr.mask & (1 << i)]
        if not active:
            raise ValueError("MVM mask selects no MVMU on this core")
        for i in active:
            mvmu = self.mvmus[i]
            if not mvmu.is_programmed:
                raise RuntimeError(
                    f"core {self.core_id}: MVM on unprogrammed MVMU {i}")
            x = self.registers.xbar_in_vector(i)
            if instr.filter:
                x = MVMU.shuffle_inputs(x, instr.filter, instr.stride)
            y = mvmu.execute(x)
            self.registers.write_xbar_out(i, y)
        return self._advance(instr, mvm_count=len(active),
                             vec_width=self.config.mvmu_dim)

    def _exec_alu(self, instr: Instruction) -> ExecOutcome:
        op = instr.alu_op
        w = instr.vec_width
        src1 = self.registers.read(instr.src1, w)
        if op == AluOp.SUBSAMPLE:
            src2 = self.registers.read(instr.src2, 1)
        elif op.num_sources == 2:
            src2 = self.registers.read(instr.src2, w)
        else:
            src2 = None
        result = self.vfu.execute(op, src1, src2)
        self.registers.write(instr.dest, result)
        return self._advance(instr, vec_width=w,
                             rom_access=bool(op.is_transcendental))

    def _exec_alui(self, instr: Instruction) -> ExecOutcome:
        w = instr.vec_width
        src1 = self.registers.read(instr.src1, w)
        result = self.vfu.execute(instr.alu_op, src1,
                                  self._imm_vector(instr.imm, w))
        self.registers.write(instr.dest, result)
        return self._advance(instr, vec_width=w)

    def _exec_alu_int(self, instr: Instruction) -> ExecOutcome:
        a = self._read_scalar(instr.src1)
        b = instr.imm if instr.imm_mode else self._read_scalar(instr.src2)
        result = self.sfu.execute(instr.alu_op, a, b)
        self.registers.write(instr.dest, np.array([result]))
        return self._advance(instr)

    def _exec_set(self, instr: Instruction) -> ExecOutcome:
        w = instr.vec_width
        self.registers.write(instr.dest, self._imm_vector(instr.imm, w))
        return self._advance(instr, vec_width=w)

    def _exec_copy(self, instr: Instruction) -> ExecOutcome:
        w = instr.vec_width
        data = self.registers.read(instr.src1, w)
        self.registers.write(instr.dest, data)
        return self._advance(instr, vec_width=w)

    def _effective_address(self, instr: Instruction) -> int:
        addr = instr.mem_addr
        if instr.reg_indirect:
            addr += self._read_scalar(instr.addr_reg)
        return addr

    def _exec_load(self, instr: Instruction) -> ExecOutcome:
        addr = self._effective_address(instr)
        data = self.memory.try_read(addr, instr.vec_width)
        if data is None:
            return ExecOutcome(ExecStatus.BLOCKED_READ, instr,
                               vec_width=instr.vec_width)
        self.registers.write(instr.dest, data)
        return self._advance(instr, vec_width=instr.vec_width,
                             eff_addr=addr)

    def _exec_store(self, instr: Instruction) -> ExecOutcome:
        addr = self._effective_address(instr)
        data = self.registers.read(instr.src1, instr.vec_width)
        if not self.memory.try_write(addr, data, count=instr.count):
            return ExecOutcome(ExecStatus.BLOCKED_WRITE, instr,
                               vec_width=instr.vec_width)
        return self._advance(instr, vec_width=instr.vec_width,
                             eff_addr=addr)

    def _exec_jmp(self, instr: Instruction) -> ExecOutcome:
        return self._advance(instr, next_pc=instr.pc)

    def _exec_brn(self, instr: Instruction) -> ExecOutcome:
        a = self._read_scalar(instr.src1)
        b = self._read_scalar(instr.src2)
        taken = self.sfu.branch_taken(instr.brn_op, a, b)
        return self._advance(instr, next_pc=instr.pc if taken else None)

    def _exec_hlt(self, instr: Instruction) -> ExecOutcome:
        self.halted = True
        return ExecOutcome(ExecStatus.HALTED, instr)

    # Class-level dispatch: built once, not per execute() call (the per-call
    # dict literal was measurable on the interpreter hot path).
    _HANDLERS = {
        Opcode.MVM: _exec_mvm,
        Opcode.ALU: _exec_alu,
        Opcode.ALUI: _exec_alui,
        Opcode.ALU_INT: _exec_alu_int,
        Opcode.SET: _exec_set,
        Opcode.COPY: _exec_copy,
        Opcode.LOAD: _exec_load,
        Opcode.STORE: _exec_store,
        Opcode.JMP: _exec_jmp,
        Opcode.BRN: _exec_brn,
        Opcode.HLT: _exec_hlt,
    }
