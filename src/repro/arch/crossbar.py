"""Memristor crossbar model (Figure 2).

A crossbar stores one *bit slice* of a weight matrix: each device holds
``bits_per_cell`` bits as one of ``2**bits_per_cell`` conductance levels in
``[g_min, g_max]``.  Applying row voltages produces column currents
``I_j = sum_i V_i * g_ij`` (Kirchhoff's law) — an analog MVM in one step.

Device non-ideality is modelled as *write noise*: programming a target level
leaves the conductance displaced by a Gaussian whose standard deviation is a
device property, independent of how many levels the target format squeezes
into the conductance window.  We express it as ``sigma_n`` in units of the
2-bit level separation (the paper's conservative cell choice), i.e.::

    g_programmed = g_target + N(0, sigma_n * (g_max - g_min) / 4)

This reproduces Figure 13's qualitative behaviour: 2-bit cells tolerate
``sigma_n`` up to ~0.3 while higher bit-per-cell formats lose accuracy
because their level spacing shrinks below the fixed noise floor (the
"reduction in noise margin" of Section 7.6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.adc import AdcArray, exact_adc_bits
from repro.arch.dac import DacArray

# Memristor resistance range 100 kOhm - 1 MOhm (Section 6.1).
DEFAULT_G_MIN = 1.0 / 1e6
DEFAULT_G_MAX = 1.0 / 1e5
# Write-noise sigma is calibrated in units of the 2-bit level separation.
_NOISE_REFERENCE_LEVELS = 4


@dataclass(frozen=True)
class CrossbarModel:
    """Device and converter parameters shared by the crossbars of an MVMU.

    Attributes:
        dim: rows and columns (crossbars are square in PUMA).
        bits_per_cell: stored bits per device (2 in the paper).
        bits_per_input: DAC slice width (1 in the paper).
        g_min / g_max: conductance range in siemens.
        write_noise_sigma: Gaussian write-noise sigma in units of the 2-bit
            level separation (sigma_N in Figure 13).
        adc_bits: ADC resolution; ``None`` selects lossless resolution.
        read_voltage: DAC full-scale voltage.
    """

    dim: int = 128
    bits_per_cell: int = 2
    bits_per_input: int = 1
    g_min: float = DEFAULT_G_MIN
    g_max: float = DEFAULT_G_MAX
    write_noise_sigma: float = 0.0
    adc_bits: int | None = None
    read_voltage: float = 0.5

    def __post_init__(self) -> None:
        if self.dim <= 0:
            raise ValueError("dim must be positive")
        if self.bits_per_cell < 1:
            raise ValueError("bits_per_cell must be >= 1")
        if self.g_max <= self.g_min:
            raise ValueError("g_max must exceed g_min")
        if self.write_noise_sigma < 0:
            raise ValueError("write_noise_sigma must be non-negative")

    @property
    def levels(self) -> int:
        """Conductance levels per device."""
        return 1 << self.bits_per_cell

    @property
    def level_spacing(self) -> float:
        """Conductance separation between adjacent levels."""
        return (self.g_max - self.g_min) / (self.levels - 1)

    @property
    def noise_sigma_conductance(self) -> float:
        """Absolute write-noise sigma in siemens."""
        reference_spacing = (self.g_max - self.g_min) / _NOISE_REFERENCE_LEVELS
        return self.write_noise_sigma * reference_spacing

    @property
    def effective_adc_bits(self) -> int:
        if self.adc_bits is not None:
            return self.adc_bits
        return exact_adc_bits(self.dim, self.bits_per_cell, self.bits_per_input)

    def build_dac(self) -> DacArray:
        return DacArray(bits=self.bits_per_input, read_voltage=self.read_voltage)

    def build_adc(self) -> AdcArray:
        max_sum = (self.dim * ((1 << self.bits_per_input) - 1)
                   * (self.levels - 1))
        top_code = (1 << self.effective_adc_bits) - 1
        # When the code range covers every possible column sum the ADC is
        # lossless (one code per level unit); otherwise the analog range is
        # compressed onto fewer codes and quantization error appears.
        full_scale = float(max(max_sum, top_code))
        return AdcArray(bits=self.effective_adc_bits, full_scale=full_scale)

    @property
    def is_ideal(self) -> bool:
        """True when the analog path is bit-exact (no noise, lossless ADC)."""
        lossless = self.effective_adc_bits >= exact_adc_bits(
            self.dim, self.bits_per_cell, self.bits_per_input)
        return self.write_noise_sigma == 0.0 and lossless


class Crossbar:
    """One programmed crossbar holding a single bit slice of a weight tile.

    The crossbar is written once at configuration time (Section 3.2.5) and
    read through :meth:`column_sums` during execution.
    """

    def __init__(self, model: CrossbarModel,
                 rng: np.random.Generator | None = None) -> None:
        self.model = model
        self._rng = rng if rng is not None else np.random.default_rng()
        self._levels = np.zeros((model.dim, model.dim), dtype=np.int64)
        self._conductance = np.full(
            (model.dim, model.dim), model.g_min, dtype=np.float64)
        self._programmed = False
        # The converter arrays are physical peripherals shared by every
        # read of this crossbar: build them once here, not per column_sums
        # call — that call sits on the innermost hot path (input steps x
        # weight slices per MVM).
        self.dac = model.build_dac()
        self.adc = model.build_adc()

    @property
    def target_levels(self) -> np.ndarray:
        """The digital levels the crossbar was asked to store (read-only)."""
        return self._levels.copy()

    @property
    def conductance(self) -> np.ndarray:
        """The (possibly noisy) programmed conductances (read-only)."""
        return self._conductance.copy()

    def program(self, levels: np.ndarray) -> None:
        """Serially write a matrix of device levels (configuration time).

        Args:
            levels: ``(dim, dim)`` integers in ``[0, 2**bits_per_cell)``;
                ``levels[i, j]`` is the device at row *i*, column *j*.
        """
        arr = np.asarray(levels, dtype=np.int64)
        if arr.shape != (self.model.dim, self.model.dim):
            raise ValueError(
                f"expected shape {(self.model.dim, self.model.dim)}, "
                f"got {arr.shape}"
            )
        if np.any(arr < 0) or np.any(arr >= self.model.levels):
            raise ValueError(
                f"levels out of range [0, {self.model.levels})"
            )
        self._levels = arr.copy()
        target_g = self.model.g_min + arr * self.model.level_spacing
        if self.model.write_noise_sigma > 0.0:
            noise = self._rng.normal(
                0.0, self.model.noise_sigma_conductance, size=arr.shape)
            target_g = target_g + noise
        self._conductance = np.clip(target_g, self.model.g_min, self.model.g_max)
        self._programmed = True

    def export_state(self) -> tuple[np.ndarray, np.ndarray]:
        """The programmed device state ``(levels, conductance)``.

        The returned arrays are the live ones, *not* copies: a crossbar is
        written once at configuration time and only read afterwards, so a
        replica restored from this state shares the device arrays with the
        original (copy-on-write across forked worker processes).
        """
        if not self._programmed:
            raise RuntimeError("crossbar has not been programmed")
        return self._levels, self._conductance

    def restore_state(self, levels: np.ndarray,
                      conductance: np.ndarray) -> None:
        """Install device state exported from an identically-programmed
        crossbar, without consuming any write-noise RNG draws.

        Validates both arrays (shape, integer levels in range, float
        conductances within the model's window) so state deserialized
        from disk cannot silently corrupt the analog path::

            levels, conductance = source_crossbar.export_state()
            replica.restore_state(levels, conductance)   # bitwise replica
        """
        expected = (self.model.dim, self.model.dim)
        if levels.shape != expected:
            raise ValueError(
                f"expected shape {expected}, got {levels.shape}")
        if conductance.shape != expected:
            raise ValueError(
                f"conductance expected shape {expected}, "
                f"got {conductance.shape}")
        if not np.issubdtype(levels.dtype, np.integer):
            raise ValueError(
                f"levels must be integers, got dtype {levels.dtype}")
        if np.any(levels < 0) or np.any(levels >= self.model.levels):
            raise ValueError(
                f"restored levels out of range [0, {self.model.levels})")
        if not np.issubdtype(conductance.dtype, np.floating):
            raise ValueError(
                f"conductance must be float, got dtype {conductance.dtype}")
        # program() clips to [g_min, g_max]; anything outside cannot have
        # come from an identically-configured crossbar.
        if (np.any(conductance < self.model.g_min - 1e-18)
                or np.any(conductance > self.model.g_max + 1e-18)):
            raise ValueError(
                "restored conductances fall outside the device window")
        self._levels = levels
        self._conductance = conductance
        self._programmed = True

    def effective_levels(self) -> np.ndarray:
        """Continuous level values implied by the programmed conductances."""
        return (self._conductance - self.model.g_min) / self.model.level_spacing

    def column_sums(self, input_slices: np.ndarray) -> np.ndarray:
        """Analog MVM for one or more input slices: digitized column sums.

        Implements the full chain of Figure 2a: DAC -> crossbar currents ->
        integrator -> ADC.  The returned values are in *level units*, i.e.
        estimates of ``sum_i x_i * w_ij`` where ``x`` is the digital input
        slice and ``w`` the stored levels.  With an ideal model the result
        is exact.

        Args:
            input_slices: ``(dim,)`` or ``(batch, dim)`` integers in
                ``[0, 2**bits_per_input)``.  A batch computes every lane in
                one matrix product; lane *b* of the result is bit-identical
                to a separate call on row *b* (the matmul is always issued
                as a 2-D product so the per-row reduction order does not
                depend on the batch size).

        Returns:
            Column sums with the same leading shape as the input:
            ``(dim,)`` for a single slice, ``(batch, dim)`` for a batch.
        """
        if not self._programmed:
            raise RuntimeError("crossbar has not been programmed")
        x = np.asarray(input_slices, dtype=np.int64)
        if x.ndim not in (1, 2) or x.shape[-1] != self.model.dim:
            raise ValueError(
                f"expected shape ({self.model.dim},) or "
                f"(batch, {self.model.dim}), got {x.shape}")
        batched = x.ndim == 2
        lanes = x if batched else x[np.newaxis, :]

        voltages = self.dac.convert(lanes)
        currents = voltages @ self._conductance  # I_j = sum_i V_i * g_ij

        # The integrator converts charge to a voltage proportional to the
        # column sum in level units; digital logic removes the g_min offset
        # using the digitally-computed input sum (a standard peripheral
        # arrangement, cf. ISAAC).
        input_sums = (lanes.sum(axis=-1, keepdims=True).astype(np.float64)
                      * self.dac.lsb_voltage)
        level_sums = ((currents - input_sums * self.model.g_min)
                      / (self.model.level_spacing * self.dac.lsb_voltage))

        codes = self.adc.convert(np.maximum(level_sums, 0.0))
        estimates = self.adc.reconstruct(codes)
        return estimates if batched else estimates[0]
