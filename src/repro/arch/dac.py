"""Digital-to-analog converter array model.

Each crossbar row is fed by a DAC that converts an input slice (``b_in``
bits, 1 in the paper's bit-streamed design) to a voltage in
``[0, read_voltage]`` (Figure 2a).  The model is ideal in value — converter
non-idealities relevant to the paper's study enter through the crossbar's
write noise and the ADC's quantization — but it owns the digital/analog
scaling so the crossbar can work purely in conductances and volts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DacArray:
    """An array of row DACs.

    Attributes:
        bits: input slice width converted per step (1 in the paper).
        read_voltage: full-scale output voltage (0.5 V, Section 6.1).
    """

    bits: int = 1
    read_voltage: float = 0.5

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("DAC bits must be >= 1")
        if self.read_voltage <= 0:
            raise ValueError("read_voltage must be positive")

    @property
    def levels(self) -> int:
        return 1 << self.bits

    @property
    def lsb_voltage(self) -> float:
        """Voltage per input LSB."""
        return self.read_voltage / (self.levels - 1)

    def convert(self, slices: np.ndarray) -> np.ndarray:
        """Convert digital input slices to row voltages.

        Args:
            slices: integer array with values in ``[0, 2**bits)``.

        Returns:
            Voltages, same shape as ``slices``.
        """
        arr = np.asarray(slices)
        if np.any(arr < 0) or np.any(arr >= self.levels):
            raise ValueError(
                f"DAC input out of range [0, {self.levels}): "
                f"min={arr.min()}, max={arr.max()}"
            )
        return arr.astype(np.float64) * self.lsb_voltage
