"""Matrix-Vector Multiplication Unit: bit-sliced 16-bit MVM (Section 3.2).

An MVMU combines ``16 / bits_per_cell`` crossbars (8 with the paper's 2-bit
cells) that hold the bit slices of one weight tile, co-located so they share
the XbarIn registers and DAC array (Section 3.2.2).  Inputs are streamed
bit-serially (``bits_per_input`` per step); partial column sums from every
(input step, weight slice) pair are shifted and added to reconstruct the full
16-bit x 16-bit dot products.

Signedness: both weights and inputs use offset-binary encoding (value +
2^15).  The cross terms introduced by the offsets are removed digitally
using the per-column weight sums (a compile-time constant stored with the
unit) and the input sum (computed on the fly) — the standard arrangement for
signed arithmetic on unipolar conductances.

The unit exposes two functionally identical paths:

* :meth:`execute` — full analog emulation through
  :class:`~repro.arch.crossbar.Crossbar` (DAC/ADC, write noise).
* the ideal shortcut taken automatically when the model is bit-exact, which
  computes the same integer product directly (orders of magnitude faster;
  property tests in ``tests/test_mvmu.py`` check the equivalence).
"""

from __future__ import annotations

import numpy as np

from repro.arch.crossbar import Crossbar, CrossbarModel
from repro.fixedpoint import FixedPointFormat, bit_slices


class MVMU:
    """One matrix-vector multiplication unit.

    Args:
        model: device/converter parameters (dimension, cell bits, noise).
        fmt: datapath fixed-point format (16-bit).
        rng: random generator for write noise (shared across slices).
    """

    def __init__(self, model: CrossbarModel,
                 fmt: FixedPointFormat | None = None,
                 rng: np.random.Generator | None = None) -> None:
        self.model = model
        self.fmt = fmt if fmt is not None else FixedPointFormat()
        if self.fmt.total_bits % model.bits_per_cell != 0:
            raise ValueError("word width must be divisible by bits_per_cell")
        if self.fmt.total_bits % model.bits_per_input != 0:
            raise ValueError("word width must be divisible by bits_per_input")
        self._rng = rng if rng is not None else np.random.default_rng()
        self.num_slices = self.fmt.total_bits // model.bits_per_cell
        self.num_input_steps = self.fmt.total_bits // model.bits_per_input
        self._crossbars: list[Crossbar] = []
        self._column_offset_sums: np.ndarray | None = None
        self._matrix: np.ndarray | None = None
        self._matrix_f64: np.ndarray | None = None  # lazy BLAS operand

    @property
    def dim(self) -> int:
        return self.model.dim

    @property
    def is_programmed(self) -> bool:
        return self._matrix is not None

    @property
    def matrix(self) -> np.ndarray:
        """The signed fixed-point matrix the unit was programmed with."""
        if self._matrix is None:
            raise RuntimeError("MVMU has not been programmed")
        return self._matrix.copy()

    def program(self, matrix: np.ndarray) -> None:
        """Program a signed fixed-point weight tile (configuration time).

        Args:
            matrix: ``(dim, dim)`` signed integers (16-bit fixed point);
                ``matrix[i, j]`` multiplies input *i* into output *j*.
        """
        arr = np.asarray(matrix, dtype=np.int64)
        if arr.shape != (self.dim, self.dim):
            raise ValueError(f"expected {(self.dim, self.dim)}, got {arr.shape}")
        if np.any(arr < self.fmt.int_min) or np.any(arr > self.fmt.int_max):
            raise ValueError("matrix values exceed the fixed-point range")

        # Offset-binary encoding: value + 2^15 in [0, 2^16), NOT the two's
        # complement pattern — the offset-cancellation algebra in dot()
        # requires the true biased representation.
        offset = 1 << (self.fmt.total_bits - 1)
        unsigned = arr + offset
        slices = bit_slices(unsigned, self.model.bits_per_cell,
                            self.fmt.total_bits)
        self._crossbars = []
        for level_matrix in slices:
            xbar = Crossbar(self.model, rng=self._rng)
            xbar.program(level_matrix)
            self._crossbars.append(xbar)
        # Per-column sums of unsigned weights, used to cancel the input
        # offset term digitally.  With noise, use the conductances actually
        # programmed so the cancellation matches the analog array.
        effective = self._effective_unsigned_matrix()
        self._column_offset_sums = effective.sum(axis=0)
        self._matrix = arr.copy()
        self._matrix_f64 = None

    def export_programmed_state(
            self) -> tuple[np.ndarray, np.ndarray,
                           tuple[tuple[np.ndarray, np.ndarray], ...]]:
        """Everything :meth:`program` computed, for replica fan-out.

        Returns ``(matrix, column_offset_sums, crossbar_states)`` sharing
        the live arrays (read-only after configuration time, so sharing is
        safe and keeps forked replicas copy-on-write).
        """
        if self._matrix is None:
            raise RuntimeError("MVMU has not been programmed")
        return (self._matrix, self._column_offset_sums,
                tuple(xbar.export_state() for xbar in self._crossbars))

    def restore_programmed_state(
            self, state: tuple[np.ndarray, np.ndarray,
                               tuple[tuple[np.ndarray, np.ndarray], ...]]
    ) -> None:
        """Install state exported from an identically-configured MVMU.

        Skips the bit-slicing and (noisy) device writes of :meth:`program`
        without consuming RNG draws; callers who need bitwise parity with a
        freshly-programmed unit must restore the RNG state alongside (see
        :meth:`repro.node.node.Node.export_programmed_state`).
        """
        matrix, column_offset_sums, xbar_states = state
        if len(xbar_states) != self.num_slices:
            raise ValueError(
                f"state holds {len(xbar_states)} crossbar slices, "
                f"unit expects {self.num_slices}")
        if matrix.shape != (self.dim, self.dim):
            raise ValueError(
                f"state matrix expected {(self.dim, self.dim)}, "
                f"got {matrix.shape}")
        if not np.issubdtype(matrix.dtype, np.integer):
            raise ValueError(
                f"state matrix must be integer, got dtype {matrix.dtype}")
        if column_offset_sums.shape != (self.dim,):
            raise ValueError(
                f"state column sums expected ({self.dim},), "
                f"got {column_offset_sums.shape}")
        self._crossbars = []
        for levels, conductance in xbar_states:
            xbar = Crossbar(self.model, rng=self._rng)
            xbar.restore_state(levels, conductance)
            self._crossbars.append(xbar)
        self._column_offset_sums = column_offset_sums
        self._matrix = matrix
        self._matrix_f64 = None

    def _effective_unsigned_matrix(self) -> np.ndarray:
        """Unsigned weights implied by the programmed conductances."""
        acc = np.zeros((self.dim, self.dim), dtype=np.float64)
        for i, xbar in enumerate(self._crossbars):
            acc += xbar.effective_levels() * float(
                1 << (i * self.model.bits_per_cell))
        return acc

    def _f64_product_is_exact(self) -> bool:
        """Whether the float64 BLAS product can never round.

        Operands are bounded by ``2**(total_bits-1)``, so every elementwise
        product is at most ``2**(2*(total_bits-1))`` and any partial sum of
        ``dim`` such products stays below ``dim * 2**(2*(total_bits-1))``.
        While that bound is at most ``2**53`` every intermediate value is an
        exactly-representable float64 integer and additions are exact in
        *any* association order — BLAS blocking/FMA included — so the
        float64 matmul is bitwise identical to integer arithmetic.
        """
        product_bits = 2 * (self.fmt.total_bits - 1)
        return self.dim * (1 << product_bits) <= (1 << 53)

    def dot_ideal(self, inputs: np.ndarray) -> np.ndarray:
        """Exact signed integer product ``inputs @ matrix`` (reference path).

        Accepts ``(dim,)`` or ``(batch, dim)`` inputs; integer arithmetic is
        exact, so batched lanes are trivially bit-identical to separate
        calls.  When the value range permits (see
        :meth:`_f64_product_is_exact`) the product runs through float64
        BLAS — an order of magnitude faster than numpy's int64 matmul and
        provably bit-identical; otherwise integer arithmetic is used.
        """
        if self._matrix is None:
            raise RuntimeError("MVMU has not been programmed")
        x = np.asarray(inputs, dtype=np.int64)
        if self._f64_product_is_exact():
            return self._dot_ideal_f64(x).astype(np.int64)
        return x @ self._matrix

    def _dot_ideal_f64(self, x: np.ndarray) -> np.ndarray:
        """The exact product as float64 (callers needing floats avoid the
        int64 round-trip; valid only under :meth:`_f64_product_is_exact`)."""
        if self._matrix_f64 is None:
            self._matrix_f64 = self._matrix.astype(np.float64)
        return x.astype(np.float64) @ self._matrix_f64

    def dot(self, inputs: np.ndarray, force_analog: bool = False) -> np.ndarray:
        """Full-precision dot products through the modelled analog path.

        Args:
            inputs: ``(dim,)`` or ``(batch, dim)`` signed fixed-point
                integers; a batch runs all lanes through each (input step,
                weight slice) pair in single numpy operations.
            force_analog: skip the ideal-model shortcut and run the full
                bit-sliced emulation (used by equivalence tests).

        Returns:
            Float column results at full precision with the same leading
            shape as ``inputs`` (callers rescale to the 16-bit format; see
            :meth:`execute`).
        """
        if self._matrix is None:
            raise RuntimeError("MVMU has not been programmed")
        x = np.asarray(inputs, dtype=np.int64)
        if x.ndim not in (1, 2) or x.shape[-1] != self.dim:
            raise ValueError(
                f"expected shape ({self.dim},) or (batch, {self.dim}), "
                f"got {x.shape}")
        if self.model.is_ideal and not force_analog:
            if self._f64_product_is_exact():
                return self._dot_ideal_f64(x)  # already-exact float64
            return self.dot_ideal(x).astype(np.float64)

        offset = 1 << (self.fmt.total_bits - 1)
        unsigned_x = x + offset  # offset-binary, matching program()
        input_steps = bit_slices(unsigned_x, self.model.bits_per_input,
                                 self.fmt.total_bits)

        # sum over input steps k and weight slices s of
        #   column_sums(x_k, W_s) << (k*b_in + s*b_cell)
        acc = np.zeros(x.shape, dtype=np.float64)
        for k, x_step in enumerate(input_steps):
            shift_k = k * self.model.bits_per_input
            for s, xbar in enumerate(self._crossbars):
                shift_s = s * self.model.bits_per_cell
                partial = xbar.column_sums(x_step)
                acc += partial * float(1 << (shift_k + shift_s))

        # Remove offset-binary cross terms:
        #   sum (ux-H)(uw-H) = sum ux*uw - H*sum(ux) - H*sum(uw) + n*H^2
        input_sums = unsigned_x.sum(axis=-1, keepdims=True).astype(np.float64)
        weight_sums = self._column_offset_sums
        n = float(self.dim)
        h = float(offset)
        return acc - h * weight_sums - h * input_sums + n * h * h

    def execute(self, inputs: np.ndarray) -> np.ndarray:
        """A complete MVM instruction's datapath: dot, rescale, saturate.

        Both operands carry ``frac_bits`` fractional bits, so the product is
        rescaled by ``>> frac_bits`` — an arithmetic shift, i.e. floor —
        and saturated to the 16-bit range, matching
        :meth:`FixedPointFormat.multiply` exactly (including negative
        products with odd low bits, which round toward -inf, not to
        nearest).
        """
        full = self.dot(inputs)
        scaled = np.floor(full / self.fmt.scale)
        return self.fmt.saturate(scaled.astype(np.int64))

    @staticmethod
    def shuffle_inputs(xbar_in: np.ndarray, filter_length: int,
                       stride: int) -> np.ndarray:
        """Logical input shuffling (Section 3.2.3).

        Re-routes XbarIn registers to DACs with a *blocked rotation*: the
        register vector is viewed as consecutive blocks of ``filter_length``
        registers, and within every complete block DAC row ``k`` reads
        register ``(k + stride) % filter_length``.  Trailing registers that
        do not fill a block map identity.

        This is exactly what sliding-window kernels need: each window row
        keeps a circular buffer of column slices in one block; advancing
        the window overwrites one slice per block and bumps the rotation,
        with no physical data movement (~80% of the input is reused for a
        5x5 filter at unit stride, Section 3.2.3).

        Args:
            xbar_in: the XbarIn register contents, ``(dim,)`` or
                ``(batch, dim)`` (the rotation applies along the last axis).
            filter_length: block (window-row buffer) length; 0 disables
                shuffling.
            stride: rotation offset within each block.
        """
        x = np.asarray(xbar_in)
        length = x.shape[-1]
        if filter_length <= 0:
            return x.copy()
        if filter_length > length:
            raise ValueError(
                f"filter {filter_length} exceeds vector length {length}")
        routed = x.copy()
        rotation = (np.arange(filter_length) + stride) % filter_length
        blocks = length // filter_length
        head = blocks * filter_length
        blocked = x[..., :head].reshape(x.shape[:-1] + (blocks, filter_length))
        routed[..., :head] = blocked[..., rotation].reshape(
            x.shape[:-1] + (head,))
        return routed
