"""Per-core register file: XbarIn, XbarOut, and general-purpose registers.

The three classes live in one flat index space (Section 5.4 describes their
distinct read/write constraints, which the functional simulator enforces):

* XbarIn — written by non-MVM instructions, read only by MVM;
* XbarOut — written only by MVM, read by non-MVM instructions;
* general purpose — read and written by non-MVM instructions, hosted in the
  ROM-Embedded RAM structure alongside the transcendental LUTs.

The class-constraint checks catch compiler register-allocation bugs early;
they can be disabled for hand-written kernels that deliberately bend the
rules.
"""

from __future__ import annotations

import numpy as np

from repro.arch.config import CoreConfig
from repro.arch.rom_lut import RomEmbeddedRam
from repro.isa.opcodes import AluOp, RegisterClass


class RegisterAccessError(RuntimeError):
    """An instruction accessed a register class it is not allowed to."""


class RegisterFile:
    """The register state of one core.

    With ``batch > 1`` every register holds one word *per batch lane*: the
    state is a ``(batch, num_registers)`` array, reads return
    ``(batch, width)`` matrices, and writes accept either a per-lane matrix
    or a single vector broadcast to every lane.  PUMA programs are
    control-uniform across inputs, so one instruction stream drives all
    lanes SIMD-style.  With the default ``batch == 1`` the interface is
    exactly the classic one-vector register file (1-D reads and writes).

    Args:
        config: core configuration (sizes and layout).
        enforce_classes: enforce the XbarIn/XbarOut access rules.
        batch: number of SIMD batch lanes held per register.
    """

    def __init__(self, config: CoreConfig, enforce_classes: bool = True,
                 batch: int = 1) -> None:
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.config = config
        self.enforce_classes = enforce_classes
        self.batch = batch
        self._data = np.zeros((batch, config.num_registers), dtype=np.int64)
        self.rom = RomEmbeddedRam(config.rom_lut_entries, config.fixed_point)
        self.reads = {cls: 0 for cls in RegisterClass}
        self.writes = {cls: 0 for cls in RegisterClass}

    def _check_range(self, start: int, width: int) -> None:
        if width < 1:
            raise ValueError(f"vector width must be >= 1, got {width}")
        if start < 0 or start + width > self.config.num_registers:
            raise IndexError(
                f"register range [{start}, {start + width}) exceeds the "
                f"register space [0, {self.config.num_registers})"
            )

    def _classes_in_range(self, start: int, width: int) -> set[RegisterClass]:
        classes = {self.config.register_class(start)}
        classes.add(self.config.register_class(start + width - 1))
        # A range can straddle at most adjacent classes given the layout.
        if (start < self.config.xbar_in_size
                and start + width > self.config.xbar_in_size):
            classes.add(RegisterClass.XBAR_OUT)
        return classes

    def read(self, start: int, width: int = 1, from_mvm: bool = False) -> np.ndarray:
        """Read ``width`` consecutive registers.

        Args:
            start: flat register index.
            width: vector width.
            from_mvm: True when the reader is the MVM unit (only MVM may
                read XbarIn; only non-MVM readers may read XbarOut).
        """
        self._check_range(start, width)
        classes = self._classes_in_range(start, width)
        if self.enforce_classes:
            if not from_mvm and RegisterClass.XBAR_IN in classes:
                raise RegisterAccessError(
                    f"non-MVM read of XbarIn registers at {start}")
            if from_mvm and classes != {RegisterClass.XBAR_IN}:
                raise RegisterAccessError(
                    f"MVM read outside XbarIn registers at {start}")
        for cls in classes:
            self.reads[cls] += width
        data = self._data[:, start:start + width].copy()
        return data[0] if self.batch == 1 else data

    def write(self, start: int, values: np.ndarray, from_mvm: bool = False) -> None:
        """Write consecutive registers with fixed-point words.

        Accepts a ``(width,)`` vector — written to every batch lane — or a
        ``(batch, width)`` matrix carrying distinct per-lane values.
        """
        arr = np.atleast_1d(np.asarray(values, dtype=np.int64))
        if arr.ndim == 2 and arr.shape[0] != self.batch:
            raise ValueError(
                f"batched write carries {arr.shape[0]} lanes, register file "
                f"holds {self.batch}")
        if arr.ndim > 2:
            raise ValueError(f"register write must be 1-D or 2-D, got {arr.ndim}-D")
        width = arr.shape[-1]
        self._check_range(start, width)
        classes = self._classes_in_range(start, width)
        if self.enforce_classes:
            if not from_mvm and RegisterClass.XBAR_OUT in classes:
                raise RegisterAccessError(
                    f"non-MVM write of XbarOut registers at {start}")
            if from_mvm and classes != {RegisterClass.XBAR_OUT}:
                raise RegisterAccessError(
                    f"MVM write outside XbarOut registers at {start}")
        fmt = self.config.fixed_point
        if np.any(arr < fmt.int_min) or np.any(arr > fmt.int_max):
            raise ValueError("register write exceeds the fixed-point range")
        for cls in classes:
            self.writes[cls] += width
        self._data[:, start:start + width] = arr

    def read_scalar(self, reg: int) -> int:
        """Lane-0 value of one register, without the vector-read copy.

        Semantically a ``read(reg, 1)`` restricted to lane 0 (what control
        consumes — branches and indirect addressing are batch-uniform), but
        allocation-free: the hot branch/indirect path was paying an array
        copy plus ``np.asarray(...).flat[0]`` per access.  Class rules and
        access counters behave exactly like :meth:`read`.
        """
        self._check_range(reg, 1)
        cls = self.config.register_class(reg)
        if self.enforce_classes and cls == RegisterClass.XBAR_IN:
            raise RegisterAccessError(
                f"non-MVM read of XbarIn registers at {reg}")
        self.reads[cls] += 1
        return int(self._data[0, reg])

    def lut_evaluate(self, op: AluOp, values: np.ndarray) -> np.ndarray:
        """Evaluate a transcendental through the embedded ROM."""
        return self.rom.lookup(op, values)

    def xbar_in_vector(self, mvmu: int) -> np.ndarray:
        """The XbarIn register vector of one MVMU (MVM-unit access)."""
        base = self.config.xbar_in_base(mvmu)
        return self.read(base, self.config.mvmu_dim, from_mvm=True)

    def write_xbar_out(self, mvmu: int, values: np.ndarray) -> None:
        """Write one MVMU's result vector into XbarOut (MVM-unit access)."""
        base = self.config.xbar_out_base(mvmu)
        self.write(base, values, from_mvm=True)

    def snapshot(self) -> np.ndarray:
        """A copy of the whole register space (for tests/debugging).

        Shape ``(num_registers,)`` for batch 1, ``(batch, num_registers)``
        otherwise.
        """
        return self._data[0].copy() if self.batch == 1 else self._data.copy()
