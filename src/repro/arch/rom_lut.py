"""Transcendental function evaluation via ROM-Embedded RAM (Section 3.4.1).

PUMA evaluates sigmoid/tanh/exp/log with look-up tables embedded in the
register-file array using the ROM-Embedded RAM technique (Figure 3): an
extra wordline per row embeds a ROM that can be read without sacrificing RAM
capacity; a ROM access buffers the RAM data, writes the probe patterns,
reads the ROM, and restores the RAM contents.

Functionally, a LUT evaluation is a piecewise-linear interpolation over
``entries`` segments spanning the representable fixed-point domain.  The
interpolation multiply runs on the VFU; the table itself costs one ROM-mode
access, which the timing/energy model charges separately from RAM accesses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.fixedpoint import FixedPointFormat
from repro.isa.opcodes import AluOp


def _safe_log(x: float, resolution: float) -> float:
    """Natural log clamped at the smallest positive representable value."""
    return math.log(max(x, resolution))


def reference_function(op: AluOp) -> Callable[[float], float]:
    """The real-valued function a LUT approximates (for table building)."""
    if op == AluOp.SIGMOID:
        return lambda x: 1.0 / (1.0 + math.exp(-x))
    if op == AluOp.TANH:
        return math.tanh
    if op == AluOp.EXP:
        return math.exp
    if op == AluOp.LOG:
        # Bound at the format resolution; exact bound applied per-format in
        # build_lut via the closure below.
        return lambda x: _safe_log(x, 1e-6)
    raise ValueError(f"{op.name} is not a LUT-evaluated function")


@dataclass(frozen=True)
class RomLutTable:
    """A fixed-point piecewise-linear table for one function.

    Attributes:
        op: which transcendental this table evaluates.
        entries: number of breakpoints (segments = entries - 1).
        x_values: breakpoint inputs, fixed-point integers, ascending.
        y_values: function values at the breakpoints, fixed-point integers.
        fmt: the datapath fixed-point format.
    """

    op: AluOp
    entries: int
    x_values: np.ndarray
    y_values: np.ndarray
    fmt: FixedPointFormat

    # Word widths up to this many bits get a dense word->value table
    # (2**16 entries = 512 KB of int64), replacing the per-call
    # searchsorted+interpolate with one gather on the hot path.
    _DENSE_MAX_BITS = 16

    def _dense_table(self) -> np.ndarray | None:
        """A full word->result table, built lazily via :meth:`_interpolate`.

        Exact by construction — every entry is the interpolation code's own
        answer for that input word — so the gather path is bitwise
        identical to the arithmetic path it replaces.
        """
        dense = getattr(self, "_dense", None)
        if dense is None and self.fmt.total_bits <= self._DENSE_MAX_BITS:
            domain = np.arange(self.fmt.int_min, self.fmt.int_max + 1,
                               dtype=np.int64)
            dense = self._interpolate(domain)
            dense.setflags(write=False)
            object.__setattr__(self, "_dense", dense)  # frozen dataclass
        return dense

    def _interpolate(self, x: np.ndarray) -> np.ndarray:
        x_clamped = np.clip(x, self.x_values[0], self.x_values[-1])
        # Segment index for each input (right-closed last segment).
        idx = np.searchsorted(self.x_values, x_clamped, side="right") - 1
        idx = np.clip(idx, 0, self.entries - 2)
        x0 = self.x_values[idx]
        x1 = self.x_values[idx + 1]
        y0 = self.y_values[idx].astype(np.int64)
        y1 = self.y_values[idx + 1].astype(np.int64)
        span = np.maximum(x1 - x0, 1)
        # Fixed-point linear interpolation: y0 + (dx * dy) / span.
        interp = y0 + ((x_clamped - x0) * (y1 - y0)) // span
        return self.fmt.saturate(interp)

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        """Interpolate fixed-point inputs through the table.

        Inputs outside the table domain clamp to the end segments, which
        models hardware saturation.
        """
        x = np.asarray(values, dtype=np.int64)
        dense = self._dense_table()
        if dense is not None:
            clamped = np.clip(x, self.fmt.int_min, self.fmt.int_max)
            return dense[clamped - self.fmt.int_min]
        return self._interpolate(x)

    def max_interpolation_error(self, probe_points: int = 4096) -> float:
        """Worst observed |LUT - reference| over a uniform probe (real units)."""
        ref = reference_function(self.op)
        xs = np.linspace(self.fmt.dequantize(self.x_values[0]),
                         self.fmt.dequantize(self.x_values[-1]),
                         probe_points)
        approx = self.fmt.dequantize(self.evaluate(self.fmt.quantize(xs)))
        exact = np.array([min(max(ref(float(v)), self.fmt.min_value),
                              self.fmt.max_value) for v in xs])
        return float(np.max(np.abs(approx - exact)))


# Tables are pure functions of (op, entries, fmt) and read-only after
# construction, so they are shared process-wide.  Building one costs
# ``entries`` python-float evaluations — noticeable when every simulator
# run instantiates fresh register files (one RomEmbeddedRam per core).
_TABLE_CACHE: dict[tuple[AluOp, int, FixedPointFormat], RomLutTable] = {}


def build_lut(op: AluOp, entries: int = 256,
              fmt: FixedPointFormat | None = None) -> RomLutTable:
    """Build (or fetch the cached) ROM table for one transcendental.

    The domain spans the representable range of ``fmt`` except for LOG,
    whose domain starts at the smallest positive representable value.
    """
    fmt = fmt if fmt is not None else FixedPointFormat()
    if entries < 2:
        raise ValueError("a LUT needs at least two entries")
    cached = _TABLE_CACHE.get((op, entries, fmt))
    if cached is not None:
        return cached

    if op == AluOp.LOG:
        lo = fmt.resolution
    else:
        lo = fmt.min_value
    hi = fmt.max_value

    xs = np.linspace(lo, hi, entries)
    if op == AluOp.LOG:
        ref = lambda x: _safe_log(x, fmt.resolution)  # noqa: E731
    else:
        ref = reference_function(op)
    ys = [min(max(ref(float(x)), fmt.min_value), fmt.max_value) for x in xs]
    table = RomLutTable(
        op=op,
        entries=entries,
        x_values=fmt.quantize(xs),
        y_values=fmt.quantize(np.array(ys)),
        fmt=fmt,
    )
    table.x_values.setflags(write=False)
    table.y_values.setflags(write=False)
    _TABLE_CACHE[(op, entries, fmt)] = table
    return table


class RomEmbeddedRam:
    """The register-file array with embedded ROM tables (Figure 3).

    Models the access protocol's observable property — ROM reads preserve
    RAM contents — and counts RAM/ROM accesses for the energy model.  The
    data array itself is owned by :class:`repro.arch.registers.RegisterFile`;
    this class owns the ROM halves (the LUTs).
    """

    def __init__(self, lut_entries: int = 256,
                 fmt: FixedPointFormat | None = None) -> None:
        self.fmt = fmt if fmt is not None else FixedPointFormat()
        self.lut_entries = lut_entries
        self._tables: dict[AluOp, RomLutTable] = {}
        self.rom_accesses = 0

    def table(self, op: AluOp) -> RomLutTable:
        """Get (building lazily) the ROM table for ``op``."""
        if op not in self._tables:
            self._tables[op] = build_lut(op, self.lut_entries, self.fmt)
        return self._tables[op]

    def lookup(self, op: AluOp, values: np.ndarray) -> np.ndarray:
        """Evaluate a transcendental on a vector, counting ROM accesses.

        Accepts ``(w,)`` or ``(batch, w)`` operands; batched lanes share the
        same probe sequence, so accesses count the per-lane width only.
        """
        arr = np.asarray(values, dtype=np.int64)
        self.rom_accesses += int(arr.shape[-1]) if arr.ndim else 1
        return self.table(op).evaluate(arr)
