"""Scalar Functional Unit (Section 3.1).

The SFU performs the scalar integer arithmetic (add, subtract) and compares
(equal, greater-than, not-equal) that support control flow — loop counters,
bounds, and branch predicates for the ``brn`` instruction.
"""

from __future__ import annotations

from repro.fixedpoint import FixedPointFormat
from repro.isa.opcodes import AluOp, BrnOp


class ScalarFunctionalUnit:
    """Executes ALUint operations and evaluates branch conditions."""

    def __init__(self, fmt: FixedPointFormat) -> None:
        self.fmt = fmt
        self.ops_executed = 0

    def execute(self, op: AluOp, a: int, b: int) -> int:
        """Scalar integer operation; compares return 1 or 0."""
        self.ops_executed += 1
        if op == AluOp.ADD:
            return int(self.fmt.saturate(a + b))
        if op == AluOp.SUB:
            return int(self.fmt.saturate(a - b))
        if op == AluOp.EQ:
            return int(a == b)
        if op == AluOp.GT:
            return int(a > b)
        if op == AluOp.NEQ:
            return int(a != b)
        raise ValueError(f"SFU cannot execute {op.name}")

    def branch_taken(self, op: BrnOp, a: int, b: int) -> bool:
        """Evaluate a ``brn`` condition."""
        self.ops_executed += 1
        if op == BrnOp.EQ:
            return a == b
        if op == BrnOp.NEQ:
            return a != b
        if op == BrnOp.LT:
            return a < b
        if op == BrnOp.LE:
            return a <= b
        if op == BrnOp.GT:
            return a > b
        if op == BrnOp.GE:
            return a >= b
        raise ValueError(f"unknown branch condition {op!r}")
