"""Vector Functional Unit with temporal SIMD (Section 3.3).

The VFU has ``vfu_width`` lanes; vector instructions wider than that execute
over multiple cycles while the operand steer unit streams register operands
— *temporal SIMD*.  Functionally the whole vector is computed at once here;
the cycle cost is ``ceil(vec_width / vfu_width)`` and is charged by the
timing model (:meth:`cycles`).

Arithmetic semantics: 16-bit fixed point with saturation; multiplies and
divides rescale by the fractional bits; logical operations act on the raw
two's-complement bit patterns.  Transcendentals delegate to the
ROM-Embedded RAM LUTs owned by the register file.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.fixedpoint import FixedPointFormat
from repro.isa.opcodes import AluOp

LutEvaluator = Callable[[AluOp, np.ndarray], np.ndarray]


class VectorFunctionalUnit:
    """Executes ALU / ALUimm vector operations.

    Args:
        width: number of hardware lanes.
        fmt: datapath fixed-point format.
        lut: evaluator for transcendental ops (the register file's ROM).
        rng: generator behind the RANDOM op (BM/RBM stochastic units).
    """

    def __init__(self, width: int, fmt: FixedPointFormat,
                 lut: LutEvaluator | None = None,
                 rng: np.random.Generator | None = None) -> None:
        if width < 1:
            raise ValueError("VFU width must be >= 1")
        self.width = width
        self.fmt = fmt
        self._lut = lut
        self._rng = rng if rng is not None else np.random.default_rng()
        self.ops_executed = 0
        self.cycles_busy = 0

    def cycles(self, vec_width: int) -> int:
        """Temporal-SIMD cycle cost of a ``vec_width`` operation."""
        return max(1, math.ceil(vec_width / self.width))

    def execute(self, op: AluOp, src1: np.ndarray,
                src2: np.ndarray | None = None) -> np.ndarray:
        """Compute ``op`` over ``src1`` (and ``src2`` for binary ops).

        Args:
            op: the ALU sub-operation.
            src1: first operand vector (fixed-point integers), ``(w,)`` or
                ``(batch, w)`` — a batched operand computes every lane in
                one numpy operation (SIMD over batch; the vector dimension
                is always the last axis).
            src2: second operand vector, broadcastable to ``src1``; for
                ALUimm the caller passes the broadcast immediate.

        Returns:
            Result vector, saturated to the fixed-point range.

        Note: ``ops_executed``/``cycles_busy`` count the per-lane vector
        width — one physical VFU still executes one instruction stream; the
        batch lanes ride along in the same issue slots.
        """
        a = np.asarray(src1, dtype=np.int64)
        width = int(a.shape[-1]) if a.ndim else 1
        self.ops_executed += width
        self.cycles_busy += self.cycles(width)

        if op.num_sources == 2:
            if src2 is None:
                raise ValueError(f"{op.name} needs two source operands")
            b = np.asarray(src2, dtype=np.int64)
        else:
            b = None

        return self._apply(op, a, b)

    def _apply(self, op: AluOp, a: np.ndarray, b: np.ndarray | None) -> np.ndarray:
        fmt = self.fmt
        if op == AluOp.ADD:
            return fmt.saturate(a + b)
        if op == AluOp.SUB:
            return fmt.saturate(a - b)
        if op == AluOp.MUL:
            return fmt.multiply(a, b)
        if op == AluOp.DIV:
            return fmt.divide(a, b)
        if op == AluOp.SHL:
            shift = np.clip(b, 0, fmt.total_bits - 1)
            return fmt.wrap(fmt.to_unsigned(a) << shift)
        if op == AluOp.SHR:
            shift = np.clip(b, 0, fmt.total_bits - 1)
            return a >> shift  # arithmetic shift on signed values
        if op == AluOp.AND:
            return fmt.from_unsigned(fmt.to_unsigned(a) & fmt.to_unsigned(b))
        if op == AluOp.OR:
            return fmt.from_unsigned(fmt.to_unsigned(a) | fmt.to_unsigned(b))
        if op == AluOp.NOT:
            return fmt.from_unsigned(~fmt.to_unsigned(a) & ((1 << fmt.total_bits) - 1))
        if op == AluOp.RELU:
            return np.maximum(a, 0)
        if op == AluOp.MIN:
            return np.minimum(a, b)
        if op == AluOp.MAX:
            return np.maximum(a, b)
        if op == AluOp.RANDOM:
            # Uniform fixed-point samples in [0, 1): the comparison source
            # for stochastic Boltzmann-machine units.
            return self._rng.integers(0, fmt.scale, size=a.shape, dtype=np.int64)
        if op == AluOp.SUBSAMPLE:
            factor = max(1, int(b.flat[0]) if b is not None and b.size else 2)
            return a[..., ::factor]
        if op.is_transcendental:
            return self._transcendental(op, a)
        raise ValueError(f"VFU cannot execute {op.name}")

    def _transcendental(self, op: AluOp, a: np.ndarray) -> np.ndarray:
        if self._lut is None:
            raise RuntimeError(
                f"{op.name} requires a ROM LUT evaluator but none is attached")
        if op == AluOp.LOG_SOFTMAX:
            # dest = x - log(sum(exp(x))): exp and log through the LUTs,
            # accumulation at full precision in the VFU adder tree.  The
            # reduction is over the vector (last) axis so batched operands
            # normalize each lane independently.
            exps = self._lut(AluOp.EXP, a)
            totals = np.minimum(exps.sum(axis=-1, keepdims=True),
                                self.fmt.int_max).astype(np.int64)
            log_totals = self._lut(AluOp.LOG, totals)
            return self.fmt.saturate(a - log_totals)
        return self._lut(op, a)
