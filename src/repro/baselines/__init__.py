"""Baseline platform models (Table 4 systems, TPU, ISAAC, digital MVMU).

The paper measures CPUs/GPUs with Torch7 and management-tool power meters;
offline we model each platform with a calibrated roofline: batch-1 DNN
inference is bound by weight traffic and per-kernel framework overhead,
batch-N inference by the compute roofline.  Published peak FLOP/s, memory
bandwidth, and TDP parameterize each platform; two global calibration
constants (memory efficiency, per-kernel launch overhead) are shared by all
platforms and documented in :mod:`repro.baselines.analytic`.
"""

from repro.baselines.platform import (
    CPU_PLATFORMS,
    GPU_PLATFORMS,
    PLATFORMS,
    PlatformSpec,
)
from repro.baselines.analytic import PlatformResult, estimate
from repro.baselines.tpu import TPU_SPEC, tpu_best_efficiency
from repro.baselines.isaac import ISAAC_METRICS, isaac_programmability
from repro.baselines.digital_mvmu import digital_mvmu_comparison

__all__ = [
    "PlatformSpec",
    "PLATFORMS",
    "CPU_PLATFORMS",
    "GPU_PLATFORMS",
    "PlatformResult",
    "estimate",
    "TPU_SPEC",
    "tpu_best_efficiency",
    "ISAAC_METRICS",
    "isaac_programmability",
    "digital_mvmu_comparison",
]
