"""Roofline latency/energy estimates for CPU/GPU platforms.

The model reproduces the *structure* of measured batch-1 inference:

* every layer invocation launches kernels — GEMV/GEMM plus the elementwise
  tail; LSTM cells launch many small kernels (gates, cell update) which is
  what makes framework overhead dominate measured LSTM inference;
* weights stream from DRAM once per (batch of) use: with batch 1 and no
  reuse the layer is bandwidth-bound; batching amortizes the weight traffic
  and moves layers toward the compute roofline;
* recurrent layers serialize over time steps — sequence reuse of weights
  cannot be batched away within one inference (Section 2.2.2);
* energy = DRAM traffic + FLOP energy + (idle power) x (time).

Calibration constants below are shared across platforms and documented in
EXPERIMENTS.md; absolute numbers are estimates, ratios against the PUMA
model are the reproduced results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.platform import PlatformSpec
from repro.workloads.spec import (
    ConvLayer,
    DenseLayer,
    LstmLayer,
    PoolLayer,
    WorkloadSpec,
)

# Fraction of peak DRAM bandwidth achieved by streaming GEMV.
MEMORY_EFFICIENCY = 0.75
# CPUs/GPUs ran Torch7 in FP32 (Section 6.2), so weights/activations are
# four bytes there, versus PUMA's 16-bit words.
BASELINE_BYTES_PER_PARAM = 4
# Kernels launched per layer invocation by the framework (Torch7-style,
# unfused): a GEMV/GEMM plus bias/activation for simple layers; gates,
# elementwise cell updates, and state copies for LSTM cells.
KERNELS_PER_DENSE_LAYER = 2
KERNELS_PER_CONV_LAYER = 3          # im2col + GEMM + activation
KERNELS_PER_LSTM_STEP = 25
# GEMM efficiency approaches peak as the batch grows.
_GEMM_EFFICIENCY_HALF_BATCH = 16.0


def gemm_efficiency(batch: int) -> float:
    """Fraction of peak FLOPs achieved by a GEMM with ``batch`` rows."""
    return batch / (batch + _GEMM_EFFICIENCY_HALF_BATCH)


@dataclass(frozen=True)
class PlatformResult:
    """Latency/energy estimate of one inference batch."""

    platform: str
    workload: str
    batch: int
    latency_s: float
    energy_j: float

    @property
    def latency_per_inference_s(self) -> float:
        return self.latency_s / self.batch

    @property
    def energy_per_inference_j(self) -> float:
        return self.energy_j / self.batch

    @property
    def throughput_ips(self) -> float:
        return self.batch / self.latency_s


def _layer_invocations(spec: WorkloadSpec) -> list[tuple[object, int, int]]:
    """(layer, invocations, kernels-per-invocation) for one inference."""
    recurrent = spec.dnn_type in ("DeepLSTM", "WideLSTM", "RNN")
    out = []
    for layer in spec.layers:
        if isinstance(layer, LstmLayer):
            out.append((layer, spec.seq_len, KERNELS_PER_LSTM_STEP))
        elif isinstance(layer, DenseLayer):
            steps = spec.seq_len if recurrent else 1
            out.append((layer, steps, KERNELS_PER_DENSE_LAYER))
        elif isinstance(layer, ConvLayer):
            out.append((layer, 1, KERNELS_PER_CONV_LAYER))
        elif isinstance(layer, PoolLayer):
            out.append((layer, 1, 1))
        else:
            raise TypeError(f"unknown layer {layer!r}")
    return out


def estimate(spec: WorkloadSpec, platform: PlatformSpec,
             batch: int = 1) -> PlatformResult:
    """Estimate latency and energy of one batch on a CPU/GPU platform.

    Recurrent time steps serialize; the batch dimension parallelizes
    within each step (the usual batched-RNN formulation).
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    bw = platform.mem_bandwidth_gbs * 1e9 * MEMORY_EFFICIENCY
    peak = platform.peak_gflops * 1e9
    overhead_s = platform.kernel_overhead_us * 1e-6
    eff = gemm_efficiency(batch)

    latency = 0.0
    dram_bytes = 0.0
    flops = 0.0
    for layer, invocations, kernels in _layer_invocations(spec):
        weight_bytes = layer.params * BASELINE_BYTES_PER_PARAM
        act_bytes = ((layer.in_size + layer.out_size)
                     * BASELINE_BYTES_PER_PARAM * batch)
        layer_macs = layer.macs
        layer_flops = 2.0 * layer_macs * batch

        per_invocation_bytes = weight_bytes + act_bytes
        mem_time = per_invocation_bytes / bw
        if isinstance(layer, ConvLayer):
            # Convolution GEMMs get their parallel rows from the window
            # positions, so they run near peak even at batch 1.
            layer_eff = gemm_efficiency(batch * layer.positions)
        else:
            layer_eff = eff
        compute_time = layer_flops / (peak * layer_eff) if layer_flops else 0.0
        invocation_time = max(mem_time, compute_time) + kernels * overhead_s
        if isinstance(layer, LstmLayer):
            invocation_time += platform.lstm_step_overhead_us * 1e-6

        latency += invocations * invocation_time
        dram_bytes += invocations * per_invocation_bytes
        flops += invocations * layer_flops

    energy = (dram_bytes * platform.dram_pj_per_byte * 1e-12
              + flops * platform.flop_pj * 1e-12
              + platform.tdp_w * platform.idle_fraction * latency)
    return PlatformResult(platform.name, spec.name, batch, latency, energy)
