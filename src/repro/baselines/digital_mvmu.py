"""Digital-MVMU comparison (Section 7.4.3).

"A memristive 128x128 MVMU performs 16,384 MACs in 2304 ns consuming
43.97 nJ.  A digital MVMU would require 8.97x more area to achieve the same
latency and would consume 4.17x more energy.  Using a digital MVMU would
increase the total chip area of the accelerator by 4.93x for the same
performance and would consume 6.76x energy."

The digital equivalent is derived from a 32 nm 16-bit MAC datapath: to
finish 16,384 MACs in 2304 ns at 1 GHz it needs ceil(16384/2304) = 8
parallel MAC units plus operand SRAM; the energy constant below
(11.2 pJ/MAC including operand movement) is calibrated to reproduce the
published 4.17x and the area constant to the published 8.97x, and the
chip-level factors follow by scaling the MVMU share of tile area/energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import PumaConfig
from repro.energy.components import mvmu_area_mm2
from repro.energy.model import mvm_latency_cycles

MEMRISTIVE_MVM_ENERGY_NJ = 43.97
DIGITAL_MAC_ENERGY_PJ = 11.2          # 16-bit MAC + operand SRAM at 32nm
DIGITAL_MAC_AREA_MM2 = 0.0134         # per MAC unit incl. SRAM slice
# Data movement amplification at chip level when area grows (Section 7.4.3
# factors energy of moving data across a larger die).
CHIP_LEVEL_MOVEMENT_FACTOR = 1.62


@dataclass(frozen=True)
class DigitalMvmuComparison:
    """The Section 7.4.3 numbers, as computed by the model."""

    macs_per_mvm: int
    latency_ns: float
    memristive_energy_nj: float
    digital_energy_nj: float
    memristive_area_mm2: float
    digital_area_mm2: float

    @property
    def energy_factor(self) -> float:
        return self.digital_energy_nj / self.memristive_energy_nj

    @property
    def area_factor(self) -> float:
        return self.digital_area_mm2 / self.memristive_area_mm2

    @property
    def chip_energy_factor(self) -> float:
        return self.energy_factor * CHIP_LEVEL_MOVEMENT_FACTOR

    @property
    def chip_area_factor(self) -> float:
        # MVMU area is ~2/3 of a core and ~55% of a tile; the rest of the
        # chip does not grow, so the chip factor is below the MVMU factor.
        mvmu_share = 0.55
        return 1 + mvmu_share * (self.area_factor - 1)


def digital_mvmu_comparison(config: PumaConfig | None = None
                            ) -> DigitalMvmuComparison:
    """Compare the memristive MVMU to a latency-matched digital design."""
    config = config if config is not None else PumaConfig()
    core = config.core
    macs = core.mvmu_dim * core.mvmu_dim
    latency_cycles = mvm_latency_cycles(
        core.mvmu_dim, core.fixed_point.total_bits // core.bits_per_input)
    latency_ns = latency_cycles * config.cycle_ns

    mac_units = max(1, round(macs / latency_cycles + 0.5))
    digital_energy = macs * DIGITAL_MAC_ENERGY_PJ / 1000.0
    digital_area = mac_units * DIGITAL_MAC_AREA_MM2
    return DigitalMvmuComparison(
        macs_per_mvm=macs,
        latency_ns=latency_ns,
        memristive_energy_nj=MEMRISTIVE_MVM_ENERGY_NJ,
        digital_energy_nj=digital_energy,
        memristive_area_mm2=mvmu_area_mm2(core.mvmu_dim, core.bits_per_cell),
        digital_area_mm2=digital_area,
    )
