"""ISAAC model (Tables 6 and 7).

ISAAC is the application-specific memristor CNN accelerator PUMA is
benchmarked against.  Its published metrics quantify the cost of PUMA's
programmability: PUMA gives up ~21% power efficiency and ~29% area
efficiency relative to ISAAC (Section 7.4.2) in exchange for running
everything rather than CNNs only (Table 7).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IsaacMetrics:
    name: str = "ISAAC"
    year: int = 2016
    technology: str = "CMOS(32nm)-Memristive"
    clock_mhz: float = 1200.0
    area_mm2: float = 85.4
    power_w: float = 65.8
    peak_tops: float = 69.53

    @property
    def peak_area_efficiency(self) -> float:
        return self.peak_tops / self.area_mm2

    @property
    def peak_power_efficiency(self) -> float:
        return self.peak_tops / self.power_w


ISAAC_METRICS = IsaacMetrics()


def isaac_programmability() -> dict[str, dict[str, str]]:
    """The Table 7 programmability comparison."""
    return {
        "PUMA": {
            "architecture": ("Instruction execution pipeline, flexible "
                             "inter-core synchronization, vector functional "
                             "unit, ROM-Embedded RAM"),
            "programmability": ("Compiler-generated instructions "
                                "(per tile & core)"),
            "workloads": ("CNN, MLP, LSTM, RNN, GAN, BM, RBM, SVM, "
                          "Linear Regression, Logistic Regression"),
        },
        "ISAAC": {
            "architecture": ("Application specific state machine, "
                             "sigmoid unit"),
            "programmability": ("Manually configured state machine "
                                "(per tile)"),
            "workloads": "CNN",
        },
    }
