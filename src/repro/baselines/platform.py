"""Platform catalog: the Table 4 systems with published specifications.

Peak throughput is single-precision FMA throughput (the paper ran Torch7
FP32 on CPUs/GPUs); memory bandwidth and TDP are vendor numbers.  Energy
coefficients follow standard technology estimates: DDR4 ~15 pJ/bit, GDDR5
~12 pJ/bit, HBM2 ~5 pJ/bit, and a per-FLOP core energy consistent with
each chip's peak power at peak throughput.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PlatformSpec:
    """A CPU/GPU baseline platform.

    Attributes:
        name: platform name as used in the figures.
        kind: ``"cpu"`` or ``"gpu"``.
        peak_gflops: peak FP32 throughput (GFLOP/s).
        mem_bandwidth_gbs: peak DRAM bandwidth (GB/s).
        dram_pj_per_byte: DRAM access energy (pJ/byte).
        flop_pj: dynamic energy per FLOP (pJ).
        tdp_w: board/package power at load.
        idle_fraction: fraction of TDP drawn while stalled on memory or
            launch overhead (static + uncore power).
        kernel_overhead_us: per-kernel launch + framework dispatch cost.
        lstm_step_overhead_us: additional per-layer-per-step framework
            cost of recurrent cells (the Torch7 rnn-style interpreter loop
            that clones modules and dispatches the unfused gate/cell
            kernels each time step — the dominant term in measured batch-1
            LSTM inference).
    """

    name: str
    kind: str
    peak_gflops: float
    mem_bandwidth_gbs: float
    dram_pj_per_byte: float
    flop_pj: float
    tdp_w: float
    idle_fraction: float = 0.35
    kernel_overhead_us: float = 3.0
    lstm_step_overhead_us: float = 300.0


# Dual-socket Xeon E5-2650v3: 2 x 10 cores x 2.3 GHz x 16 FLOP/cycle.
HASWELL = PlatformSpec(
    name="Haswell", kind="cpu",
    peak_gflops=736.0, mem_bandwidth_gbs=136.0,
    dram_pj_per_byte=120.0, flop_pj=60.0, tdp_w=210.0,
    idle_fraction=0.45, kernel_overhead_us=6.0,
    lstm_step_overhead_us=400.0,
)

# Dual-socket Xeon Platinum 8180: 2 x 28 cores x 2.5 GHz x 32 FLOP/cycle.
SKYLAKE = PlatformSpec(
    name="Skylake", kind="cpu",
    peak_gflops=4480.0, mem_bandwidth_gbs=238.0,
    dram_pj_per_byte=120.0, flop_pj=45.0, tdp_w=410.0,
    idle_fraction=0.45, kernel_overhead_us=6.0,
    lstm_step_overhead_us=400.0,
)

# Tesla K80, single GK210 (the paper uses one of the two GPUs).
KEPLER = PlatformSpec(
    name="Kepler", kind="gpu",
    peak_gflops=4370.0, mem_bandwidth_gbs=240.0,
    dram_pj_per_byte=96.0, flop_pj=25.0, tdp_w=150.0,
    idle_fraction=0.5, kernel_overhead_us=2.5,
    lstm_step_overhead_us=320.0,
)

# GeForce Titan X (Maxwell).
MAXWELL = PlatformSpec(
    name="Maxwell", kind="gpu",
    peak_gflops=6700.0, mem_bandwidth_gbs=336.0,
    dram_pj_per_byte=96.0, flop_pj=15.0, tdp_w=250.0,
    idle_fraction=0.5, kernel_overhead_us=2.0,
    lstm_step_overhead_us=300.0,
)

# Tesla P100 (Pascal, HBM2).
PASCAL = PlatformSpec(
    name="Pascal", kind="gpu",
    peak_gflops=10600.0, mem_bandwidth_gbs=732.0,
    dram_pj_per_byte=40.0, flop_pj=10.0, tdp_w=250.0,
    idle_fraction=0.5, kernel_overhead_us=1.5,
    lstm_step_overhead_us=300.0,
)

CPU_PLATFORMS = {p.name: p for p in (HASWELL, SKYLAKE)}
GPU_PLATFORMS = {p.name: p for p in (KEPLER, MAXWELL, PASCAL)}
PLATFORMS: dict[str, PlatformSpec] = {**CPU_PLATFORMS, **GPU_PLATFORMS}
