"""Google TPU v1 model (Table 6 comparison).

Published characteristics: 92 TOPS at 8-bit (23 TOPS scaled to 16-bit,
Table 6 footnote), 34 GB/s DDR3 weight memory, 28 nm, 700 MHz, <= 331 mm²,
~45 W.  The TPU streams weights from DRAM, so workloads without reuse are
bound by the 34 GB/s weight bandwidth — the reason its effective
area/power efficiency collapses on MLPs and LSTMs (Table 6's per-workload
rows) while PUMA's stays at peak.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.spec import (
    BYTES_PER_WORD,
    ConvLayer,
    DenseLayer,
    LstmLayer,
    WorkloadSpec,
)


@dataclass(frozen=True)
class TpuSpec:
    name: str = "TPU"
    peak_tops_16b: float = 23.0
    weight_bandwidth_gbs: float = 34.0
    area_mm2: float = 330.0
    power_w: float = 45.0
    best_batch: int = 128

    @property
    def peak_area_efficiency(self) -> float:
        return self.peak_tops_16b / self.area_mm2

    @property
    def peak_power_efficiency(self) -> float:
        return self.peak_tops_16b / self.power_w


TPU_SPEC = TpuSpec()

# Measured TPU utilization per workload class (Jouppi et al., ISCA'17,
# Table 3: MLP0 12.1%, LSTM0 3.7%, CNN0 78.2% of peak) — what the paper's
# Table 6 "best AE/PE" rows for the TPU derive from.
TPU_MEASURED_UTILIZATION = {"MLP": 0.121, "LSTM": 0.037, "CNN": 0.782}


def tpu_measured_efficiency(workload_class: str,
                            tpu: TpuSpec = TPU_SPEC) -> dict[str, float]:
    """Best-case efficiency from the TPU paper's measured utilization."""
    util = TPU_MEASURED_UTILIZATION[workload_class]
    tops = tpu.peak_tops_16b * util
    return {
        "tops": tops,
        "area_efficiency": tops / tpu.area_mm2,
        "power_efficiency": tops / tpu.power_w,
    }


def tpu_effective_tops(spec: WorkloadSpec, batch: int = 128,
                       tpu: TpuSpec = TPU_SPEC) -> float:
    """Achieved TOPS on a workload at a given batch size.

    Weight-stationary systolic execution: each layer's weights stream from
    DRAM once per batch; recurrent layers repeat per time step (weights
    re-stream each step because the 24 MiB on-chip buffer holds
    activations, not multi-hundred-MB weight sets).
    """
    bw = tpu.weight_bandwidth_gbs * 1e9
    peak = tpu.peak_tops_16b * 1e12
    recurrent = spec.dnn_type in ("DeepLSTM", "WideLSTM", "RNN")

    total_time = 0.0
    total_ops = 0.0
    for layer in spec.layers:
        if isinstance(layer, LstmLayer):
            invocations = spec.seq_len
            macs = layer.macs
        elif isinstance(layer, DenseLayer):
            invocations = spec.seq_len if recurrent else 1
            macs = layer.macs
        elif isinstance(layer, ConvLayer):
            invocations = 1
            macs = layer.macs
        else:
            continue
        ops = 2.0 * macs * batch
        weight_time = layer.params * BYTES_PER_WORD / bw
        compute_time = ops / peak
        total_time += invocations * max(weight_time, compute_time)
        total_ops += invocations * ops
    if total_time == 0:
        return 0.0
    return total_ops / total_time / 1e12


def tpu_best_efficiency(spec: WorkloadSpec, batch: int = 128,
                        tpu: TpuSpec = TPU_SPEC) -> dict[str, float]:
    """Best-batch area/power efficiency (the Table 6 per-workload rows)."""
    tops = tpu_effective_tops(spec, batch, tpu)
    return {
        "tops": tops,
        "area_efficiency": tops / tpu.area_mm2,
        "power_efficiency": tops / tpu.power_w,
    }
