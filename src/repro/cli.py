"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``report [EXHIBIT ...]`` — regenerate paper tables/figures (default all);
* ``run GRAPH.json --input name=val,val,...`` — import a JSON graph
  (see :mod:`repro.compiler.importer`), compile, simulate, print outputs
  and run statistics;
* ``disasm GRAPH.json`` — compile a graph and print the per-core/tile
  assembly listings;
* ``metrics`` — the Table 6 node metrics for the default configuration.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.figures.runner import EXHIBITS, run_all

    if not args.exhibits:
        run_all(stream=sys.stdout)
        return 0
    by_name = {name.lower().replace(" ", ""): module
               for name, module in EXHIBITS}
    for requested in args.exhibits:
        key = requested.lower().replace(" ", "").replace("_", "")
        module = by_name.get(key)
        if module is None:
            print(f"unknown exhibit {requested!r}; choose from: "
                  f"{', '.join(sorted(by_name))}", file=sys.stderr)
            return 2
        print(module.render())
        print()
    return 0


def _parse_inputs(pairs: list[str]) -> dict[str, np.ndarray]:
    inputs = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--input expects name=v1,v2,... got {pair!r}")
        name, values = pair.split("=", 1)
        inputs[name] = np.array([float(v) for v in values.split(",")])
    return inputs


def _compile_graph(path: str):
    from repro import compile_model, default_config
    from repro.compiler.importer import import_graph_file

    config = default_config()
    model = import_graph_file(path)
    return config, compile_model(model, config)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro import Simulator
    from repro.fixedpoint import FixedPointFormat

    fmt = FixedPointFormat()
    config, compiled = _compile_graph(args.graph)
    provided = _parse_inputs(args.input or [])
    rng = np.random.default_rng(args.seed)
    inputs = {}
    for name, (_tile, _addr, length) in \
            compiled.program.input_layout.items():
        if name in provided:
            if provided[name].size != length:
                raise SystemExit(
                    f"input {name!r} expects {length} values, got "
                    f"{provided[name].size}")
            inputs[name] = fmt.quantize(provided[name])
        else:
            inputs[name] = fmt.quantize(rng.normal(0, 0.3, size=length))
            print(f"(input {name!r} not provided; using random values)")
    sim = Simulator(config, compiled.program, seed=args.seed)
    outputs = sim.run(inputs)
    for name, values in outputs.items():
        print(f"{name} = {np.array2string(fmt.dequantize(values), precision=4)}")
    print()
    print(sim.stats.summary())
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    from repro.isa.assembler import disassemble

    _config, compiled = _compile_graph(args.graph)
    for tile_id, tile in sorted(compiled.program.tiles.items()):
        if tile.tile_instructions:
            print(f"; ---- tile {tile_id} control stream")
            print(disassemble(tile.tile_instructions, numbered=True))
        for core_id, core in sorted(tile.cores.items()):
            print(f"; ---- tile {tile_id} core {core_id}")
            print(disassemble(core.instructions, numbered=True))
    return 0


def _cmd_metrics(_args: argparse.Namespace) -> int:
    from repro.energy.area import node_metrics

    metrics = node_metrics()
    print(f"peak throughput : {metrics.peak_tops:.2f} TOPS/s")
    print(f"area            : {metrics.area_mm2:.1f} mm2")
    print(f"power           : {metrics.power_w:.1f} W")
    print(f"area efficiency : {metrics.tops_per_mm2:.3f} TOPS/s/mm2")
    print(f"power efficiency: {metrics.tops_per_w:.3f} TOPS/s/W")
    print(f"weight capacity : {metrics.weight_capacity_bytes / 2**20:.0f} MB")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PUMA reproduction: compile, simulate, and regenerate "
                    "the paper's results.")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="regenerate tables/figures")
    report.add_argument("exhibits", nargs="*",
                        help="e.g. table6 fig11 (default: all)")
    report.set_defaults(fn=_cmd_report)

    run = sub.add_parser("run", help="compile and simulate a JSON graph")
    run.add_argument("graph", help="path to the graph description (JSON)")
    run.add_argument("--input", action="append", metavar="NAME=V1,V2,...",
                     help="input values (repeatable)")
    run.add_argument("--seed", type=int, default=0)
    run.set_defaults(fn=_cmd_run)

    disasm = sub.add_parser("disasm",
                            help="compile a JSON graph and print assembly")
    disasm.add_argument("graph")
    disasm.set_defaults(fn=_cmd_disasm)

    metrics = sub.add_parser("metrics", help="Table 6 node metrics")
    metrics.set_defaults(fn=_cmd_metrics)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
