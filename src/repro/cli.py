"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``report [EXHIBIT ...]`` — regenerate paper tables/figures (default all);
* ``run GRAPH.json --input name=val,val,...`` — import a JSON graph
  (see :mod:`repro.compiler.importer`), compile through the
  :class:`~repro.engine.InferenceEngine`, simulate, and print the
  :class:`~repro.serve.RunResult` summary (float outputs + cycle/energy
  stats).  ``--batch-file FILE.json`` runs a whole request list as one
  SIMD-over-batch pass; ``--shards K`` fans it out across K engine
  replicas (bitwise-identical outputs, merged stats);
* ``serve GRAPH.json`` — demo of the async serving front-end: N
  concurrent clients stream through :class:`~repro.serve.PumaServer`
  and the batching counters are printed; ``--shards K`` splits each
  coalesced micro-batch across K replicas;
* ``warm GRAPH.json --artifact-dir DIR`` — pre-build the persistent
  artifact (compilation + programmed crossbars + execution tapes, see
  :mod:`repro.store`) so later ``run``/``serve`` invocations — separate
  processes — warm-start with ``--artifact-dir DIR``;
* ``fleet DEPLOYMENT.json`` — spin up a multi-process serving fleet
  (:mod:`repro.fleet`): N workers behind one HTTP front door, replay a
  deterministic bursty trace against it, spot-check the replies bitwise
  against a local engine, and print the load report + per-worker cache
  metrics;
* ``lint GRAPH.json`` — compile a graph and run the static verifier
  (:mod:`repro.analysis`); prints every diagnostic and exits non-zero
  when errors are found;
* ``disasm GRAPH.json`` — compile a graph and print the per-core/tile
  assembly listings;
* ``metrics`` — the Table 6 node metrics for the default configuration.

Exit codes follow one convention across every subcommand:

* ``0`` — clean;
* ``1`` — diagnostics or validation failure (lint errors, unknown or
  malformed inputs, unreadable graph/batch files);
* ``2`` — usage error (bad flag combinations, out-of-range options,
  unknown exhibit names; also argparse's own code for bad syntax).
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

EXIT_OK = 0
EXIT_FAILURE = 1   # diagnostics or validation failure
EXIT_USAGE = 2     # usage error


class CliError(Exception):
    """A user-facing CLI failure: message to stderr, exit with ``code``."""

    def __init__(self, message: str, code: int = EXIT_FAILURE) -> None:
        super().__init__(message)
        self.code = code


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.figures.runner import EXHIBITS, run_all

    if not args.exhibits:
        run_all(stream=sys.stdout)
        return EXIT_OK
    by_name = {name.lower().replace(" ", ""): module
               for name, module in EXHIBITS}
    for requested in args.exhibits:
        key = requested.lower().replace(" ", "").replace("_", "")
        module = by_name.get(key)
        if module is None:
            raise CliError(
                f"unknown exhibit {requested!r}; choose from: "
                f"{', '.join(sorted(by_name))}", EXIT_USAGE)
        print(module.render())
        print()
    return EXIT_OK


def _parse_inputs(pairs: list[str]) -> dict[str, np.ndarray]:
    inputs = {}
    for pair in pairs:
        if "=" not in pair:
            raise CliError(
                f"--input expects name=v1,v2,... got {pair!r}", EXIT_USAGE)
        name, values = pair.split("=", 1)
        try:
            inputs[name] = np.array([float(v) for v in values.split(",")])
        except ValueError:
            raise CliError(
                f"--input {name}: values must be numbers, got {values!r}",
                EXIT_USAGE) from None
    return inputs


def _import_graph(path: str):
    from repro.compiler.importer import GraphImportError, import_graph_file

    try:
        return import_graph_file(path)
    except (GraphImportError, OSError) as error:
        raise CliError(f"{path}: {error}") from error


def _build_engine(path: str, seed: int = 0, execution_mode: str = "auto",
                  artifact_dir: str | None = None):
    from repro import default_config
    from repro.engine import InferenceEngine

    return InferenceEngine(_import_graph(path), default_config(),
                           seed=seed, execution_mode=execution_mode,
                           artifact_dir=artifact_dir)


def _fill_missing_inputs(engine, provided: dict[str, np.ndarray],
                         seed: int) -> dict[str, np.ndarray] | None:
    """Complete a float request, randomizing absent inputs (with a note).

    Returns None (after printing to stderr) if a provided name does not
    exist in the compiled program — a typo'd name must fail loudly, not
    silently fall back to random values.
    """
    layout = engine.program.input_layout
    unknown = sorted(set(provided) - set(layout))
    if unknown:
        print(f"unknown input name(s): {', '.join(unknown)}; program "
              f"inputs are: {', '.join(sorted(layout))}", file=sys.stderr)
        return None
    rng = np.random.default_rng(seed)
    inputs = {}
    for name, (_tile, _addr, length) in layout.items():
        if name in provided:
            inputs[name] = provided[name]
        else:
            inputs[name] = rng.normal(0, 0.3, size=length)
            print(f"(input {name!r} not provided; using random values)")
    return inputs


def _cmd_run(args: argparse.Namespace) -> int:
    if args.batch_file and args.input:
        raise CliError(
            "--input and --batch-file are mutually exclusive: the batch "
            "file carries every request's inputs", EXIT_USAGE)
    if args.shards < 1:
        raise CliError("--shards must be >= 1", EXIT_USAGE)
    engine = _build_engine(args.graph, seed=args.seed,
                           execution_mode=args.execution_mode,
                           artifact_dir=args.artifact_dir)
    if args.batch_file:
        return _run_batch_file(engine, args.batch_file, args.shards)
    if args.shards > 1:
        raise CliError(
            "--shards applies to --batch-file runs (a single inference "
            "has one lane to shard)", EXIT_USAGE)
    provided = _parse_inputs(args.input or [])
    inputs = _fill_missing_inputs(engine, provided, args.seed)
    if inputs is None:
        return EXIT_FAILURE
    try:
        result = engine.predict(inputs)
    except ValueError as error:
        raise CliError(f"invalid input: {error}") from error
    print(result.summary())
    return EXIT_OK


def _run_batch_file(engine, path: str, shards: int = 1) -> int:
    """One SIMD-over-batch pass over a JSON list of requests.

    The file holds ``[{"x": [..], ...}, ...]`` — one object per request,
    float values, every request naming every model input.  With
    ``shards > 1`` the batch is fanned out across engine replicas
    (bitwise identical outputs; merged stats count cycles as the max over
    the concurrent shards).
    """
    try:
        with open(path) as handle:
            requests = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise CliError(f"{path}: {error}") from error
    if not isinstance(requests, list) or not requests or \
            not all(isinstance(req, dict) for req in requests):
        raise CliError(f"{path}: expected a non-empty JSON list of "
                       "{input name: [values]} objects")
    try:
        stacked = {
            name: np.stack([np.asarray(req[name], dtype=np.float64)
                            for req in requests])
            for name in requests[0]
        }
    except KeyError as missing:
        raise CliError(
            f"{path}: every request must name input {missing}") from None
    except (ValueError, TypeError) as error:
        raise CliError(
            f"{path}: malformed request values (every request must give "
            f"the same-length numeric lists): {error}") from error
    try:
        if shards > 1:
            from repro.serve import ShardedEngine

            with ShardedEngine(engine, num_shards=shards) as sharded:
                result = sharded.predict(stacked)
        else:
            result = engine.predict(stacked)
    except ValueError as error:
        raise CliError(f"invalid batch: {error}") from error
    for index in range(len(requests)):
        lane = result.lane(index)
        for name, values in lane.outputs.items():
            print(f"[{index}] {name} = "
                  f"{np.array2string(values, precision=4)}")
    print()
    if result.shard_stats is not None:
        print(f"sharded x{len(result.shard_stats)}: cycles below are the "
              f"max over the concurrent shards, energy the sum")
    print(f"batch {result.batch}: {result.cycles} cycles total, "
          f"{result.cycles_per_inference:.0f} cycles/inference, "
          f"{result.energy_per_inference_j * 1e9:.3f} nJ/inference")
    print(result.stats.summary())
    return EXIT_OK


def _cmd_serve(args: argparse.Namespace) -> int:
    """Headless serving demo: concurrent clients, dynamic batching."""
    import asyncio

    from repro.engine import compile_cache_info, tape_cache_info
    from repro.serve import PumaServer

    if args.shards < 1:
        raise CliError("--shards must be >= 1", EXIT_USAGE)
    engine = _build_engine(args.graph, seed=args.seed,
                           execution_mode=args.execution_mode,
                           artifact_dir=args.artifact_dir)
    layout = engine.program.input_layout
    rng = np.random.default_rng(args.seed)
    requests = [
        {name: rng.normal(0, 0.3, size=length)
         for name, (_t, _a, length) in layout.items()}
        for _ in range(args.requests)
    ]

    async def serve_all():
        async with PumaServer(engine, max_batch_size=args.max_batch,
                              batch_window_s=args.window,
                              num_shards=args.shards,
                              artifact_dir=args.artifact_dir) as server:
            results = await asyncio.gather(
                *(server.submit(request) for request in requests))
        return results, server.counters

    results, counters = asyncio.run(serve_all())
    for index, result in enumerate(results):
        for name in result:
            print(f"[{index}] {name} = "
                  f"{np.array2string(result.outputs[name], precision=4)}")
    print()
    print(counters.summary())
    print(f"compile cache: {compile_cache_info()}")
    print(f"tape cache: {tape_cache_info()}")
    if args.artifact_dir:
        from repro.store import store_info

        print(f"artifact store: {store_info()}")
    return EXIT_OK


def _cmd_warm(args: argparse.Namespace) -> int:
    """Pre-build the persistent artifact for a graph (cross-process warm).

    Compiles, programs the crossbars, records the batch-generic
    execution tape with timing stats derived for every requested batch
    size, and writes the artifact keyed by (model, config, crossbar
    model, seed) under ``--artifact-dir``.  A later ``run``/``serve`` in
    a brand-new process pointed at the same directory starts from that
    state instead of rebuilding it.
    """
    from repro.store import store_info

    batches = sorted(set(args.batch or [1]))
    if any(b < 1 for b in batches):
        raise CliError("--batch sizes must be >= 1", EXIT_USAGE)
    engine = _build_engine(args.graph, seed=args.seed,
                           artifact_dir=args.artifact_dir)
    engine.warm()
    for batch in batches:
        engine.warm(batch=batch)
    path = engine.save_artifacts()
    print(f"artifact: {path}")
    print(f"programmed states: {len(engine.compiled.programmed_states)}, "
          f"execution tapes: {len(engine.compiled.execution_tapes)} "
          f"(batch-generic; stats for batches "
          f"{', '.join(str(b) for b in batches)})")
    print(f"artifact store: {store_info()}")
    return EXIT_OK


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Serving-fleet demo: N workers, one front door, a bursty trace.

    Loads a deployment (a JSON list of fleet model specs), spawns the
    fleet, replays a deterministic bursty trace through the HTTP front
    door, and prints the load report plus per-worker metrics.  One
    request per model is spot-checked **bitwise** against a local
    single-engine build — the fleet-level guarantee of
    ``docs/guarantees.md``, demonstrated from the command line.
    """
    import asyncio
    import tempfile

    from repro.fleet import (
        FaultPlan,
        FaultPlanError,
        FleetModelError,
        FleetModelSpec,
        PumaFleet,
        build_engine,
        bursty_trace,
        default_inputs_builder,
        run_trace,
    )

    if args.workers < 1:
        raise CliError("--workers must be >= 1", EXIT_USAGE)
    if args.requests < 1:
        raise CliError("--requests must be >= 1", EXIT_USAGE)
    if args.rate <= 0:
        raise CliError("--rate must be positive", EXIT_USAGE)
    fault_plan = None
    if args.chaos:
        try:
            fault_plan = FaultPlan.load(args.chaos)
        except (OSError, json.JSONDecodeError, FaultPlanError) as error:
            raise CliError(f"{args.chaos}: {error}") from error
    try:
        with open(args.deployment, encoding="utf-8") as handle:
            described = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise CliError(f"{args.deployment}: {error}") from error
    if not isinstance(described, list) or not described:
        raise CliError(f"{args.deployment}: expected a non-empty JSON "
                       "list of fleet model specs")
    try:
        specs = [FleetModelSpec.from_dict(entry) for entry in described]
    except FleetModelError as error:
        raise CliError(f"{args.deployment}: {error}") from error

    # Local single-engine references: input layouts for the trace, and
    # the bitwise ground truth for the spot check.
    engines = {spec.name: build_engine(spec) for spec in specs}
    layouts = {
        name: {input_name: length for input_name, (_t, _a, length)
               in engine.program.input_layout.items()}
        for name, engine in engines.items()}
    trace = bursty_trace([spec.name for spec in specs], args.requests,
                         base_rate_rps=args.rate, seed=args.seed)
    inputs_for = default_inputs_builder(layouts)

    async def drive(work_dir: str):
        async with PumaFleet(specs, num_workers=args.workers,
                             work_dir=work_dir,
                             max_batch_size=args.max_batch,
                             fault_plan=fault_plan) as fleet:
            print(f"fleet up: {args.workers} worker(s) behind "
                  f"{fleet.url}")
            report = await run_trace(fleet.host, fleet.http.port, trace,
                                     inputs_for,
                                     time_scale=args.time_scale)
            checks = {}
            for spec in specs:
                arrival = next(a for a in trace if a.model == spec.name)
                reply = await fleet.predict(spec.name,
                                            inputs_for(arrival))
                reference = engines[spec.name].predict(
                    {name: np.asarray(values) for name, values
                     in inputs_for(arrival).items()})
                checks[spec.name] = reply["words"] == {
                    name: reference[name].tolist() for name in reference}
            metrics = await fleet.metrics()
            return report, checks, metrics

    with tempfile.TemporaryDirectory(prefix="repro-fleet-") as scratch:
        report, checks, metrics = asyncio.run(
            drive(args.work_dir or scratch))

    print(report.summary())
    for model, entry in sorted(report.to_dict()["per_model"].items()):
        print(f"  {model}: {entry['requests']} requests, "
              f"p50 {entry['p50_ms']:.1f} ms, p99 {entry['p99_ms']:.1f} ms")
    for worker_id, entry in sorted(metrics["workers"].items()):
        detail = entry.get("metrics")
        if not detail:
            continue
        hosted = ", ".join(
            f"{m['name']} ({m['source']})"
            for m in detail["models"].values())
        store = detail["network_store"]
        print(f"  {worker_id}: {hosted}; store pulls "
              f"{store['pulls']}, pushes {store['pushes']}")
    for model, matched in sorted(checks.items()):
        status = "bitwise == local engine" if matched else "MISMATCH"
        print(f"  {model}: {status}")
    if not all(checks.values()):
        raise CliError("fleet replies diverged from the local engine")
    if fault_plan is not None:
        # Under chaos, typed rejections are expected — what must never
        # happen is a silent failure (hang or dropped connection at the
        # front door) or an untyped status.
        if report.timeouts or report.transport_errors:
            raise CliError(
                f"fleet went silent under chaos: {report.timeouts} "
                f"timeout(s), {report.transport_errors} transport "
                f"error(s): {report.errors[:3]}")
        untyped = set(report.statuses) - {429, 503, 504}
        if untyped:
            raise CliError(f"untyped failure status(es) under chaos: "
                           f"{sorted(untyped)}: {report.errors[:3]}")
        if report.failed:
            print(f"  chaos: {report.failed} typed rejection(s) "
                  f"({report.to_dict()['statuses']}) — allowed")
    elif report.failed:
        raise CliError(f"{report.failed} request(s) failed: "
                       f"{report.errors[:3]}")
    return EXIT_OK


def _cmd_lint(args: argparse.Namespace) -> int:
    """Compile a graph and run the static verifier over the program.

    Prints every diagnostic (check id, severity, tile/core/pc location,
    message) and the summary line.  Exit code 0 when no error-severity
    diagnostics were found, 1 otherwise; ``--strict`` also fails on
    warnings.
    """
    from repro import compile_model, default_config
    from repro.analysis import analyze_program

    config = default_config()
    compiled = compile_model(_import_graph(args.graph), config)
    report = analyze_program(compiled.program, config)
    print(f"{args.graph}: {report.program_name} "
          f"({compiled.program.total_instructions()} instructions)")
    if report.diagnostics:
        print(report.render())
    else:
        print(report.summary())
    clean_bill = report.clean_bill_digest()
    if clean_bill is not None:
        print(f"clean bill: {clean_bill[:16]} "
              f"(analyzer v{_analyzer_version()})")
    if report.has_errors:
        return EXIT_FAILURE
    if args.strict and report.warnings:
        return EXIT_FAILURE
    return EXIT_OK


def _analyzer_version() -> int:
    from repro.analysis import ANALYZER_VERSION

    return ANALYZER_VERSION


def _cmd_disasm(args: argparse.Namespace) -> int:
    from repro.isa.assembler import disassemble

    engine = _build_engine(args.graph)
    for tile_id, tile in sorted(engine.compiled.program.tiles.items()):
        if tile.tile_instructions:
            print(f"; ---- tile {tile_id} control stream")
            print(disassemble(tile.tile_instructions, numbered=True))
        for core_id, core in sorted(tile.cores.items()):
            print(f"; ---- tile {tile_id} core {core_id}")
            print(disassemble(core.instructions, numbered=True))
    return EXIT_OK


def _cmd_metrics(_args: argparse.Namespace) -> int:
    from repro.energy.area import node_metrics

    metrics = node_metrics()
    print(f"peak throughput : {metrics.peak_tops:.2f} TOPS/s")
    print(f"area            : {metrics.area_mm2:.1f} mm2")
    print(f"power           : {metrics.power_w:.1f} W")
    print(f"area efficiency : {metrics.tops_per_mm2:.3f} TOPS/s/mm2")
    print(f"power efficiency: {metrics.tops_per_w:.3f} TOPS/s/W")
    print(f"weight capacity : {metrics.weight_capacity_bytes / 2**20:.0f} MB")
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PUMA reproduction: compile, simulate, and regenerate "
                    "the paper's results.")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="regenerate tables/figures")
    report.add_argument("exhibits", nargs="*",
                        help="e.g. table6 fig11 (default: all)")
    report.set_defaults(fn=_cmd_report)

    run = sub.add_parser("run", help="compile and simulate a JSON graph")
    run.add_argument("graph", help="path to the graph description (JSON)")
    run.add_argument("--input", action="append", metavar="NAME=V1,V2,...",
                     help="input values (repeatable)")
    run.add_argument("--batch-file", metavar="REQUESTS.json",
                     help="JSON list of {input: [values]} requests, run "
                          "as one SIMD-over-batch pass")
    run.add_argument("--shards", type=int, default=1,
                     help="fan a --batch-file run out across N engine "
                          "replicas (default 1: single engine)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--execution-mode", default="auto",
                     choices=("auto", "replay", "interpret"),
                     help="trace-replay fast path on repeated runs (auto, "
                          "the default), strict replay, or always the "
                          "event-driven interpreter")
    run.add_argument("--artifact-dir", metavar="DIR",
                     help="persistent artifact store: warm-start from a "
                          "'repro warm' artifact when one matches")
    run.set_defaults(fn=_cmd_run)

    warm = sub.add_parser(
        "warm", help="pre-build the persistent artifact for a graph")
    warm.add_argument("graph", help="path to the graph description (JSON)")
    warm.add_argument("--artifact-dir", metavar="DIR", required=True,
                      help="directory the artifact is written under "
                           "(keyed by model/config/crossbar/seed)")
    warm.add_argument("--batch", type=int, action="append", metavar="N",
                      help="record an execution tape for this batch size "
                           "(repeatable; default: 1)")
    warm.add_argument("--seed", type=int, default=0)
    warm.set_defaults(fn=_cmd_warm)

    serve = sub.add_parser(
        "serve", help="async serving demo (queue + dynamic batching)")
    serve.add_argument("graph", help="path to the graph description (JSON)")
    serve.add_argument("--requests", type=int, default=16,
                       help="number of concurrent clients (default 16)")
    serve.add_argument("--max-batch", type=int, default=8,
                       help="dynamic batching limit (default 8)")
    serve.add_argument("--window", type=float, default=0.05,
                       help="batching window in seconds (default 0.05)")
    serve.add_argument("--shards", type=int, default=1,
                       help="fan each coalesced micro-batch out across N "
                            "engine replicas (default 1)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--execution-mode", default="auto",
                       choices=("auto", "replay", "interpret"),
                       help="trace-replay fast path on repeated batches "
                            "(auto, the default), strict replay, or always "
                            "the event-driven interpreter")
    serve.add_argument("--artifact-dir", metavar="DIR",
                       help="persistent artifact store: warm-start from "
                            "(and refresh) a 'repro warm' artifact")
    serve.set_defaults(fn=_cmd_serve)

    fleet = sub.add_parser(
        "fleet", help="multi-worker serving fleet demo (trace replay)")
    fleet.add_argument("deployment",
                       help="JSON list of fleet model specs, e.g. "
                            '[{"name": "mlp", "kind": "mlp", '
                            '"params": {"dims": [32, 24, 10]}}]')
    fleet.add_argument("--workers", type=int, default=2,
                       help="worker processes to spawn (default 2)")
    fleet.add_argument("--requests", type=int, default=32,
                       help="trace length in requests (default 32)")
    fleet.add_argument("--rate", type=float, default=50.0,
                       help="base arrival rate in req/s (default 50)")
    fleet.add_argument("--time-scale", type=float, default=1.0,
                       help="multiply trace offsets (0 = fire all at "
                            "once; default 1.0 = real time)")
    fleet.add_argument("--max-batch", type=int, default=8,
                       help="per-worker dynamic batching limit (default 8)")
    fleet.add_argument("--work-dir", metavar="DIR",
                       help="fleet scratch + artifact blob store "
                            "(default: a temporary directory)")
    fleet.add_argument("--chaos", metavar="PLAN.json", default=None,
                       help="arm a deterministic fault plan "
                            "(FaultPlan JSON); typed rejections are "
                            "then allowed, silent failures still fatal")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.set_defaults(fn=_cmd_fleet)

    lint = sub.add_parser(
        "lint", help="compile a JSON graph and run the static verifier")
    lint.add_argument("graph", help="path to the graph description (JSON)")
    lint.add_argument("--strict", action="store_true",
                      help="also exit non-zero on warnings")
    lint.set_defaults(fn=_cmd_lint)

    disasm = sub.add_parser("disasm",
                            help="compile a JSON graph and print assembly")
    disasm.add_argument("graph")
    disasm.set_defaults(fn=_cmd_disasm)

    metrics = sub.add_parser("metrics", help="Table 6 node metrics")
    metrics.set_defaults(fn=_cmd_metrics)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except CliError as error:
        print(error, file=sys.stderr)
        return error.code


if __name__ == "__main__":
    raise SystemExit(main())
