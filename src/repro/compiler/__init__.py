"""The PUMA compiler (Section 5).

Translates models written against the high-level programming interface
(Figure 7) into per-core and per-tile PUMA ISA streams:

1. the frontend builds a computation graph (:mod:`repro.compiler.frontend`);
2. tensors are tiled into MVMU-sized 2-D tiles and the graph is lowered to
   segment-level tasks (:mod:`repro.compiler.tiling`);
3. hierarchical graph partitioning places tasks onto MVMUs, cores, and
   tiles (:mod:`repro.compiler.partition`);
4. instruction scheduling linearizes the whole graph at once in reverse
   postorder — low register pressure, deadlock-free — and coalesces
   independent MVMs (:mod:`repro.compiler.schedule`,
   :mod:`repro.compiler.coalesce`);
5. code generation with integrated register allocation and spilling emits
   the final ISA (:mod:`repro.compiler.codegen`,
   :mod:`repro.compiler.regalloc`).

Convolutional networks additionally use the loop-based lowering in
:mod:`repro.compiler.cnn`.
"""

from repro.compiler.frontend import (
    ConstMatrix,
    InVector,
    Model,
    OutVector,
    VectorExpr,
    binarize,
    concat,
    exp,
    log,
    log_softmax,
    maximum,
    minimum,
    random_like,
    relu,
    sigmoid,
    tanh,
)
from repro.compiler.options import CompilerOptions
from repro.compiler.compile import CompiledModel, compile_model

__all__ = [
    "Model",
    "InVector",
    "OutVector",
    "ConstMatrix",
    "VectorExpr",
    "relu",
    "sigmoid",
    "tanh",
    "exp",
    "log",
    "log_softmax",
    "maximum",
    "minimum",
    "concat",
    "random_like",
    "binarize",
    "CompilerOptions",
    "CompiledModel",
    "compile_model",
]
