"""Loop-based CNN lowering (Sections 2.3, 3.2.3, 5).

Convolutional layers iterate a sliding window over the input; representing
every position as straight-line code would bloat the instruction memory, so
this lowering emits *loops* — the control-flow instructions (``jmp``,
``brn``) and scalar address arithmetic (``alu-int``) whose presence in CNN
code Figure 4 shows.

Layout conventions:

* feature maps are stored position-major: ``map[h][w][ch]`` flattened so a
  conv window row is ``kernel * channels`` contiguous words;
* each conv layer runs on one core, its window split across that core's
  MVMUs in whole window-row chunks;
* the loop runs over output rows (scalar counter + ``brn``); positions
  within a row are unrolled, giving static per-position operands;
* with ``input_shuffle`` enabled, XbarIn holds per-window-row circular
  buffers: only the new column slice is loaded per position and the MVM's
  filter/stride operands rotate the rows logically (Section 3.2.3) —
  disabling it (the Table 8 ablation) reloads full window rows instead;
* pooling runs on the preceding layer's core with wide vector MAX ops;
* the dense tail uses one MVMU per weight tile, coalesced per core, with
  partial sums reduced through shared memory.

All inter-layer feature maps live in tile shared memory with persistent
attribute counts: words become valid when the producing layer stores them,
so consuming layers' loads naturally block until the data exists — the
layers pipeline through the tile at row granularity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.arch.config import PumaConfig
from repro.isa import instruction as isa
from repro.isa.opcodes import AluOp, BrnOp
from repro.isa.program import CoreProgram, NodeProgram
from repro.tile.attribute_buffer import PERSISTENT_COUNT
from repro.workloads.cnn import CnnSpec
from repro.workloads.spec import ConvLayer, DenseLayer, PoolLayer


class CnnCompileError(RuntimeError):
    """The CNN spec cannot be lowered onto the configured hardware."""


@dataclass
class CnnWeights:
    """Randomly initialized parameters for a :class:`CnnSpec`."""

    conv_kernels: dict[int, np.ndarray] = field(default_factory=dict)
    conv_biases: dict[int, np.ndarray] = field(default_factory=dict)
    dense_weights: dict[int, np.ndarray] = field(default_factory=dict)
    dense_biases: dict[int, np.ndarray] = field(default_factory=dict)


def init_weights(spec: CnnSpec) -> CnnWeights:
    """Deterministic random parameters shared by codegen and reference."""
    rng = np.random.default_rng(spec.seed)
    weights = CnnWeights()
    for idx, layer in enumerate(spec.layers):
        if isinstance(layer, ConvLayer):
            fan_in = layer.window
            weights.conv_kernels[idx] = rng.normal(
                0, 1.0 / np.sqrt(fan_in),
                size=(layer.window, layer.out_channels))
            weights.conv_biases[idx] = rng.normal(
                0, 0.05, size=layer.out_channels)
        elif isinstance(layer, DenseLayer):
            weights.dense_weights[idx] = rng.normal(
                0, 1.0 / np.sqrt(layer.in_features),
                size=(layer.in_features, layer.out_features))
            weights.dense_biases[idx] = rng.normal(
                0, 0.05, size=layer.out_features)
    return weights


def cnn_reference(spec: CnnSpec, image: np.ndarray) -> np.ndarray:
    """Float reference of the compiled CNN (same weights, same layouts).

    Args:
        image: ``(in_h, in_w, in_channels)`` input (position-major).
    """
    weights = init_weights(spec)
    x = np.asarray(image, dtype=np.float64)
    for idx, layer in enumerate(spec.layers):
        if isinstance(layer, ConvLayer):
            if layer.padding:
                raise CnnCompileError("padding is not supported by the "
                                      "loop lowering")
            h, w = layer.out_h, layer.out_w
            k, c = layer.kernel, layer.in_channels
            out = np.zeros((h, w, layer.out_channels))
            kern = weights.conv_kernels[idx]
            for r in range(h):
                for col in range(w):
                    window = x[r * layer.stride:r * layer.stride + k,
                               col * layer.stride:col * layer.stride + k, :]
                    out[r, col] = window.reshape(k * k * c) @ kern
            out += weights.conv_biases[idx]
            x = np.maximum(out, 0) if layer.activation == "relu" else out
        elif isinstance(layer, PoolLayer):
            h, w = layer.out_h, layer.out_w
            out = np.zeros((h, w, layer.channels))
            for r in range(h):
                for col in range(w):
                    window = x[r * layer.stride:r * layer.stride + layer.size,
                               col * layer.stride:col * layer.stride
                               + layer.size, :]
                    out[r, col] = window.max(axis=(0, 1))
            x = out
        elif isinstance(layer, DenseLayer):
            flat = x.reshape(-1)
            x = flat @ weights.dense_weights[idx] + weights.dense_biases[idx]
            if layer.activation == "relu":
                x = np.maximum(x, 0)
        else:
            raise CnnCompileError(f"unsupported layer {layer!r}")
    return np.asarray(x, dtype=np.float64).reshape(-1)


@dataclass
class CnnCompiled:
    """The compiled CNN program plus layer placement info."""

    program: NodeProgram
    spec: CnnSpec
    loads_emitted: int = 0
    load_words_emitted: int = 0
    mvm_instructions: int = 0
    # Engine-managed caches, mirroring CompiledModel: serving a CNN
    # compilation through InferenceEngine.from_compiled() reuses crossbar
    # programming and execution tapes exactly like the generic backend's
    # artifacts (from_compiled previously crashed on the programmed-state
    # path because these slots were missing).
    programmed_states: dict = field(
        default_factory=dict, repr=False, compare=False)
    execution_tapes: dict = field(
        default_factory=dict, repr=False, compare=False)


class _CoreEmitter:
    """Manual instruction emission onto one core with bump registers."""

    def __init__(self, prog: CoreProgram, config: PumaConfig) -> None:
        self.prog = prog
        self.config = config.core
        self._next_gpr = self.config.general_base
        self._limit = self.config.general_base + self.config.num_general_registers

    def gpr(self, width: int) -> int:
        """Reserve ``width`` general registers for the core's lifetime."""
        base = self._next_gpr
        if base + width > self._limit:
            raise CnnCompileError(
                f"core register file exhausted ({width} more words needed)")
        self._next_gpr += width
        return base

    def emit(self, instr: isa.Instruction) -> None:
        self.prog.append(instr)

    @property
    def pc(self) -> int:
        return len(self.prog.instructions)


class CnnCompiler:
    """Compiles a :class:`CnnSpec` into a single-tile NodeProgram."""

    def __init__(self, spec: CnnSpec, config: PumaConfig | None = None,
                 input_shuffle: bool = True) -> None:
        self.spec = spec
        self.config = config if config is not None else PumaConfig()
        self.input_shuffle = input_shuffle
        self.weights = init_weights(spec)
        self.fmt = self.config.core.fixed_point
        self.program = NodeProgram(name=spec.name)
        self.tile = self.program.tile(0)
        self._next_mem = 0
        self._next_core = 0
        self.result = CnnCompiled(self.program, spec)

    # -- resource helpers ---------------------------------------------------

    def _alloc_mem(self, words: int) -> int:
        base = self._next_mem
        if base + words > self.config.tile.shared_memory_words:
            raise CnnCompileError("tile shared memory exhausted")
        self._next_mem += words
        return base

    def _new_core(self) -> tuple[int, _CoreEmitter]:
        core_id = self._next_core
        if core_id >= self.config.tile.num_cores:
            raise CnnCompileError(
                f"CNN needs more than {self.config.tile.num_cores} cores; "
                f"multi-tile CNN lowering is not implemented")
        self._next_core += 1
        return core_id, _CoreEmitter(self.tile.core(core_id), self.config)

    def _add_const(self, values: np.ndarray) -> int:
        addr = self._alloc_mem(values.size)
        self.program.const_memory.setdefault(0, []).append(
            (addr, self.fmt.quantize(values)))
        return addr

    # -- top level ------------------------------------------------------------

    def compile(self) -> CnnCompiled:
        spec = self.spec
        in_words = spec.in_h * spec.in_w * spec.in_channels
        image_addr = self._alloc_mem(in_words)
        self.program.input_layout["image"] = (0, image_addr, in_words)

        cur_addr = image_addr
        cur_shape = (spec.in_h, spec.in_w, spec.in_channels)
        emitter: _CoreEmitter | None = None
        for idx, layer in enumerate(spec.layers):
            if isinstance(layer, ConvLayer):
                core_id, emitter = self._new_core()
                out_words = layer.out_h * layer.out_w * layer.out_channels
                out_addr = self._alloc_mem(out_words)
                self._emit_conv(emitter, core_id, idx, layer, cur_addr,
                                out_addr)
                cur_addr = out_addr
                cur_shape = (layer.out_h, layer.out_w, layer.out_channels)
            elif isinstance(layer, PoolLayer):
                if emitter is None:
                    _, emitter = self._new_core()
                out_words = layer.out_h * layer.out_w * layer.channels
                out_addr = self._alloc_mem(out_words)
                self._emit_pool(emitter, layer, cur_addr, out_addr)
                cur_addr = out_addr
                cur_shape = (layer.out_h, layer.out_w, layer.channels)
            elif isinstance(layer, DenseLayer):
                cur_addr = self._emit_dense(idx, layer, cur_addr)
                cur_shape = (1, 1, layer.out_features)
            else:
                raise CnnCompileError(f"unsupported layer {layer!r}")

        out_words = cur_shape[0] * cur_shape[1] * cur_shape[2]
        self.program.output_layout["out"] = (0, cur_addr, out_words)
        for core_prog in self.tile.cores.values():
            core_prog.append(isa.hlt())
        return self.result

    # -- conv -----------------------------------------------------------------

    def _conv_chunk_plan(self, layer: ConvLayer) -> list[list[int]]:
        """Assign window-row chunks (length kernel*in_channels) to MVMUs."""
        dim = self.config.core.mvmu_dim
        chunk_len = layer.kernel * layer.in_channels
        if chunk_len > dim:
            raise CnnCompileError(
                f"window row of {chunk_len} words exceeds the "
                f"{dim}-row MVMU")
        per_mvmu = dim // chunk_len
        chunks = list(range(layer.kernel))
        plan = [chunks[i:i + per_mvmu]
                for i in range(0, layer.kernel, per_mvmu)]
        if len(plan) > self.config.core.num_mvmus:
            raise CnnCompileError(
                f"conv window needs {len(plan)} MVMUs but a core has "
                f"{self.config.core.num_mvmus}")
        return plan

    def _conv_weight_blocks(self, layer: ConvLayer, kernel: np.ndarray,
                            plan: list[list[int]]) -> list[np.ndarray]:
        """Per-MVMU weight tiles matching the chunked XbarIn layout."""
        dim = self.config.core.mvmu_dim
        chunk_len = layer.kernel * layer.in_channels
        blocks = []
        for chunks in plan:
            block = np.zeros((dim, dim), dtype=np.int64)
            for slot, chunk in enumerate(chunks):
                rows = self.fmt.quantize(
                    kernel[chunk * chunk_len:(chunk + 1) * chunk_len, :])
                base = slot * chunk_len
                block[base:base + chunk_len, :layer.out_channels] = rows
            blocks.append(block)
        return blocks

    def _emit_conv(self, em: _CoreEmitter, core_id: int, idx: int,
                   layer: ConvLayer, in_addr: int, out_addr: int) -> None:
        if layer.padding:
            raise CnnCompileError("padded convolutions are not lowered")
        c = layer.in_channels
        k = layer.kernel
        row_words = layer.in_w * c
        out_row_words = layer.out_w * layer.out_channels
        plan = self._conv_chunk_plan(layer)
        blocks = self._conv_weight_blocks(
            layer, self.weights.conv_kernels[idx], plan)
        for mvmu, block in enumerate(blocks):
            self.program.weights[(0, core_id, mvmu)] = block
        mask = sum(1 << m for m in range(len(plan)))

        bias_addr = self._add_const(self.weights.conv_biases[idx])
        bias = em.gpr(layer.out_channels)
        acc = em.gpr(layer.out_channels)
        row = em.gpr(1)
        row_limit = em.gpr(1)
        in_base = em.gpr(1)
        out_base = em.gpr(1)
        in_pos = em.gpr(1)
        out_pos = em.gpr(1)
        block = em.gpr(1)
        block_limit = em.gpr(1)

        em.emit(isa.load(bias, bias_addr, vec_width=layer.out_channels)
                .with_comment(f"conv{idx} bias"))
        em.emit(isa.set_(row, 0))
        em.emit(isa.set_(row_limit, layer.out_h))
        em.emit(isa.set_(in_base, in_addr))
        em.emit(isa.set_(out_base, out_addr))

        c = layer.in_channels
        k = layer.kernel
        out_ch = layer.out_channels
        use_shuffle = self.input_shuffle and layer.stride == 1

        row_top = em.pc
        if use_shuffle and layer.out_w > k:
            # Peel block 0: full reload at col 0, steady cols 1..k-1, all
            # addressed off in_base with static offsets.
            self._emit_full_position(em, layer, plan, mask, in_base, 0,
                                     out_base, 0, bias, acc, shuffled=True)
            for j in range(1, min(k, layer.out_w)):
                self._emit_steady_position(em, layer, plan, mask, in_base,
                                           (j + k - 1) * c, j, out_base,
                                           j * out_ch, bias, acc)
            # Column-block loop: each iteration handles k steady positions.
            # The body executes before the backward branch (do-while), so
            # the loop is emitted only when at least one full block beyond
            # the peeled one exists.
            num_blocks = layer.out_w // k
            if num_blocks > 1:
                em.emit(isa.alu_int(AluOp.ADD, in_pos, in_base, imm=k * c,
                                    imm_mode=True))
                em.emit(isa.alu_int(AluOp.ADD, out_pos, out_base,
                                    imm=k * out_ch, imm_mode=True))
                em.emit(isa.set_(block, 1))
                em.emit(isa.set_(block_limit, num_blocks))
                col_top = em.pc
                for j in range(k):
                    # col = block*k + j; slot/rotation depend on j only.
                    self._emit_steady_position(em, layer, plan, mask, in_pos,
                                               (j + k - 1) * c, j, out_pos,
                                               j * out_ch, bias, acc)
                em.emit(isa.alu_int(AluOp.ADD, in_pos, in_pos, imm=k * c,
                                    imm_mode=True))
                em.emit(isa.alu_int(AluOp.ADD, out_pos, out_pos,
                                    imm=k * out_ch, imm_mode=True))
                em.emit(isa.alu_int(AluOp.ADD, block, block, imm=1,
                                    imm_mode=True))
                em.emit(isa.brn(BrnOp.LT, block, block_limit, col_top)
                        .with_comment(f"conv{idx} column-block loop"))
            # Remainder columns: full reloads, shuffle-free.
            for col in range(num_blocks * k, layer.out_w):
                self._emit_full_position(em, layer, plan, mask, in_base,
                                         col * c, out_base, col * out_ch,
                                         bias, acc, shuffled=False)
        else:
            # One position per column-loop iteration, full reload each time.
            em.emit(isa.alu_int(AluOp.ADD, in_pos, in_base, imm=0,
                                imm_mode=True))
            em.emit(isa.alu_int(AluOp.ADD, out_pos, out_base, imm=0,
                                imm_mode=True))
            em.emit(isa.set_(block, 0))
            em.emit(isa.set_(block_limit, layer.out_w))
            col_top = em.pc
            self._emit_full_position(em, layer, plan, mask, in_pos, 0,
                                     out_pos, 0, bias, acc, shuffled=False)
            em.emit(isa.alu_int(AluOp.ADD, in_pos, in_pos,
                                imm=layer.stride * c, imm_mode=True))
            em.emit(isa.alu_int(AluOp.ADD, out_pos, out_pos, imm=out_ch,
                                imm_mode=True))
            em.emit(isa.alu_int(AluOp.ADD, block, block, imm=1,
                                imm_mode=True))
            em.emit(isa.brn(BrnOp.LT, block, block_limit, col_top)
                    .with_comment(f"conv{idx} column loop"))

        em.emit(isa.alu_int(AluOp.ADD, row, row, imm=1, imm_mode=True))
        em.emit(isa.alu_int(AluOp.ADD, in_base, in_base,
                            imm=layer.stride * row_words, imm_mode=True))
        em.emit(isa.alu_int(AluOp.ADD, out_base, out_base,
                            imm=out_row_words, imm_mode=True))
        em.emit(isa.brn(BrnOp.LT, row, row_limit, row_top)
                .with_comment(f"conv{idx} row loop"))

    def _emit_full_position(self, em: _CoreEmitter, layer: ConvLayer,
                            plan: list[list[int]], mask: int, addr_reg: int,
                            col_words: int, out_reg: int, out_off: int,
                            bias: int, acc: int, shuffled: bool) -> None:
        """One window position with a full window reload.

        Loads land in natural chunk order; when ``shuffled``, the position's
        column is a multiple of the kernel size, so natural order satisfies
        the circular-buffer invariant with rotation 0.
        """
        c = layer.in_channels
        chunk_len = layer.kernel * c
        row_words = layer.in_w * c
        cfg = self.config.core
        for m, chunks in enumerate(plan):
            xbase = cfg.xbar_in_base(m)
            for s, chunk in enumerate(chunks):
                em.emit(isa.load(xbase + s * chunk_len,
                                 chunk * row_words + col_words,
                                 vec_width=chunk_len,
                                 addr_reg=addr_reg, reg_indirect=True))
                self.result.loads_emitted += 1
                self.result.load_words_emitted += chunk_len
        if shuffled:
            em.emit(isa.mvm(mask, filter=chunk_len, stride=0))
        else:
            em.emit(isa.mvm(mask))
        self.result.mvm_instructions += 1
        self._emit_reduce_store(em, layer, plan, bias, acc, out_reg, out_off)

    def _emit_steady_position(self, em: _CoreEmitter, layer: ConvLayer,
                              plan: list[list[int]], mask: int,
                              addr_reg: int, newcol_words: int, phase: int,
                              out_reg: int, out_off: int,
                              bias: int, acc: int) -> None:
        """One sliding position: load only the new column slice per window
        row into the circular-buffer slot, rotate via filter/stride."""
        c = layer.in_channels
        k = layer.kernel
        chunk_len = k * c
        row_words = layer.in_w * c
        cfg = self.config.core
        slot = (phase + k - 1) % k
        for m, chunks in enumerate(plan):
            xbase = cfg.xbar_in_base(m)
            for s, chunk in enumerate(chunks):
                em.emit(isa.load(xbase + s * chunk_len + slot * c,
                                 chunk * row_words + newcol_words,
                                 vec_width=c,
                                 addr_reg=addr_reg, reg_indirect=True))
                self.result.loads_emitted += 1
                self.result.load_words_emitted += c
        em.emit(isa.mvm(mask, filter=chunk_len, stride=phase * c))
        self.result.mvm_instructions += 1
        self._emit_reduce_store(em, layer, plan, bias, acc, out_reg, out_off)

    def _emit_reduce_store(self, em: _CoreEmitter, layer: ConvLayer,
                           plan: list[list[int]], bias: int, acc: int,
                           out_reg: int, out_off: int) -> None:
        """Reduce MVMU partials, add bias, apply ReLU, store the pixel."""
        cfg = self.config.core
        out_ch = layer.out_channels
        first_out = cfg.xbar_out_base(0)
        if len(plan) == 1:
            em.emit(isa.alu(AluOp.ADD, acc, first_out, bias,
                            vec_width=out_ch))
        else:
            em.emit(isa.alu(AluOp.ADD, acc, first_out,
                            cfg.xbar_out_base(1), vec_width=out_ch))
            for m in range(2, len(plan)):
                em.emit(isa.alu(AluOp.ADD, acc, acc, cfg.xbar_out_base(m),
                                vec_width=out_ch))
            em.emit(isa.alu(AluOp.ADD, acc, acc, bias, vec_width=out_ch))
        if layer.activation == "relu":
            em.emit(isa.alu(AluOp.RELU, acc, acc, vec_width=out_ch))
        em.emit(isa.store(acc, out_off, count=PERSISTENT_COUNT,
                          vec_width=out_ch, addr_reg=out_reg,
                          reg_indirect=True))

    # -- pooling ----------------------------------------------------------------

    def _emit_pool(self, em: _CoreEmitter, layer: PoolLayer,
                   in_addr: int, out_addr: int) -> None:
        if layer.size != 2 or layer.stride != 2:
            raise CnnCompileError("only 2x2/2 max pooling is lowered")
        c = layer.channels
        row_words = layer.in_w * c
        out_row_words = layer.out_w * c

        r0 = em.gpr(row_words)
        r1 = em.gpr(row_words)
        row = em.gpr(1)
        row_limit = em.gpr(1)
        in_base = em.gpr(1)
        out_base = em.gpr(1)

        em.emit(isa.set_(row, 0))
        em.emit(isa.set_(row_limit, layer.out_h))
        em.emit(isa.set_(in_base, in_addr))
        em.emit(isa.set_(out_base, out_addr))
        loop_top = em.pc
        em.emit(isa.load(r0, 0, vec_width=row_words, addr_reg=in_base,
                         reg_indirect=True))
        em.emit(isa.load(r1, row_words, vec_width=row_words,
                         addr_reg=in_base, reg_indirect=True))
        em.emit(isa.alu(AluOp.MAX, r0, r0, r1, vec_width=row_words))
        # Horizontal max of adjacent column slices, written into r1's space.
        for j in range(layer.out_w):
            em.emit(isa.alu(AluOp.MAX, r1 + j * c, r0 + 2 * j * c,
                            r0 + (2 * j + 1) * c, vec_width=c))
        em.emit(isa.store(r1, 0, count=PERSISTENT_COUNT,
                          vec_width=out_row_words, addr_reg=out_base,
                          reg_indirect=True))
        em.emit(isa.alu_int(AluOp.ADD, row, row, imm=1, imm_mode=True))
        em.emit(isa.alu_int(AluOp.ADD, in_base, in_base,
                            imm=2 * row_words, imm_mode=True))
        em.emit(isa.alu_int(AluOp.ADD, out_base, out_base,
                            imm=out_row_words, imm_mode=True))
        em.emit(isa.brn(BrnOp.LT, row, row_limit, loop_top)
                .with_comment("pool row loop"))

    # -- dense tail ----------------------------------------------------------------

    def _emit_dense(self, idx: int, layer: DenseLayer, in_addr: int) -> int:
        dim = self.config.core.mvmu_dim
        if layer.out_features > dim:
            raise CnnCompileError(
                "dense layers wider than one MVMU column tile are not "
                "lowered here; use the general compiler")
        weights = self.fmt.quantize(self.weights.dense_weights[idx])
        bias_addr = self._add_const(self.weights.dense_biases[idx])
        out_addr = self._alloc_mem(layer.out_features)

        row_tiles = math.ceil(layer.in_features / dim)
        per_core = self.config.core.num_mvmus
        num_cores = math.ceil(row_tiles / per_core)
        partial_addrs: list[int] = []
        emitters: list[_CoreEmitter] = []
        first_core_em: _CoreEmitter | None = None

        tile_idx = 0
        for core_ordinal in range(num_cores):
            core_id, em = self._new_core()
            emitters.append(em)
            if first_core_em is None:
                first_core_em = em
            mask = 0
            local = []
            while tile_idx < row_tiles and len(local) < per_core:
                mvmu = len(local)
                start = tile_idx * dim
                width = min(dim, layer.in_features - start)
                block = np.zeros((dim, dim), dtype=np.int64)
                block[:width, :layer.out_features] = weights[
                    start:start + width, :]
                self.program.weights[(0, core_id, mvmu)] = block
                em.emit(isa.load(self.config.core.xbar_in_base(mvmu),
                                 in_addr + start, vec_width=width)
                        .with_comment(f"dense{idx} tile {tile_idx}"))
                mask |= 1 << mvmu
                local.append(mvmu)
                tile_idx += 1
            em.emit(isa.mvm(mask))
            acc = em.gpr(layer.out_features)
            xout0 = self.config.core.xbar_out_base(local[0])
            if len(local) == 1:
                em.emit(isa.copy(acc, xout0, vec_width=layer.out_features))
            else:
                em.emit(isa.alu(AluOp.ADD, acc, xout0,
                                self.config.core.xbar_out_base(local[1]),
                                vec_width=layer.out_features))
                for m in local[2:]:
                    em.emit(isa.alu(AluOp.ADD, acc, acc,
                                    self.config.core.xbar_out_base(m),
                                    vec_width=layer.out_features))
            if core_ordinal == 0:
                self._dense_acc = acc
            else:
                part = self._alloc_mem(layer.out_features)
                partial_addrs.append(part)
                em.emit(isa.store(acc, part, count=1,
                                  vec_width=layer.out_features))

        em = first_core_em
        assert em is not None
        acc = self._dense_acc
        tmp = em.gpr(layer.out_features)
        for part in partial_addrs:
            em.emit(isa.load(tmp, part, vec_width=layer.out_features))
            em.emit(isa.alu(AluOp.ADD, acc, acc, tmp,
                            vec_width=layer.out_features))
        em.emit(isa.load(tmp, bias_addr, vec_width=layer.out_features))
        em.emit(isa.alu(AluOp.ADD, acc, acc, tmp,
                        vec_width=layer.out_features))
        if layer.activation == "relu":
            em.emit(isa.alu(AluOp.RELU, acc, acc,
                            vec_width=layer.out_features))
        em.emit(isa.store(acc, out_addr, count=PERSISTENT_COUNT,
                          vec_width=layer.out_features))
        self.result.mvm_instructions += num_cores
        return out_addr


def compile_cnn(spec: CnnSpec, config: PumaConfig | None = None,
                input_shuffle: bool = True,
                verify: bool = False) -> CnnCompiled:
    """Compile a CNN spec into a runnable single-tile program.

    With ``verify`` the static verifier runs over the generated program
    and raises :class:`repro.analysis.VerificationError` on any
    error-severity diagnostic, mirroring ``CompilerOptions.verify``.
    """
    compiled = CnnCompiler(spec, config, input_shuffle).compile()
    if verify:
        from repro.analysis import verify_program

        verify_program(compiled.program,
                       config if config is not None else PumaConfig())
    return compiled
