"""MVM coalescing (Section 5.3.2).

Independent MVM tiles mapped to different MVMUs of the same core are fused
into one MVM instruction whose mask activates all of them, capturing the
ILP between MVMUs that the in-order pipeline cannot discover by itself.

The paper's strategy, followed here: first pair tiles that belong to the
same large (logical) MVM operation — these are independent by construction;
once exhausted, fuse remaining MVMs with the first eligible candidate found
in traversal order, checking reachability so fusion never creates a
dependence cycle.  Fusion happens *before* linearization; the scheduler
treats a fused group as one unit whose inputs are the union of member
inputs.
"""

from __future__ import annotations

from collections import defaultdict

from repro.compiler.options import CompilerOptions
from repro.compiler.partition import PartitionResult
from repro.compiler.tiling import TaskKind, TiledGraph


def _reachable(graph: TiledGraph, src: int, dst: int,
               consumers: dict[int, list[int]]) -> bool:
    """True when a dependence path src -> ... -> dst exists."""
    if src == dst:
        return True
    seen = {src}
    frontier = [src]
    while frontier:
        current = frontier.pop()
        for nxt in consumers[current]:
            if nxt == dst:
                return True
            if nxt not in seen and nxt <= dst:
                # Task ids are topological, so only ids <= dst can reach dst.
                seen.add(nxt)
                frontier.append(nxt)
    return False


def coalesce(graph: TiledGraph, placement: PartitionResult,
             options: CompilerOptions | None = None) -> list[list[int]]:
    """Group task ids into coalesced units.

    Returns:
        A list of groups covering every task exactly once; non-MVM tasks
        and unfused MVMs are singleton groups.  Members of a group share
        one core and occupy distinct MVMUs.
    """
    options = options if options is not None else CompilerOptions()
    group_of: dict[int, int] = {}
    groups: list[list[int]] = []

    def new_group(members: list[int]) -> None:
        idx = len(groups)
        groups.append(members)
        for m in members:
            group_of[m] = idx

    if not options.coalesce_mvms:
        for task in graph.tasks:
            new_group([task.task_id])
        return groups

    consumers = graph.consumers()
    mvms_by_core: dict[tuple[int, int], list[int]] = defaultdict(list)
    for task in graph.tasks:
        if task.kind == TaskKind.MVM_TILE:
            mvms_by_core[placement.of(task.task_id).core_key].append(
                task.task_id)

    fused: set[int] = set()
    planned: list[list[int]] = []
    for _core_key, members in sorted(mvms_by_core.items()):
        # Phase 1: fuse tiles of the same logical MVM (same matvec node) —
        # independent by construction and on distinct MVMUs.
        by_matvec: dict[int, list[int]] = defaultdict(list)
        for tid in members:
            by_matvec[graph.task(tid).node_id].append(tid)
        for tids in by_matvec.values():
            unfused = [t for t in tids if t not in fused]
            while len(unfused) >= 2:
                a = unfused.pop(0)
                partner_idx = next(
                    (k for k, b in enumerate(unfused)
                     if placement.of(a).mvmu != placement.of(b).mvmu), None)
                if partner_idx is None:
                    continue
                b = unfused.pop(partner_idx)
                planned.append(sorted([a, b]))
                fused.update((a, b))
        # Phase 2: fuse the remainder with the first eligible candidate in
        # traversal order, rejecting pairs connected by a dependence path
        # or sharing a physical MVMU (re-invocations of the same weights
        # execute sequentially and cannot fuse).
        remaining = [t for t in members if t not in fused]
        i = 0
        while i < len(remaining):
            a = remaining[i]
            partner = None
            for b in remaining[i + 1:]:
                if placement.of(a).mvmu == placement.of(b).mvmu:
                    continue
                lo, hi = min(a, b), max(a, b)
                if not _reachable(graph, lo, hi, consumers):
                    partner = b
                    break
            if partner is None:
                i += 1
                continue
            planned.append(sorted([a, partner]))
            fused.update((a, partner))
            remaining = [t for t in remaining if t not in fused]

    planned = _drop_cyclic_fusions(graph, planned)

    planned_ids = {m for g in planned for m in g}
    plan_iter = iter(sorted(planned, key=lambda g: g[0]))
    next_plan = next(plan_iter, None)
    for task in graph.tasks:
        tid = task.task_id
        if tid in planned_ids:
            if next_plan is not None and tid == next_plan[0]:
                new_group(next_plan)
                next_plan = next(plan_iter, None)
            continue  # non-leading members were added with their leader
        new_group([tid])
    return groups


def _drop_cyclic_fusions(graph: TiledGraph,
                         planned: list[list[int]]) -> list[list[int]]:
    """Drop fusions until the group-level dependence graph is acyclic.

    Pairwise reachability checks cannot see cycles created by the
    *combination* of several fusions; this post-pass detects them with a
    topological sort and conservatively unfuses the latest-planned group on
    a cycle (the paper instead updates dependence information after every
    fusion — same effect, different bookkeeping).
    """
    planned = [list(g) for g in planned]
    while planned:
        group_of = {}
        for gi, members in enumerate(planned):
            for m in members:
                group_of[m] = gi
        n_singleton_base = len(planned)
        # Assign implicit singleton groups to remaining tasks.
        next_gi = n_singleton_base
        for task in graph.tasks:
            if task.task_id not in group_of:
                group_of[task.task_id] = next_gi
                next_gi += 1
        edges: dict[int, set[int]] = {g: set() for g in range(next_gi)}
        indegree = {g: 0 for g in range(next_gi)}
        for task in graph.tasks:
            gi = group_of[task.task_id]
            for piece in task.inputs:
                src = group_of[piece.task_id]
                if src != gi and gi not in edges[src]:
                    edges[src].add(gi)
                    indegree[gi] += 1
        ready = [g for g, d in indegree.items() if d == 0]
        seen = 0
        while ready:
            g = ready.pop()
            seen += 1
            for nxt in edges[g]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        if seen == next_gi:
            return planned
        planned.pop()  # unfuse the most recently planned group and retry
    return planned


def grouped_schedule(graph: TiledGraph, groups: list[list[int]],
                     options: CompilerOptions | None = None) -> list[int]:
    """Linearize the graph with coalesced groups as atomic units.

    Produces a task order where group members are adjacent and every task
    appears after all inputs of its whole group.
    """
    options = options if options is not None else CompilerOptions()
    group_of = {}
    for gi, members in enumerate(groups):
        for m in members:
            group_of[m] = gi

    # Group-level dependence edges.
    group_inputs: list[set[int]] = [set() for _ in groups]
    for task in graph.tasks:
        gi = group_of[task.task_id]
        for piece in task.inputs:
            src_group = group_of[piece.task_id]
            if src_group != gi:
                group_inputs[gi].add(src_group)

    if options.schedule == "naive":
        # Construction-order linearization (Figure 9(b)'s high-pressure
        # baseline): Kahn's algorithm with a min-id priority queue — still
        # topological over the *group* DAG, which plain construction order
        # is not once groups merge tasks from distant graph regions.
        import heapq

        indegree = [0] * len(groups)
        dependents: list[set[int]] = [set() for _ in groups]
        for gi, inputs in enumerate(group_inputs):
            indegree[gi] = len(inputs)
            for src in inputs:
                dependents[src].add(gi)
        ready = [gi for gi, d in enumerate(indegree) if d == 0]
        heapq.heapify(ready)
        naive_order: list[int] = []
        while ready:
            gi = heapq.heappop(ready)
            naive_order.append(gi)
            for nxt in sorted(dependents[gi]):
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    heapq.heappush(ready, nxt)
        task_order = [tid for gi in naive_order for tid in groups[gi]]
        _check_group_order(graph, task_order)
        return task_order

    # Depth-first postorder over the group DAG, outputs first.
    roots = [group_of[t.task_id] for t in graph.tasks
             if t.kind == TaskKind.OUTPUT_SEG]
    roots += list(range(len(groups)))
    visited = [False] * len(groups)
    order: list[int] = []
    for root in roots:
        if visited[root]:
            continue
        visited[root] = True
        stack: list[tuple[int, list[int], int]] = [
            (root, sorted(group_inputs[root]), 0)]
        while stack:
            gi, inputs, idx = stack.pop()
            advanced = False
            while idx < len(inputs):
                child = inputs[idx]
                idx += 1
                if not visited[child]:
                    visited[child] = True
                    stack.append((gi, inputs, idx))
                    stack.append((child, sorted(group_inputs[child]), 0))
                    advanced = True
                    break
            if not advanced and idx >= len(inputs):
                order.append(gi)

    task_order = [tid for gi in order for tid in groups[gi]]
    _check_group_order(graph, task_order)
    return task_order


def _check_group_order(graph: TiledGraph, order: list[int]) -> None:
    position = {tid: i for i, tid in enumerate(order)}
    if len(position) != len(graph.tasks):
        raise AssertionError("grouped schedule dropped or duplicated tasks")
    for task in graph.tasks:
        for piece in task.inputs:
            if position[piece.task_id] >= position[task.task_id]:
                raise AssertionError(
                    f"task {task.task_id} ordered before input "
                    f"{piece.task_id}")
