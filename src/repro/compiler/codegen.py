"""Code generation: tiled tasks -> per-core and per-tile ISA streams.

Walks the global schedule and emits instructions into the stream of each
task's core (and send/receive into tile streams), tracking where every
value lives:

* the producer core holds a value in general-purpose registers until its
  last local consumer (or until evicted, which spills it to tile memory);
* values with consumers on other cores are stored to the producer tile's
  shared memory immediately after production, with the attribute count set
  to the exact number of planned reads (loads by sibling cores plus one
  send per remote tile);
* values with consumers on other tiles are forwarded by the producer
  tile's stream (``send``) into the consumer tile's receive FIFO, whose
  ``receive`` deposits them into that tile's memory for local loads.

MVM tiles are special: operands are staged straight into XbarIn registers,
the (possibly coalesced) MVM instruction fires, and each XbarOut result is
*secured* immediately — accumulated into the owning reduction's register
when it lives on the same core, stored to memory otherwise — so a later
MVM on the same MVMU can never clobber an unread result.

Because all streams are restrictions of one global linear order, the
blocking protocol cannot deadlock (Section 5.3.3); the simulator enforces
this with an exact deadlock detector.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

from repro.arch.config import PumaConfig
from repro.compiler.memory import MemoryPlan
from repro.compiler.options import CompilerOptions
from repro.compiler.partition import PartitionResult
from repro.compiler.regalloc import RegisterAllocator, RegisterExhaustion
from repro.compiler.tiling import Piece, Task, TaskKind, TiledGraph
from repro.isa import instruction as isa
from repro.isa.opcodes import AluOp
from repro.isa.program import NodeProgram
from repro.tile.attribute_buffer import PERSISTENT_COUNT

CoreKey = tuple[int, int]


def state_width(state, default: int) -> int:
    """Width of a tracked value, or ``default`` when untracked."""
    return state.width if state is not None else default


class CodegenError(RuntimeError):
    """The code generator hit an unsatisfiable constraint."""


@dataclass
class _ValueState:
    """Run-time location of one task's value during emission."""

    width: int
    reg_core: CoreKey | None = None
    reg_base: int = -1
    pinned: bool = False
    mem: dict[int, int] = field(default_factory=dict)   # tile -> address
    spill: dict[CoreKey, int] = field(default_factory=dict)  # spill slots
    reg_reads_left: int = 0
    # Planned memory reads remaining per tile copy; when a counter hits
    # zero the copy's words retire for guarded reuse (Section 5.2).
    mem_reads_left: dict[int, int] = field(default_factory=dict)
    mem_producer_stream: dict[int, tuple] = field(default_factory=dict)
    # A gather consumed only by MVMs never materializes: its pieces stage
    # straight into XbarIn at each consuming MVM (set during planning).
    deferred_pieces: list[Piece] | None = None


@dataclass
class _TaskPlan:
    """Static consumer analysis for one task."""

    reg_reads: int = 0                    # operand slots on the producer core
    # reader cores of loads by sibling cores (same tile), one per slot
    local_readers: list[CoreKey] = field(default_factory=list)
    # tile -> consumer core keys reading the forwarded copy there
    remote_tiles: dict[int, list[CoreKey]] = field(default_factory=dict)

    @property
    def local_mem_reads(self) -> int:
        return len(self.local_readers)

    @property
    def store_count(self) -> int:
        return len(self.local_readers) + len(self.remote_tiles)

    def reader_streams(self, producer_tile: int) -> frozenset:
        """Streams reading the producer-tile copy: sibling cores plus the
        tile control unit when the value is forwarded."""
        streams = set(self.local_readers)
        if self.remote_tiles:
            streams.add(("tile-ctrl", producer_tile))
        return frozenset(streams)

    def remote_reader_streams(self, dst_tile: int) -> frozenset:
        """Streams reading the received copy at ``dst_tile``."""
        return frozenset(self.remote_tiles.get(dst_tile, ()))


@dataclass
class CodegenStats:
    """Counters the Table 8 ablations read."""

    loads: int = 0
    stores: int = 0
    sends: int = 0
    receives: int = 0
    copies: int = 0
    spill_stores: int = 0
    spill_loads: int = 0
    register_accesses: int = 0

    @property
    def spilled_access_fraction(self) -> float:
        spill = self.spill_stores + self.spill_loads
        if self.register_accesses + spill == 0:
            return 0.0
        return spill / (self.register_accesses + spill)


class CodeGenerator:
    """Emits a :class:`NodeProgram` from the scheduled tiled graph."""

    def __init__(self, graph: TiledGraph, placement: PartitionResult,
                 order: list[int], groups: list[list[int]],
                 config: PumaConfig, model_name: str,
                 options: CompilerOptions | None = None) -> None:
        self.graph = graph
        self.placement = placement
        self.order = order
        self.position = {tid: i for i, tid in enumerate(order)}
        self.group_of: dict[int, list[int]] = {}
        for members in groups:
            for m in members:
                self.group_of[m] = members
        self.config = config
        self.options = options if options is not None else CompilerOptions()
        self.program = NodeProgram(name=model_name)
        self.memory = MemoryPlan(config.tile.shared_memory_words)
        self.stats = CodegenStats()
        self._allocators: dict[CoreKey, RegisterAllocator] = {}
        self._values: dict[int, _ValueState] = {}
        self._plans: dict[int, _TaskPlan] = {}
        self._acc: dict[int, tuple[CoreKey, int]] = {}  # reduce -> (core, reg)
        self._emitted_groups: set[int] = set()
        self._fifo_map: dict[int, dict[int, int]] = {}  # dst -> src -> fifo
        self._use_positions: dict[tuple[int, CoreKey], list[int]] = {}
        self._input_blocks: dict[int, tuple[int, int]] = {}   # node -> tile,addr
        self._output_blocks: dict[int, tuple[int, int]] = {}

    # -- public entry ------------------------------------------------------

    def run(self) -> NodeProgram:
        self._plan_consumers()
        self._plan_inputs_and_outputs()
        for tid in self.order:
            task = self.graph.task(tid)
            self._emit_task(task)
        for tile_id, tile_prog in self.program.tiles.items():
            for core_prog in tile_prog.cores.values():
                core_prog.append(isa.hlt())
            if tile_prog.tile_instructions:
                tile_prog.append_tile(isa.hlt())
        return self.program

    # -- planning ----------------------------------------------------------

    def _core_of(self, task_id: int) -> CoreKey:
        p = self.placement.of(task_id)
        return p.core_key

    def _find_deferred_gathers(self) -> set[int]:
        """Gathers consumed exclusively by MVM tiles stage straight into
        XbarIn (no register materialization, no publication)."""
        consumers = self.graph.consumers()
        deferred = set()
        for task in self.graph.tasks:
            if task.kind != TaskKind.GATHER:
                continue
            users = consumers[task.task_id]
            if users and all(self.graph.task(u).kind == TaskKind.MVM_TILE
                             for u in users):
                deferred.add(task.task_id)
        return deferred

    def _resolved_inputs(self, task: Task) -> list[Piece]:
        """Task inputs with deferred gathers replaced by their pieces."""
        out: list[Piece] = []
        for piece in task.inputs:
            src = self.graph.task(piece.task_id)
            if (src.kind == TaskKind.GATHER
                    and piece.task_id in self._deferred):
                # MVM tiles consume the whole gathered vector.
                out.extend(src.inputs)
            else:
                out.append(piece)
        return out

    def _plan_consumers(self) -> None:
        self._deferred = self._find_deferred_gathers()
        for task in self.graph.tasks:
            self._plans[task.task_id] = _TaskPlan()
        for task in self.graph.tasks:
            if task.kind in (TaskKind.INPUT_SEG, TaskKind.CONST_SEG):
                continue
            if task.task_id in self._deferred:
                continue  # reads happen at the consuming MVMs instead
            consumer_core = self._core_of(task.task_id)
            consumer_tile = consumer_core[0]
            inputs = (self._resolved_inputs(task)
                      if task.kind == TaskKind.MVM_TILE else task.inputs)
            for piece in inputs:
                src = self.graph.task(piece.task_id)
                plan = self._plans[piece.task_id]
                if src.kind in (TaskKind.INPUT_SEG, TaskKind.CONST_SEG):
                    home = self.placement.of(src.task_id).tile
                    if consumer_tile == home:
                        plan.local_readers.append(consumer_core)
                    else:
                        plan.remote_tiles.setdefault(
                            consumer_tile, []).append(consumer_core)
                    continue
                producer_core = self._core_of(piece.task_id)
                if consumer_core == producer_core:
                    plan.reg_reads += 1
                    self._use_positions.setdefault(
                        (piece.task_id, consumer_core), []).append(
                        self.position[task.task_id])
                elif consumer_tile == producer_core[0]:
                    plan.local_readers.append(consumer_core)
                else:
                    plan.remote_tiles.setdefault(
                        consumer_tile, []).append(consumer_core)
        for positions in self._use_positions.values():
            positions.sort()

    def _plan_inputs_and_outputs(self) -> None:
        seen_inputs: set[int] = set()
        seen_outputs: set[int] = set()
        for task in self.graph.tasks:
            if task.kind == TaskKind.INPUT_SEG and task.node_id not in seen_inputs:
                seen_inputs.add(task.node_id)
                home = self.placement.of(task.task_id).tile
                length = self._node_length(task.node_id)
                addr = self.memory.tile(home).allocate(
                    length, f"input:{task.name}")
                self._input_blocks[task.node_id] = (home, addr)
                self.program.input_layout[task.name] = (home, addr, length)
            elif task.kind == TaskKind.OUTPUT_SEG and task.node_id not in seen_outputs:
                seen_outputs.add(task.node_id)
                home = self.placement.of(task.task_id).tile
                length = self._node_length(task.node_id)
                addr = self.memory.tile(home).allocate(
                    length, f"output:{task.name}")
                self._output_blocks[task.node_id] = (home, addr)
                self.program.output_layout[task.name] = (home, addr, length)

    def _node_length(self, node_id: int) -> int:
        segs = self.graph.node_segments[node_id]
        return sum(self.graph.task(t).width for t in segs)

    # -- low-level emission helpers -----------------------------------------

    def _core_prog(self, core: CoreKey):
        return self.program.tile(core[0]).core(core[1])

    def _allocator(self, core: CoreKey) -> RegisterAllocator:
        if core not in self._allocators:
            self._allocators[core] = RegisterAllocator(self.config.core)
        return self._allocators[core]

    def _alloc_reg(self, core: CoreKey, width: int,
                   pinned_tasks: set[int]) -> int:
        """Allocate registers, evicting (spilling) values if needed."""
        allocator = self._allocator(core)
        base = allocator.allocate(width)
        while base is None:
            victim = self._pick_victim(core, pinned_tasks)
            if victim is None:
                raise RegisterExhaustion(
                    f"core {core}: cannot allocate {width} registers and "
                    f"nothing can be evicted")
            self._spill(victim, core)
            base = allocator.allocate(width)
        return base

    def _pick_victim(self, core: CoreKey, pinned_tasks: set[int]) -> int | None:
        """Belady-style victim: live value with the furthest next use."""
        best_task, best_next = None, -1
        for tid, state in self._values.items():
            if state.reg_core != core or state.pinned or tid in pinned_tasks:
                continue
            uses = self._use_positions.get((tid, core), [])
            current = getattr(self, "_current_position", 0)
            idx = bisect_right(uses, current)
            next_use = uses[idx] if idx < len(uses) else 1 << 60
            if next_use > best_next:
                best_next, best_task = next_use, tid
        return best_task

    def _spill(self, task_id: int, core: CoreKey) -> None:
        state = self._values[task_id]
        addr = self.memory.tile(core[0]).allocate(
            state.width, f"spill:t{task_id}")
        prog = self._core_prog(core)
        prog.append(isa.store(state.reg_base, addr, count=PERSISTENT_COUNT,
                              vec_width=state.width)
                    .with_comment(f"spill task {task_id}"))
        self.stats.spill_stores += 1
        self.stats.stores += 1
        self._allocator(core).stats.spill_stores += 1
        state.spill[core] = addr
        self._allocator(core).release(state.reg_base, state.width)
        state.reg_core = None
        state.reg_base = -1

    def _release_if_dead(self, task_id: int) -> None:
        state = self._values.get(task_id)
        if state is None or state.reg_core is None or state.pinned:
            return
        if state.reg_reads_left <= 0:
            self._allocator(state.reg_core).release(state.reg_base, state.width)
            state.reg_core = None
            state.reg_base = -1

    def _note_reg_read(self, task_id: int) -> None:
        state = self._values[task_id]
        state.reg_reads_left -= 1
        self.stats.register_accesses += 1

    def _track_mem_copy(self, task_id: int, tile_id: int, reads: int,
                        clamped: bool, producer_stream: tuple) -> None:
        """Register a tile copy for retirement once its reads are emitted.

        Copies whose attribute count was clamped to the persistent
        sentinel never invalidate at run time, so their locations are
        never reused.
        """
        if reads <= 0 or clamped:
            return
        state = self._values[task_id]
        state.mem_reads_left[tile_id] = reads
        state.mem_producer_stream[tile_id] = producer_stream

    def _note_mem_read(self, task_id: int, tile_id: int,
                       streams: frozenset, full: bool = True) -> None:
        """Account one emitted read of a tile copy; retire when done.

        Partial reads (slice/gather pieces) decrement only the words they
        touch at run time, so the block never fully invalidates — one
        partial read permanently disqualifies the copy from reuse.
        ``streams`` tags the retired block for the stream-confinement
        reuse predicate.
        """
        state = self._values.get(task_id)
        if state is None:
            return
        left = state.mem_reads_left.get(tile_id)
        if left is None:
            return
        if not full:
            del state.mem_reads_left[tile_id]
            return
        left -= 1
        if left > 0:
            state.mem_reads_left[tile_id] = left
            return
        del state.mem_reads_left[tile_id]
        addr = state.mem.pop(tile_id)
        producer = state.mem_producer_stream.pop(tile_id)
        self.memory.tile(tile_id).retire(addr, state.width, producer,
                                         streams)

    def _copy_streams(self, task_id: int, tile_id: int) -> frozenset:
        """Reader streams of ``task_id``'s copy residing at ``tile_id``."""
        plan = self._plans.get(task_id)
        if plan is None:
            return frozenset()
        task = self.graph.task(task_id)
        if task.kind in (TaskKind.INPUT_SEG, TaskKind.CONST_SEG):
            home = self.placement.of(task_id).tile
        else:
            home = self._core_of(task_id)[0]
        if tile_id == home:
            return plan.reader_streams(tile_id)
        return plan.remote_reader_streams(tile_id)

    def _recycle_predicate(self, new_producer: tuple,
                           new_streams: frozenset):
        """Stream confinement (see repro.compiler.memory): a retired block
        is reusable only when the old and new readers share one stream AND
        the old and new producers share one stream."""
        if not self.options.memory_reuse:
            return None
        if len(new_streams) != 1:
            return None  # new copy is multi-stream: never reuse

        def predicate(old_producer: tuple,
                      old_streams: frozenset) -> bool:
            return old_streams == new_streams and old_producer == new_producer

        return predicate

    # -- data routing --------------------------------------------------------

    def _fifo_for(self, src_tile: int, dst_tile: int) -> int:
        per_dst = self._fifo_map.setdefault(dst_tile, {})
        if src_tile not in per_dst:
            if len(per_dst) >= self.config.tile.receive_fifos:
                raise CodegenError(
                    f"tile {dst_tile} receives from more than "
                    f"{self.config.tile.receive_fifos} sender tiles; FIFO "
                    f"virtualization across program phases is not "
                    f"implemented for this fan-in")
            per_dst[src_tile] = len(per_dst)
        return per_dst[src_tile]

    @staticmethod
    def _clamp_count(count: int) -> int:
        """Reader counts above the field maximum become persistent (255),
        which can only under-consume — never deadlock."""
        return min(count, PERSISTENT_COUNT)

    def _publish(self, task: Task) -> None:
        """Store a freshly-produced value and forward it to remote tiles."""
        plan = self._plans[task.task_id]
        state = self._values[task.task_id]
        core = state.reg_core
        if plan.store_count == 0:
            return
        assert core is not None
        tile_id = core[0]
        streams = plan.reader_streams(tile_id)
        addr = self.memory.tile(tile_id).allocate(
            state.width, f"value:t{task.task_id}",
            recycle_if=self._recycle_predicate(core, streams))
        count = self._clamp_count(plan.store_count)
        self._core_prog(core).append(
            isa.store(state.reg_base, addr, count=count,
                      vec_width=state.width)
            .with_comment(f"publish task {task.task_id}"))
        self.stats.stores += 1
        self.stats.register_accesses += 1
        state.mem[tile_id] = addr
        self._track_mem_copy(task.task_id, tile_id, plan.store_count,
                             clamped=count != plan.store_count,
                             producer_stream=core)
        self._forward_remote(task.task_id, tile_id, addr, state.width, plan)

    def _forward_remote(self, task_id: int, src_tile: int, addr: int,
                        width: int, plan: _TaskPlan) -> None:
        state = self._values[task_id]
        src_streams = plan.reader_streams(src_tile)
        for dst_tile, consumers in sorted(plan.remote_tiles.items()):
            fifo = self._fifo_for(src_tile, dst_tile)
            self.program.tile(src_tile).append_tile(
                isa.send(addr, fifo, dst_tile, vec_width=width))
            self._note_mem_read(task_id, src_tile, src_streams)
            dst_streams = plan.remote_reader_streams(dst_tile)
            dst_producer = ("tile-ctrl", dst_tile)
            dst_addr = self.memory.tile(dst_tile).allocate(
                width, f"recv:t{task_id}",
                recycle_if=self._recycle_predicate(dst_producer,
                                                   dst_streams))
            slots = len(consumers)
            count = self._clamp_count(slots)
            self.program.tile(dst_tile).append_tile(
                isa.receive(dst_addr, fifo, count=count, vec_width=width))
            self.stats.sends += 1
            self.stats.receives += 1
            state.mem[dst_tile] = dst_addr
            self._track_mem_copy(task_id, dst_tile, slots,
                                 clamped=count != slots,
                                 producer_stream=dst_producer)

    def _memory_copy_addr(self, task_id: int, tile_id: int) -> int | None:
        """Address of ``task_id``'s value in ``tile_id``'s memory, if any."""
        task = self.graph.task(task_id)
        if task.kind == TaskKind.INPUT_SEG:
            home, base = self._input_blocks[task.node_id]
            if home == tile_id:
                return base + self._segment_offset(task)
            state = self._values.get(task_id)
            return state.mem.get(tile_id) if state else None
        if task.kind == TaskKind.CONST_SEG:
            state = self._values[task_id]
            return state.mem.get(tile_id)
        state = self._values.get(task_id)
        if state is None:
            return None
        return state.mem.get(tile_id)

    def _segment_offset(self, task: Task) -> int:
        offsets = self.graph.node_offsets[task.node_id]
        return offsets[task.seg_index]

    def _stage_operand(self, core: CoreKey, piece: Piece,
                       pinned: set[int]) -> tuple[int, list[tuple[int, int]]]:
        """Make ``piece`` readable in registers on ``core``.

        Returns:
            ``(register_index, temps)`` where ``temps`` lists scratch
            ranges to free after the consuming instruction.
        """
        src_id = piece.task_id
        src_task = self.graph.task(src_id)
        state = self._values.get(src_id)
        temps: list[tuple[int, int]] = []

        # 1. live register copy on this core (producer core only)
        if state is not None and state.reg_core == core:
            self._note_reg_read(src_id)
            return state.reg_base + piece.offset, temps

        # 2. spilled copy on this core
        if state is not None and core in state.spill:
            base = self._alloc_reg(core, piece.length, pinned)
            self._core_prog(core).append(
                isa.load(base, state.spill[core] + piece.offset,
                         vec_width=piece.length)
                .with_comment(f"reload spilled task {src_id}"))
            self.stats.spill_loads += 1
            self.stats.loads += 1
            self._allocator(core).stats.spill_loads += 1
            temps.append((base, piece.length))
            return base, temps

        # 3. memory copy on this tile (inputs, constants, published values)
        addr = self._memory_copy_addr(src_id, core[0])
        if addr is not None:
            base = self._alloc_reg(core, piece.length, pinned)
            self._core_prog(core).append(
                isa.load(base, addr + piece.offset, vec_width=piece.length)
                .with_comment(f"load task {src_id}"))
            self.stats.loads += 1
            self._note_mem_read(
                src_id, core[0], self._copy_streams(src_id, core[0]),
                full=piece.offset == 0 and piece.length == state_width(
                    self._values.get(src_id), piece.length))
            temps.append((base, piece.length))
            return base, temps

        raise CodegenError(
            f"task {src_task.task_id} ({src_task.kind.value}) has no copy "
            f"reachable from core {core}")

    def _stage_to_xbar_in(self, core: CoreKey, mvmu: int, piece: Piece) -> None:
        """Write an MVM operand into the XbarIn registers of ``mvmu``."""
        xbar_base = self.config.core.xbar_in_base(mvmu)
        src_id = piece.task_id
        if src_id in self._deferred:
            # Deferred gather: stage each constituent piece directly.
            if piece.offset != 0:
                raise CodegenError(
                    "MVM operands consume whole segments; partial reads of "
                    "a deferred gather are not supported")
            position = 0
            for sub in self.graph.task(src_id).inputs:
                self._stage_piece_to_registers(core, xbar_base + position,
                                               sub)
                position += sub.length
            return
        self._stage_piece_to_registers(core, xbar_base, piece)

    def _stage_piece_to_registers(self, core: CoreKey, dest: int,
                                  piece: Piece) -> None:
        """Write one operand piece into a fixed register range (XbarIn)."""
        src_id = piece.task_id
        state = self._values.get(src_id)
        if state is not None and state.reg_core == core:
            self._note_reg_read(src_id)
            self._core_prog(core).append(
                isa.copy(dest, state.reg_base + piece.offset,
                         vec_width=piece.length)
                .with_comment(f"stage task {src_id}"))
            self.stats.copies += 1
            self._release_if_dead(src_id)
            return
        if state is not None and core in state.spill:
            self._core_prog(core).append(
                isa.load(dest, state.spill[core] + piece.offset,
                         vec_width=piece.length)
                .with_comment(f"stage spilled task {src_id}"))
            self.stats.spill_loads += 1
            self.stats.loads += 1
            return
        addr = self._memory_copy_addr(src_id, core[0])
        if addr is None:
            raise CodegenError(
                f"MVM operand task {src_id} unreachable from core {core}")
        self._core_prog(core).append(
            isa.load(dest, addr + piece.offset, vec_width=piece.length)
            .with_comment(f"stage task {src_id}"))
        self.stats.loads += 1
        self._note_mem_read(
            src_id, core[0], self._copy_streams(src_id, core[0]),
            full=piece.offset == 0 and piece.length == state_width(
                self._values.get(src_id), piece.length))

    # -- task emission -------------------------------------------------------

    def _emit_task(self, task: Task) -> None:
        self._current_position = self.position[task.task_id]
        kind = task.kind
        if kind == TaskKind.INPUT_SEG:
            self._values[task.task_id] = _ValueState(width=task.width)
            self._forward_inputs_if_remote(task)
        elif kind == TaskKind.CONST_SEG:
            self._emit_const(task)
        elif kind == TaskKind.MVM_TILE:
            self._emit_mvm_group(task)
        elif kind == TaskKind.REDUCE:
            self._emit_reduce(task)
        elif kind in (TaskKind.EWISE, TaskKind.EWISE_IMM, TaskKind.UNARY,
                      TaskKind.RANDOM):
            self._emit_ewise(task)
        elif kind == TaskKind.GATHER:
            if task.task_id in self._deferred:
                # Never materialized: consuming MVMs stage the pieces.
                self._values[task.task_id] = _ValueState(
                    width=task.width, deferred_pieces=list(task.inputs))
            else:
                self._emit_gather(task)
        elif kind == TaskKind.OUTPUT_SEG:
            self._emit_output(task)
        else:
            raise CodegenError(f"cannot emit task kind {kind}")

    def _forward_inputs_if_remote(self, task: Task) -> None:
        plan = self._plans[task.task_id]
        if not plan.remote_tiles:
            return
        home, base = self._input_blocks[task.node_id]
        addr = base + self._segment_offset(task)
        self._forward_remote(task.task_id, home, addr, task.width, plan)

    def _emit_const(self, task: Task) -> None:
        home = self.placement.of(task.task_id).tile
        addr = self.memory.tile(home).allocate(
            task.width, f"const:t{task.task_id}")
        self.program.const_memory.setdefault(home, []).append(
            (addr, np.asarray(task.const_values, dtype=np.int64)))
        state = _ValueState(width=task.width)
        state.mem[home] = addr
        self._values[task.task_id] = state
        plan = self._plans[task.task_id]
        if plan.remote_tiles:
            self._forward_remote(task.task_id, home, addr, task.width, plan)

    def _emit_mvm_group(self, task: Task) -> None:
        members = self.group_of[task.task_id]
        leader = members[0]
        if leader in self._emitted_groups:
            return
        self._emitted_groups.add(leader)
        placements = {tid: self.placement.of(tid) for tid in members}
        core = placements[leader].core_key
        # Stage every member's operand into its MVMU's XbarIn registers.
        mask = 0
        for tid in members:
            member = self.graph.task(tid)
            mvmu = placements[tid].mvmu
            self._stage_to_xbar_in(core, mvmu, member.inputs[0])
            mask |= 1 << mvmu
        self._core_prog(core).append(
            isa.mvm(mask).with_comment(
                f"mvm tasks {members}"))
        # Record weights for the loader.
        for tid in members:
            member = self.graph.task(tid)
            p = placements[tid]
            self.program.weights[(p.tile, p.core, p.mvmu)] = member.weights
        # Secure each XbarOut immediately.
        for tid in members:
            self._secure_mvm_result(tid, core, placements[tid].mvmu)

    def _reduce_consumer(self, mvm_task_id: int) -> int:
        if not hasattr(self, "_consumers_map"):
            self._consumers_map = self.graph.consumers()
        consumers = self._consumers_map[mvm_task_id]
        if len(consumers) != 1:
            raise CodegenError(
                f"MVM tile {mvm_task_id} must feed exactly one reduction, "
                f"found {consumers}")
        return consumers[0]

    def _secure_mvm_result(self, mvm_id: int, core: CoreKey, mvmu: int) -> None:
        task = self.graph.task(mvm_id)
        reduce_id = self._reduce_consumer(mvm_id)
        reduce_core = self._core_of(reduce_id)
        xbar_out = self.config.core.xbar_out_base(mvmu)
        if reduce_core == core:
            if reduce_id not in self._acc:
                base = self._alloc_reg(core, task.width,
                                       {mvm_id, reduce_id})
                self._core_prog(core).append(
                    isa.copy(base, xbar_out, vec_width=task.width)
                    .with_comment(f"init acc reduce {reduce_id}"))
                self.stats.copies += 1
                self._acc[reduce_id] = (core, base)
                # The accumulator lives as the reduce task's value; it is
                # evictable (spill + reload) like any other register value.
                acc_state = _ValueState(width=task.width, reg_core=core,
                                        reg_base=base)
                self._values.setdefault(reduce_id, acc_state)
                self._use_positions.setdefault((reduce_id, core), []).append(
                    self.position[reduce_id])
            else:
                base = self._ensure_acc_resident(reduce_id, core,
                                                 task.width, {mvm_id})
                self._core_prog(core).append(
                    isa.alu(AluOp.ADD, base, base, xbar_out,
                            vec_width=task.width)
                    .with_comment(f"acc reduce {reduce_id}"))
            self._values[mvm_id] = _ValueState(width=task.width)
            return
        # Remote reduction: store straight from XbarOut and forward.
        plan = self._plans[mvm_id]
        state = _ValueState(width=task.width)
        self._values[mvm_id] = state
        tile_id = core[0]
        streams = plan.reader_streams(tile_id)
        addr = self.memory.tile(tile_id).allocate(
            task.width, f"partial:t{mvm_id}",
            recycle_if=self._recycle_predicate(core, streams))
        reads = max(plan.store_count, 1)
        count = self._clamp_count(reads)
        self._core_prog(core).append(
            isa.store(xbar_out, addr, count=count, vec_width=task.width)
            .with_comment(f"partial of reduce {reduce_id}"))
        self.stats.stores += 1
        state.mem[tile_id] = addr
        self._track_mem_copy(mvm_id, tile_id, reads,
                             clamped=count != reads, producer_stream=core)
        self._forward_remote(mvm_id, tile_id, addr, task.width, plan)

    def _ensure_acc_resident(self, reduce_id: int, core: CoreKey,
                             width: int, pinned: set[int]) -> int:
        """Reload a spilled accumulator before accumulating into it."""
        state = self._values[reduce_id]
        if state.reg_core == core:
            return state.reg_base
        if core not in state.spill:
            raise CodegenError(
                f"accumulator for reduce {reduce_id} lost without a spill")
        base = self._alloc_reg(core, width, pinned | {reduce_id})
        self._core_prog(core).append(
            isa.load(base, state.spill[core], vec_width=width)
            .with_comment(f"reload acc reduce {reduce_id}"))
        self.stats.spill_loads += 1
        self.stats.loads += 1
        self._allocator(core).stats.spill_loads += 1
        state.reg_core = core
        state.reg_base = base
        self._acc[reduce_id] = (core, base)
        return base

    def _emit_reduce(self, task: Task) -> None:
        core = self._core_of(task.task_id)
        acc = self._acc.pop(task.task_id, None)
        state = self._values.get(task.task_id)
        if acc is not None:
            assert state is not None
            base = self._ensure_acc_resident(task.task_id, core,
                                             task.width, {task.task_id})
        else:
            base = None
            state = _ValueState(width=task.width)
            self._values[task.task_id] = state
        # Fold in partials that were produced on other cores/tiles.
        for piece in task.inputs:
            if self._was_local_partial(piece.task_id, core):
                continue  # already accumulated at MVM time
            reg, temps = self._stage_operand(core, piece, {task.task_id})
            if base is None:
                base = self._alloc_reg(core, task.width, {task.task_id})
                self._core_prog(core).append(
                    isa.copy(base, reg, vec_width=task.width)
                    .with_comment(f"init reduce {task.task_id}"))
                self.stats.copies += 1
            else:
                self._core_prog(core).append(
                    isa.alu(AluOp.ADD, base, base, reg, vec_width=task.width)
                    .with_comment(f"reduce {task.task_id}"))
            for t_base, t_width in temps:
                self._allocator(core).release(t_base, t_width)
        if base is None:
            raise CodegenError(f"reduce {task.task_id} had no partials")
        state.width = task.width
        state.reg_core = core
        state.reg_base = base
        state.pinned = False
        state.reg_reads_left = self._plans[task.task_id].reg_reads
        self.stats.register_accesses += 1
        self._publish(task)
        self._release_if_dead(task.task_id)

    def _was_local_partial(self, mvm_id: int, reduce_core: CoreKey) -> bool:
        return self._core_of(mvm_id) == reduce_core

    def _emit_ewise(self, task: Task) -> None:
        core = self._core_of(task.task_id)
        pinned = {p.task_id for p in task.inputs} | {task.task_id}
        operands: list[int] = []
        temps: list[tuple[int, int]] = []
        try:
            for piece in task.inputs:
                reg, piece_temps = self._stage_operand(core, piece, pinned)
                operands.append(reg)
                temps.extend(piece_temps)
            dest = self._alloc_reg(core, task.width, pinned)
        except RegisterExhaustion:
            # Pathological pressure (pinned operands fragment the file):
            # fall back to chunked emission with a memory-resident result,
            # whose register need is bounded by the chunk width.
            for t_base, t_width in temps:
                self._allocator(core).release(t_base, t_width)
            self._emit_chunked_to_memory(task, core)
            return
        prog = self._core_prog(core)
        if task.kind == TaskKind.EWISE_IMM:
            prog.append(isa.alui(task.alu_op, dest, operands[0],
                                 task.immediate, vec_width=task.width))
        elif task.kind == TaskKind.RANDOM:
            prog.append(isa.alu(AluOp.RANDOM, dest, dest,
                                vec_width=task.width))
        elif task.alu_op is not None and task.alu_op.num_sources == 1:
            prog.append(isa.alu(task.alu_op, dest, operands[0],
                                vec_width=task.width))
        else:
            prog.append(isa.alu(task.alu_op, dest, operands[0], operands[1],
                                vec_width=task.width))
        for t_base, t_width in temps:
            self._allocator(core).release(t_base, t_width)
        self._finish_value(task, core, dest)

    _FALLBACK_CHUNK = 16

    def _emit_chunked_to_memory(self, task: Task, core: CoreKey) -> None:
        """De-pressurized emission: compute ``task`` in small chunks and
        store the result directly to shared memory.

        Each chunk stages sub-ranges of the operands (reads of register
        operands need no allocation; memory operands load through a
        chunk-sized bounce register), applies the op, and stores the chunk
        with the value's full attribute count on the first chunk's words.
        Register need is O(chunk), independent of surrounding pressure.
        """
        if task.alu_op == AluOp.SUBSAMPLE:
            raise CodegenError(
                "register pressure too high for SUBSAMPLE (chunked "
                "fallback cannot split a length-changing op)")
        if task.kind == TaskKind.RANDOM:
            sources = 0
        elif task.kind in (TaskKind.EWISE_IMM, TaskKind.UNARY):
            sources = 1
        elif task.kind == TaskKind.EWISE:
            sources = 1 if task.alu_op.num_sources == 1 else 2
        elif task.kind == TaskKind.GATHER:
            sources = None  # handled piece-wise below
        else:
            raise CodegenError(
                f"no chunked fallback for task kind {task.kind}")

        tile_id = core[0]
        plan = self._plans[task.task_id]
        total_reads = plan.reg_reads + plan.store_count
        count = self._clamp_count(max(total_reads, 1))
        addr = self.memory.tile(tile_id).allocate(
            task.width, f"fallback:t{task.task_id}")
        prog = self._core_prog(core)
        chunk_w = self._FALLBACK_CHUNK

        def stage_sub(piece: Piece, offset: int, length: int,
                      pinned: set[int]) -> tuple[int, list]:
            sub = Piece(piece.task_id, piece.offset + offset, length)
            return self._stage_operand(core, sub, pinned)

        if task.kind == TaskKind.GATHER:
            pos = 0
            for piece in task.inputs:
                done = 0
                while done < piece.length:
                    length = min(chunk_w, piece.length - done)
                    reg, temps = stage_sub(piece, done, length,
                                           {task.task_id})
                    prog.append(isa.store(
                        reg, addr + pos + done, count=count,
                        vec_width=length)
                        .with_comment(f"fallback gather t{task.task_id}"))
                    self.stats.stores += 1
                    for t_base, t_width in temps:
                        self._allocator(core).release(t_base, t_width)
                    done += length
                pos += piece.length
        else:
            done = 0
            while done < task.width:
                length = min(chunk_w, task.width - done)
                pinned = {p.task_id for p in task.inputs} | {task.task_id}
                regs, temps = [], []
                for piece in task.inputs[:sources]:
                    reg, piece_temps = stage_sub(piece, done, length, pinned)
                    regs.append(reg)
                    temps.extend(piece_temps)
                dest = self._alloc_reg(core, length, pinned)
                if task.kind == TaskKind.EWISE_IMM:
                    prog.append(isa.alui(task.alu_op, dest, regs[0],
                                         task.immediate, vec_width=length))
                elif task.kind == TaskKind.RANDOM:
                    prog.append(isa.alu(AluOp.RANDOM, dest, dest,
                                        vec_width=length))
                elif sources == 1:
                    prog.append(isa.alu(task.alu_op, dest, regs[0],
                                        vec_width=length))
                else:
                    prog.append(isa.alu(task.alu_op, dest, regs[0], regs[1],
                                        vec_width=length))
                prog.append(isa.store(dest, addr + done, count=count,
                                      vec_width=length)
                            .with_comment(f"fallback t{task.task_id}"))
                self.stats.stores += 1
                for t_base, t_width in temps:
                    self._allocator(core).release(t_base, t_width)
                self._allocator(core).release(dest, length)
                done += length

        state = _ValueState(width=task.width)
        state.mem[tile_id] = addr
        self._values[task.task_id] = state
        # Consumers everywhere (including this core) read the memory copy.
        self._forward_remote(task.task_id, tile_id, addr, task.width, plan)
        for piece in task.inputs:
            self._release_if_dead(piece.task_id)

    def _emit_gather(self, task: Task) -> None:
        core = self._core_of(task.task_id)
        pinned = {p.task_id for p in task.inputs} | {task.task_id}
        try:
            dest = self._alloc_reg(core, task.width, pinned)
        except RegisterExhaustion:
            self._emit_chunked_to_memory(task, core)
            return
        pos = 0
        prog = self._core_prog(core)
        for piece in task.inputs:
            src_id = piece.task_id
            state = self._values.get(src_id)
            if state is not None and state.reg_core == core:
                self._note_reg_read(src_id)
                prog.append(isa.copy(dest + pos, state.reg_base + piece.offset,
                                     vec_width=piece.length)
                            .with_comment(f"gather task {src_id}"))
                self.stats.copies += 1
            else:
                addr = None
                if state is not None and core in state.spill:
                    addr = state.spill[core] + piece.offset
                    self.stats.spill_loads += 1
                else:
                    base_addr = self._memory_copy_addr(src_id, core[0])
                    if base_addr is None:
                        raise CodegenError(
                            f"gather operand {src_id} unreachable from "
                            f"core {core}")
                    addr = base_addr + piece.offset
                    self._note_mem_read(
                        src_id, core[0],
                        self._copy_streams(src_id, core[0]),
                        full=piece.offset == 0
                        and piece.length == state_width(
                            self._values.get(src_id), piece.length))
                prog.append(isa.load(dest + pos, addr, vec_width=piece.length)
                            .with_comment(f"gather task {src_id}"))
                self.stats.loads += 1
            pos += piece.length
        self._finish_value(task, core, dest)

    def _finish_value(self, task: Task, core: CoreKey, dest: int) -> None:
        state = _ValueState(width=task.width, reg_core=core, reg_base=dest,
                            reg_reads_left=self._plans[task.task_id].reg_reads)
        self._values[task.task_id] = state
        self.stats.register_accesses += 1
        self._publish(task)
        self._release_if_dead(task.task_id)
        for piece in task.inputs:
            self._release_if_dead(piece.task_id)

    def _emit_output(self, task: Task) -> None:
        core = self._core_of(task.task_id)
        home, base_addr = self._output_blocks[task.node_id]
        offset = self._segment_offset(task)
        piece = task.inputs[0]
        if core[0] == home:
            reg, temps = self._stage_operand(core, piece, {task.task_id})
            self._core_prog(core).append(
                isa.store(reg, base_addr + offset, count=PERSISTENT_COUNT,
                          vec_width=task.width)
                .with_comment(f"output {task.name}[{offset}:]"))
            self.stats.stores += 1
            for t_base, t_width in temps:
                self._allocator(core).release(t_base, t_width)
        else:
            # Producer tile differs from the output's home tile: store
            # locally, then forward into the output block.
            reg, temps = self._stage_operand(core, piece, {task.task_id})
            tile_id = core[0]
            addr = self.memory.tile(tile_id).allocate(
                task.width, f"outstage:t{task.task_id}")
            self._core_prog(core).append(
                isa.store(reg, addr, count=1, vec_width=task.width)
                .with_comment(f"stage output {task.name}"))
            self.stats.stores += 1
            fifo = self._fifo_for(tile_id, home)
            self.program.tile(tile_id).append_tile(
                isa.send(addr, fifo, home, vec_width=task.width))
            self.program.tile(home).append_tile(
                isa.receive(base_addr + offset, fifo,
                            count=PERSISTENT_COUNT, vec_width=task.width))
            self.stats.sends += 1
            self.stats.receives += 1
            for t_base, t_width in temps:
                self._allocator(core).release(t_base, t_width)
        self._release_if_dead(piece.task_id)
