"""Top-level compile driver: model -> NodeProgram.

``compile_model`` chains the backend passes — tiling, partitioning,
coalescing, global scheduling, code generation with register allocation —
and returns a :class:`CompiledModel` bundling the executable program with
the statistics the evaluation reads (instruction mix, data-movement counts,
spill rates, memory usage).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.config import PumaConfig
from repro.compiler.coalesce import coalesce, grouped_schedule
from repro.compiler.codegen import CodegenStats, CodeGenerator
from repro.compiler.frontend import Model
from repro.compiler.options import CompilerOptions
from repro.compiler.partition import PartitionResult, partition
from repro.compiler.schedule import max_live_values
from repro.compiler.tiling import TaskKind, TiledGraph, tile_model
from repro.isa.program import NodeProgram


@dataclass
class CompiledModel:
    """A compiled model plus compile-time artifacts and statistics."""

    program: NodeProgram
    graph: TiledGraph
    placement: PartitionResult
    order: list[int]
    groups: list[list[int]]
    codegen_stats: CodegenStats
    memory_usage: dict[int, int] = field(default_factory=dict)
    recycled_words: int = 0
    # Configuration-time crossbar state per (config, crossbar model, seed)
    # fingerprint, harvested by the engine on first simulator construction
    # so replicas (and repeated runs) skip the programming pass.  Lives on
    # the compilation because its lifetime is exactly the compilation's:
    # engines sharing a cached CompiledModel share programmed state.
    programmed_states: dict = field(
        default_factory=dict, repr=False, compare=False)
    # Execution tapes (resolved dynamic schedules, see repro.sim.tape) per
    # (config, crossbar model, seed, batch) fingerprint, recorded by the
    # engine on the first simulation at each key and replayed on every
    # later run.  Shared like programmed_states: engines (and sharded
    # replicas) serving the same cached compilation record once, replay
    # everywhere.
    execution_tapes: dict = field(
        default_factory=dict, repr=False, compare=False)

    @property
    def num_mvmus_used(self) -> int:
        return self.placement.num_mvmus

    @property
    def num_cores_used(self) -> int:
        return self.placement.num_cores

    @property
    def num_tiles_used(self) -> int:
        return self.placement.num_tiles

    @property
    def max_live_values(self) -> int:
        """Scheduler register-pressure metric (Figure 9)."""
        return max_live_values(self.graph, self.order)

    @property
    def coalesced_mvm_instructions(self) -> int:
        """Number of MVM instructions after coalescing."""
        return sum(
            1 for g in self.groups
            if self.graph.task(g[0]).kind == TaskKind.MVM_TILE)

    def spilled_access_fraction(self) -> float:
        """Table 8 register-pressure column."""
        return self.codegen_stats.spilled_access_fraction

    def instruction_memory_report(self, config: PumaConfig) -> list[str]:
        """Streams exceeding their instruction memories (Table 3: 4 KB per
        core, 8 KB per tile).  The simulator still runs oversized programs
        — real deployments would re-partition across more cores — but the
        compiler surfaces the pressure."""
        from repro.isa.encoding import INSTRUCTION_BYTES

        core_cap = config.core.instruction_memory_bytes
        tile_cap = config.tile.tile_instruction_memory_bytes
        over = []
        for tile_id, tile in self.program.tiles.items():
            tile_bytes = len(tile.tile_instructions) * INSTRUCTION_BYTES
            if tile_bytes > tile_cap:
                over.append(f"tile {tile_id}: {tile_bytes} B tile stream "
                            f"> {tile_cap} B")
            for core_id, core in tile.cores.items():
                core_bytes = len(core.instructions) * INSTRUCTION_BYTES
                if core_bytes > core_cap:
                    over.append(f"tile {tile_id} core {core_id}: "
                                f"{core_bytes} B > {core_cap} B")
        return over


def compile_model(model: Model, config: PumaConfig | None = None,
                  options: CompilerOptions | None = None) -> CompiledModel:
    """Compile a frontend model to PUMA ISA.

    Args:
        model: the model built against :mod:`repro.compiler.frontend`.
        config: accelerator configuration (Table 3 defaults when omitted).
        options: backend options / ablation switches.

    Returns:
        The compiled model; ``result.program`` runs on
        :class:`repro.sim.Simulator`.
    """
    config = config if config is not None else PumaConfig()
    options = options if options is not None else CompilerOptions()

    graph = tile_model(model, config)
    placement = partition(graph, config, options)
    groups = coalesce(graph, placement, options)
    order = grouped_schedule(graph, groups, options)
    generator = CodeGenerator(graph, placement, order, groups, config,
                              model.name, options)
    program = generator.run()
    if options.verify:
        from repro.analysis import verify_program

        verify_program(program, config)
    return CompiledModel(
        program=program,
        graph=graph,
        placement=placement,
        order=order,
        groups=groups,
        codegen_stats=generator.stats,
        memory_usage=generator.memory.usage(),
        recycled_words=sum(p.recycled_words
                           for p in generator.memory.tiles.values()),
    )
