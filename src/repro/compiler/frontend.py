"""High-level programming interface (Figure 7).

The interface mirrors the paper's C++ runtime-compiler library in Python::

    m = Model.create("example")
    x = InVector.create(m, M, "x")
    y = InVector.create(m, M, "y")
    z = OutVector.create(m, N, "z")
    A = ConstMatrix.create(m, M, N, "A", weights_a)
    B = ConstMatrix.create(m, M, N, "B", weights_b)
    z.assign(tanh(A @ x + B @ y))
    program = compile_model(m, config)

Expressions build a DAG of :class:`GraphNode` records inside the model;
``compile_model`` lowers the DAG through the backend passes.  Matrices are
dense float arrays quantized to the datapath fixed-point format at compile
time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.isa.opcodes import AluOp


class NodeKind(enum.Enum):
    """Computation-graph node kinds."""

    INPUT = "input"
    CONST = "const"           # constant vector (biases)
    MATVEC = "matvec"         # x @ W with a ConstMatrix
    EWISE = "ewise"           # elementwise binary (ALU two-source)
    EWISE_IMM = "ewise_imm"   # elementwise with scalar immediate
    UNARY = "unary"           # elementwise unary (relu, transcendentals)
    RANDOM = "random"         # uniform [0,1) vector
    CONCAT = "concat"
    SLICE = "slice"
    OUTPUT = "output"


@dataclass
class GraphNode:
    """One node of the model's computation DAG."""

    node_id: int
    kind: NodeKind
    length: int
    inputs: list[int] = field(default_factory=list)
    alu_op: Optional[AluOp] = None
    name: str = ""
    matrix_name: str = ""
    values: Optional[np.ndarray] = None      # CONST payload (float)
    immediate: float = 0.0                   # EWISE_IMM payload
    slice_start: int = 0                     # SLICE payload


class Model:
    """A model under construction: the DAG plus named matrices."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.nodes: list[GraphNode] = []
        self.matrices: dict[str, np.ndarray] = {}
        self.input_names: dict[str, int] = {}
        self.output_names: dict[str, int] = {}

    @classmethod
    def create(cls, name: str) -> "Model":
        return cls(name)

    def _add(self, kind: NodeKind, length: int, inputs: Sequence[int] = (),
             **attrs) -> GraphNode:
        if length <= 0:
            raise ValueError(f"vector length must be positive, got {length}")
        node = GraphNode(len(self.nodes), kind, length, list(inputs), **attrs)
        self.nodes.append(node)
        return node

    def node(self, node_id: int) -> GraphNode:
        return self.nodes[node_id]

    def consumers(self) -> dict[int, list[int]]:
        """Map node id -> ids of nodes that consume it."""
        out: dict[int, list[int]] = {n.node_id: [] for n in self.nodes}
        for n in self.nodes:
            for src in n.inputs:
                out[src].append(n.node_id)
        return out

    def validate(self) -> None:
        """Check the DAG is well formed before compilation."""
        if not self.output_names:
            raise ValueError(f"model {self.name!r} has no outputs")
        for n in self.nodes:
            for src in n.inputs:
                if not 0 <= src < n.node_id:
                    raise ValueError(
                        f"node {n.node_id} has a non-topological input {src}")


@dataclass(frozen=True)
class VectorExpr:
    """A handle to a DAG node, with operator sugar."""

    model: Model
    node_id: int

    @property
    def length(self) -> int:
        return self.model.node(self.node_id).length

    def _binary(self, other: "VectorExpr | float | int", op: AluOp) -> "VectorExpr":
        if isinstance(other, (int, float)):
            node = self.model._add(NodeKind.EWISE_IMM, self.length,
                                   [self.node_id], alu_op=op,
                                   immediate=float(other))
            return VectorExpr(self.model, node.node_id)
        if other.model is not self.model:
            raise ValueError("cannot mix vectors from different models")
        if other.length != self.length:
            raise ValueError(
                f"elementwise length mismatch: {self.length} vs {other.length}")
        node = self.model._add(NodeKind.EWISE, self.length,
                               [self.node_id, other.node_id], alu_op=op)
        return VectorExpr(self.model, node.node_id)

    def __add__(self, other: "VectorExpr | float | int") -> "VectorExpr":
        return self._binary(other, AluOp.ADD)

    def __radd__(self, other: float | int) -> "VectorExpr":
        return self._binary(other, AluOp.ADD)

    def __sub__(self, other: "VectorExpr | float | int") -> "VectorExpr":
        return self._binary(other, AluOp.SUB)

    def __mul__(self, other: "VectorExpr | float | int") -> "VectorExpr":
        return self._binary(other, AluOp.MUL)

    def __rmul__(self, other: float | int) -> "VectorExpr":
        return self._binary(other, AluOp.MUL)

    def __truediv__(self, other: "VectorExpr | float | int") -> "VectorExpr":
        return self._binary(other, AluOp.DIV)

    def __getitem__(self, index: slice) -> "VectorExpr":
        if not isinstance(index, slice) or index.step not in (None, 1):
            raise TypeError("vectors support contiguous slices only")
        start = index.start or 0
        stop = index.stop if index.stop is not None else self.length
        if not 0 <= start < stop <= self.length:
            raise IndexError(f"slice [{start}:{stop}] out of range "
                             f"for length {self.length}")
        node = self.model._add(NodeKind.SLICE, stop - start, [self.node_id],
                               slice_start=start)
        return VectorExpr(self.model, node.node_id)


class InVector(VectorExpr):
    """A named model input."""

    @classmethod
    def create(cls, model: Model, length: int, name: str) -> "InVector":
        if name in model.input_names:
            raise ValueError(f"duplicate input name {name!r}")
        node = model._add(NodeKind.INPUT, length, name=name)
        model.input_names[name] = node.node_id
        return cls(model, node.node_id)


class OutVector:
    """A named model output; bind a computation with :meth:`assign`."""

    def __init__(self, model: Model, length: int, name: str) -> None:
        self.model = model
        self.length = length
        self.name = name
        self.node_id: Optional[int] = None

    @classmethod
    def create(cls, model: Model, length: int, name: str) -> "OutVector":
        if name in model.output_names:
            raise ValueError(f"duplicate output name {name!r}")
        return cls(model, length, name)

    def assign(self, expr: VectorExpr) -> None:
        if self.node_id is not None:
            raise ValueError(f"output {self.name!r} already assigned")
        if expr.length != self.length:
            raise ValueError(
                f"output {self.name!r} expects length {self.length}, "
                f"got {expr.length}")
        node = self.model._add(NodeKind.OUTPUT, self.length, [expr.node_id],
                               name=self.name)
        self.node_id = node.node_id
        self.model.output_names[self.name] = node.node_id


class ConstMatrix:
    """A constant weight matrix stored in crossbars.

    The matrix maps a length-``rows`` vector to a length-``cols`` vector:
    ``y = x @ W`` with ``W`` of shape ``(rows, cols)``.
    """

    def __init__(self, model: Model, rows: int, cols: int, name: str,
                 values: np.ndarray) -> None:
        self.model = model
        self.rows = rows
        self.cols = cols
        self.name = name
        arr = np.asarray(values, dtype=np.float64)
        if arr.shape != (rows, cols):
            raise ValueError(
                f"matrix {name!r} expects shape {(rows, cols)}, "
                f"got {arr.shape}")
        model.matrices[name] = arr

    @classmethod
    def create(cls, model: Model, rows: int, cols: int, name: str,
               values: np.ndarray | None = None) -> "ConstMatrix":
        if name in model.matrices:
            raise ValueError(f"duplicate matrix name {name!r}")
        if values is None:
            values = np.zeros((rows, cols))
        return cls(model, rows, cols, name, values)

    @property
    def values(self) -> np.ndarray:
        return self.model.matrices[self.name]

    def __matmul__(self, x: VectorExpr) -> VectorExpr:
        if x.model is not self.model:
            raise ValueError("matrix and vector belong to different models")
        if x.length != self.rows:
            raise ValueError(
                f"matrix {self.name!r} expects input length {self.rows}, "
                f"got {x.length}")
        node = self.model._add(NodeKind.MATVEC, self.cols, [x.node_id],
                               matrix_name=self.name)
        return VectorExpr(self.model, node.node_id)

    def __mul__(self, x: VectorExpr) -> VectorExpr:
        """Figure 7 writes ``A*x``; it means matrix-vector multiply."""
        return self.__matmul__(x)


def const_vector(model: Model, values: np.ndarray, name: str = "") -> VectorExpr:
    """A constant vector (e.g. a bias), materialized in tile memory."""
    arr = np.atleast_1d(np.asarray(values, dtype=np.float64))
    node = model._add(NodeKind.CONST, arr.size, values=arr, name=name)
    return VectorExpr(model, node.node_id)


def _unary(x: VectorExpr, op: AluOp) -> VectorExpr:
    node = x.model._add(NodeKind.UNARY, x.length, [x.node_id], alu_op=op)
    return VectorExpr(x.model, node.node_id)


def relu(x: VectorExpr) -> VectorExpr:
    return _unary(x, AluOp.RELU)


def sigmoid(x: VectorExpr) -> VectorExpr:
    return _unary(x, AluOp.SIGMOID)


def tanh(x: VectorExpr) -> VectorExpr:
    return _unary(x, AluOp.TANH)


def exp(x: VectorExpr) -> VectorExpr:
    return _unary(x, AluOp.EXP)


def log(x: VectorExpr) -> VectorExpr:
    return _unary(x, AluOp.LOG)


def log_softmax(x: VectorExpr) -> VectorExpr:
    return _unary(x, AluOp.LOG_SOFTMAX)


def maximum(a: VectorExpr, b: VectorExpr) -> VectorExpr:
    return a._binary(b, AluOp.MAX)


def minimum(a: VectorExpr, b: VectorExpr) -> VectorExpr:
    return a._binary(b, AluOp.MIN)


def concat(parts: Sequence[VectorExpr]) -> VectorExpr:
    """Concatenate vectors (e.g. ``[h, x]`` feeding an LSTM matrix)."""
    if not parts:
        raise ValueError("concat needs at least one vector")
    model = parts[0].model
    for p in parts:
        if p.model is not model:
            raise ValueError("cannot concat vectors from different models")
    length = sum(p.length for p in parts)
    node = model._add(NodeKind.CONCAT, length, [p.node_id for p in parts])
    return VectorExpr(model, node.node_id)


def random_like(x: VectorExpr) -> VectorExpr:
    """A fresh uniform-[0,1) random vector of the same length as ``x``."""
    node = x.model._add(NodeKind.RANDOM, x.length, [x.node_id])
    return VectorExpr(x.model, node.node_id)


def binarize(p: VectorExpr) -> VectorExpr:
    """Stochastic binarization: 1 with probability ``p``, else 0.

    Used by the Boltzmann-machine workloads.  Lowers to RANDOM, SUB, RELU,
    DIV: ``d = p - rand; b = relu(d) / d`` which is exactly 1 when ``d > 0``
    and 0 otherwise (0/0 is 0 in the datapath).
    """
    noise = random_like(p)
    d = p - noise
    return relu(d) / d
