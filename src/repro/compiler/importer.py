"""Graph import: build models from a declarative JSON-style description.

The paper provides ONNX bindings "for further adoption and
interoperability, enabling the compilation of models written in popular
DNN frameworks" (Section 5.1).  ONNX itself is unavailable offline, so
this module provides the equivalent adoption surface: a framework-neutral
dictionary format (JSON-serializable) describing the computation graph,
lowered onto the native frontend.

Format::

    {
      "name": "my_model",
      "inputs":  [{"name": "x", "length": 64}],
      "outputs": [{"name": "out", "source": "logits"}],
      "initializers": {"w0": [[...]], "b0": [...]},   # or numpy arrays
      "nodes": [
        {"op": "matvec",  "name": "h0", "input": "x", "weights": "w0"},
        {"op": "add",     "name": "h1", "inputs": ["h0", "b0"]},
        {"op": "relu",    "name": "h2", "input": "h1"},
        {"op": "concat",  "name": "c",  "inputs": ["h2", "x"]},
        {"op": "slice",   "name": "s",  "input": "c", "start": 0, "stop": 8},
        {"op": "mul_imm", "name": "logits", "input": "s", "value": 0.5}
      ]
    }

Supported ops: ``matvec``, ``add``, ``sub``, ``mul``, ``div``, ``maximum``,
``minimum``, ``relu``, ``sigmoid``, ``tanh``, ``exp``, ``log``,
``log_softmax``, ``concat``, ``slice``, ``add_imm``/``sub_imm``/
``mul_imm``/``div_imm``, ``random``.  1-D initializers referenced as node
inputs become constant vectors.
"""

from __future__ import annotations

import json
from typing import Mapping

import numpy as np

from repro.compiler.frontend import (
    ConstMatrix,
    InVector,
    Model,
    OutVector,
    VectorExpr,
    concat,
    const_vector,
    exp,
    log,
    log_softmax,
    maximum,
    minimum,
    random_like,
    relu,
    sigmoid,
    tanh,
)


class GraphImportError(ValueError):
    """The graph description is malformed."""


_UNARY_OPS = {"relu": relu, "sigmoid": sigmoid, "tanh": tanh, "exp": exp,
              "log": log, "log_softmax": log_softmax}
_BINARY_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b,
    "maximum": maximum,
    "minimum": minimum,
}
_IMM_OPS = {
    "add_imm": lambda a, v: a + v,
    "sub_imm": lambda a, v: a - v,
    "mul_imm": lambda a, v: a * v,
    "div_imm": lambda a, v: a / v,
}


def import_graph(description: Mapping) -> Model:
    """Build a frontend :class:`Model` from a graph description.

    Args:
        description: the dictionary format documented in the module
            docstring (e.g. loaded from JSON).

    Raises:
        GraphImportError: on unknown ops, missing tensors, duplicate
            names, or shape problems surfaced by the frontend.
    """
    name = description.get("name", "imported")
    model = Model.create(name)
    initializers = {
        key: np.asarray(value, dtype=np.float64)
        for key, value in description.get("initializers", {}).items()
    }
    tensors: dict[str, VectorExpr] = {}

    def resolve(ref: str) -> VectorExpr:
        if ref in tensors:
            return tensors[ref]
        if ref in initializers:
            arr = initializers[ref]
            if arr.ndim != 1:
                raise GraphImportError(
                    f"initializer {ref!r} used as a vector must be 1-D")
            tensors[ref] = const_vector(model, arr, ref)
            return tensors[ref]
        raise GraphImportError(f"unknown tensor {ref!r}")

    def define(node_name: str, expr: VectorExpr) -> None:
        if node_name in tensors or node_name in initializers:
            raise GraphImportError(f"duplicate tensor name {node_name!r}")
        tensors[node_name] = expr

    for spec in description.get("inputs", ()):
        define(spec["name"],
               InVector.create(model, int(spec["length"]), spec["name"]))

    for node in description.get("nodes", ()):
        op = node.get("op")
        node_name = node.get("name")
        if not op or not node_name:
            raise GraphImportError(f"node missing op/name: {node!r}")
        if op == "matvec":
            weights_ref = node["weights"]
            if weights_ref not in initializers:
                raise GraphImportError(
                    f"matvec weights {weights_ref!r} not an initializer")
            w = initializers[weights_ref]
            if w.ndim != 2:
                raise GraphImportError(
                    f"matvec weights {weights_ref!r} must be 2-D")
            x = resolve(node["input"])
            mat = ConstMatrix.create(model, w.shape[0], w.shape[1],
                                     weights_ref, w)
            define(node_name, mat @ x)
        elif op in _UNARY_OPS:
            define(node_name, _UNARY_OPS[op](resolve(node["input"])))
        elif op in _BINARY_OPS:
            a, b = (resolve(r) for r in node["inputs"])
            define(node_name, _BINARY_OPS[op](a, b))
        elif op in _IMM_OPS:
            define(node_name, _IMM_OPS[op](resolve(node["input"]),
                                           float(node["value"])))
        elif op == "concat":
            define(node_name, concat([resolve(r) for r in node["inputs"]]))
        elif op == "slice":
            src = resolve(node["input"])
            define(node_name, src[int(node["start"]):int(node["stop"])])
        elif op == "random":
            define(node_name, random_like(resolve(node["like"])))
        else:
            raise GraphImportError(f"unknown op {op!r}")

    outputs = description.get("outputs", ())
    if not outputs:
        raise GraphImportError("graph has no outputs")
    for spec in outputs:
        source = resolve(spec["source"])
        out = OutVector.create(model, source.length, spec["name"])
        out.assign(source)
    return model


def import_graph_json(text: str) -> Model:
    """Build a model from a JSON string of the graph format."""
    return import_graph(json.loads(text))


def import_graph_file(path: str) -> Model:
    """Build a model from a JSON file of the graph format."""
    with open(path) as handle:
        return import_graph(json.load(handle))
