"""Compile-time tile memory planning with guarded location reuse.

Each tile's shared memory is laid out statically: model inputs, constant
vectors, inter-core values, received copies, spill slots, and model
outputs get word ranges.  Transient values can be *recycled* — "reusing
memory locations when there is pipelining" (Section 5.2) — but reuse
across independently-executing cores needs a guard: the valid/count
protocol tags words, not value versions, so a consumer of the *new* value
at a reused address could race a late reader of the *old* one and steal
its count.

The sound rule (enforced by the code generator) is *stream confinement*,
on both sides of the protocol:

* all reads of the old copy and all planned reads of the new copy execute
  on one and the same instruction stream (a core, or the tile control
  unit): program order serializes old reads before new reads, and a new
  read cannot consume the old value because the old reads exhausted its
  count first (full-width reads only);
* the old and new producers also share one stream (not necessarily the
  readers'): the new store is emitted after the old one, so it cannot
  steal the address before the old value was ever written.

Under both conditions the only runtime interleaving is
``old store -> old reads -> new store -> new reads`` with every edge
either program order or a valid/count wait consistent with the global
linearization — no deadlock, no version confusion.

(Weaker guards fail in practice, not just in theory: a dataflow-ancestor
condition lets a new-value reader on another core steal the old count,
and reader-only confinement lets a new *producer* on another core claim
the address before the old producer stores.  Both failures were observed
under fuzzing; see tests/test_memory_reuse.py.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

# A stream: a core (tile, core) or the tile control unit ("tile-ctrl",
# tile).  predicate(producer_stream, reader_streams) -> True when the new
# copy may reuse a block with that provenance.
Stream = tuple
RecyclePredicate = Callable[[Stream, frozenset], bool]


class TileMemoryOverflow(RuntimeError):
    """A tile's data memory cannot hold the planned allocations."""


@dataclass
class _RetiredBlock:
    start: int
    length: int
    producer_stream: Stream
    reader_streams: frozenset


@dataclass
class TileMemoryPlanner:
    """Word allocator for one tile's shared memory."""

    tile_id: int
    capacity_words: int
    next_free: int = 0
    recycled_words: int = 0
    labels: dict[str, tuple[int, int]] = field(default_factory=dict)
    _retired: list[_RetiredBlock] = field(default_factory=list)

    def allocate(self, words: int, label: str = "",
                 recycle_if: RecyclePredicate | None = None) -> int:
        """Reserve ``words`` and return the base address.

        With ``recycle_if``, a retired block of sufficient size whose
        reader set satisfies the predicate is reused; otherwise (or when
        none qualifies) the allocation bumps fresh space.
        """
        if words <= 0:
            raise ValueError("allocation must be at least one word")
        if recycle_if is not None:
            for i, block in enumerate(self._retired):
                if block.length >= words and recycle_if(
                        block.producer_stream, block.reader_streams):
                    base = block.start
                    block.start += words
                    block.length -= words
                    if block.length == 0:
                        del self._retired[i]
                    self.recycled_words += words
                    if label:
                        self.labels[label] = (base, words)
                    return base
        base = self.next_free
        if base + words > self.capacity_words:
            raise TileMemoryOverflow(
                f"tile {self.tile_id}: allocating {words} words at {base} "
                f"exceeds the {self.capacity_words}-word data memory")
        self.next_free += words
        if label:
            self.labels[label] = (base, words)
        return base

    def retire(self, start: int, words: int, producer_stream: Stream,
               reader_streams: frozenset) -> None:
        """Offer a range for reuse, tagged with its provenance."""
        if words <= 0:
            raise ValueError("retire of a non-positive range")
        if start < 0 or start + words > self.next_free:
            raise ValueError(
                f"tile {self.tile_id}: retire of [{start}, {start + words})"
                f" outside the allocated region")
        self._retired.append(
            _RetiredBlock(start, words, producer_stream, reader_streams))

    @property
    def words_used(self) -> int:
        """High-water mark of the bump region (the memory footprint)."""
        return self.next_free


@dataclass
class MemoryPlan:
    """Planners for every tile a program touches."""

    capacity_words: int
    tiles: dict[int, TileMemoryPlanner] = field(default_factory=dict)

    def tile(self, tile_id: int) -> TileMemoryPlanner:
        if tile_id not in self.tiles:
            self.tiles[tile_id] = TileMemoryPlanner(tile_id,
                                                    self.capacity_words)
        return self.tiles[tile_id]

    def usage(self) -> dict[int, int]:
        """Words used per tile (shared-memory sizing studies)."""
        return {tid: p.words_used for tid, p in self.tiles.items()}
