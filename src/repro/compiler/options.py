"""Compiler options, including the ablation switches of Table 8."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CompilerOptions:
    """Knobs controlling the backend passes.

    Attributes:
        partition: ``"affinity"`` uses the paper's placement priorities
            (same-output, then same-input, then producer-consumer);
            ``"random"`` shuffles MVM tiles before packing — the Table 8
            graph-partitioning baseline.
        coalesce_mvms: fuse independent MVMs on different MVMUs of a core
            into one instruction (Section 5.3.2); disabling it is the
            Table 8 MVM-coalescing baseline.
        schedule: ``"reverse_postorder"`` is the paper's low-pressure
            linearization (Section 5.3.1); ``"naive"`` linearizes in graph
            construction order, the high-pressure baseline of Figure 9(b).
        input_shuffle: let sliding-window (CNN) code use the MVM
            filter/stride operands instead of re-copying reused inputs
            (Section 3.2.3); the Table 8 input-shuffling ablation.
        memory_reuse: recycle shared-memory locations whose values were
            fully consumed, under the stream-confinement guard
            (Section 5.2's "reusing memory locations when there is
            pipelining"; see :mod:`repro.compiler.memory`).
        seed: RNG seed for the random-partition baseline.
        verify: run the static verifier (:mod:`repro.analysis`) over the
            generated program and raise
            :class:`repro.analysis.VerificationError` on any
            error-severity diagnostic.  Off by default: the checkers are
            a compile-time cost, and every program is also guarded
            dynamically by the engine's tape cross-check.
    """

    partition: str = "affinity"
    coalesce_mvms: bool = True
    schedule: str = "reverse_postorder"
    input_shuffle: bool = True
    memory_reuse: bool = True
    seed: int = 0
    verify: bool = False

    def __post_init__(self) -> None:
        if self.partition not in ("affinity", "random"):
            raise ValueError(f"unknown partition mode {self.partition!r}")
        if self.schedule not in ("reverse_postorder", "naive"):
            raise ValueError(f"unknown schedule mode {self.schedule!r}")
