"""Hierarchical graph partitioning (Section 5.2, Figure 8).

MVM tiles are packed onto MVMUs, cores, and tiles in an order that realizes
the paper's placement priorities: tiles that feed the same output segment
("same outputs") are adjacent, tiles of the same matrix reading the same
input segment come next to each other ("same inputs"), and consecutive
matvecs of the model ("producer-consumer") pack into neighbouring
cores/tiles.  The ``random`` mode shuffles the packing order — the Table 8
baseline showing how much the affinity order saves in loads/stores/sends/
receives.

Non-MVM tasks are placed where their operands are produced: each task goes
to the core that produces its first placed input, walking the graph in
topological order.  Memory-resident tasks (inputs/constants) get a home
tile chosen from their first consumer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.arch.config import PumaConfig
from repro.compiler.options import CompilerOptions
from repro.compiler.tiling import Task, TaskKind, TiledGraph


@dataclass(frozen=True)
class Placement:
    """Where a task executes (or resides, for memory tasks)."""

    tile: int
    core: int = -1      # -1 for memory-resident tasks
    mvmu: int = -1      # only MVM tiles occupy an MVMU

    @property
    def core_key(self) -> tuple[int, int]:
        return (self.tile, self.core)


@dataclass
class PartitionResult:
    """Placements plus occupancy statistics."""

    placements: dict[int, Placement] = field(default_factory=dict)
    num_tiles: int = 0
    num_cores: int = 0
    num_mvmus: int = 0

    def of(self, task_id: int) -> Placement:
        return self.placements[task_id]


def _pack_mvm_tiles(order: list[Task], config: PumaConfig,
                    result: PartitionResult) -> None:
    """Assign MVM tiles to (tile, core, mvmu) slots in packing order.

    Tile ids are global across the multi-node system; consecutive tiles
    fill one node before spilling to the next, so the affinity order also
    keeps inter-node traffic low.
    """
    mvmus_per_core = config.core.num_mvmus
    cores_per_tile = config.tile.num_cores
    max_tiles = config.total_tiles
    # Invocations of the same weight block share one physical MVMU
    # (weights are stationary; the LSTM re-fires its gate matrix every
    # step rather than duplicating it).
    slot_of_weights: dict[tuple, Placement] = {}
    slot = 0
    for task in order:
        shared = (slot_of_weights.get(task.weight_key)
                  if task.weight_key is not None else None)
        if shared is not None:
            result.placements[task.task_id] = shared
            continue
        mvmu = slot % mvmus_per_core
        core = (slot // mvmus_per_core) % cores_per_tile
        tile = slot // (mvmus_per_core * cores_per_tile)
        if tile >= max_tiles:
            raise ValueError(
                f"model needs more than "
                f"{max_tiles * cores_per_tile * mvmus_per_core} MVMUs, "
                f"the {config.num_nodes}-node system's capacity")
        placement = Placement(tile, core, mvmu)
        result.placements[task.task_id] = placement
        if task.weight_key is not None:
            slot_of_weights[task.weight_key] = placement
        slot += 1
    result.num_mvmus = slot


def partition(graph: TiledGraph, config: PumaConfig,
              options: CompilerOptions | None = None) -> PartitionResult:
    """Place every task of the tiled graph."""
    options = options if options is not None else CompilerOptions()
    result = PartitionResult()

    mvm_tiles = [t for t in graph.tasks if t.kind == TaskKind.MVM_TILE]
    # Affinity order: group by matvec output segment (same outputs
    # adjacent), then by input segment (same inputs adjacent).  Tasks were
    # created in (node, out_seg, in_seg) order, so sorting by matvec_key
    # plus creation order realizes the paper's priorities.
    order = sorted(mvm_tiles, key=lambda t: (t.matvec_key, t.task_id))
    if options.partition == "random":
        rng = random.Random(options.seed)
        order = order[:]
        rng.shuffle(order)
    _pack_mvm_tiles(order, config, result)

    # Compute tasks follow their operands; walk in topological (id) order.
    for task in graph.tasks:
        if task.kind == TaskKind.MVM_TILE:
            continue
        if task.kind in (TaskKind.INPUT_SEG, TaskKind.CONST_SEG):
            continue  # resolved after consumers are placed
        placed = None
        for piece in task.inputs:
            p = result.placements.get(piece.task_id)
            if p is not None and p.core >= 0:
                placed = p
                break
        if placed is None:
            placed = Placement(0, 0)
        result.placements[task.task_id] = Placement(placed.tile, placed.core)

    # Memory-resident tasks live on the tile of their first consumer.
    # All segments of one *input* share a home: the input vector occupies
    # one contiguous block, so its layout must name a single tile.
    consumers = graph.consumers()
    input_home: dict[int, int] = {}
    for task in graph.tasks:
        if task.kind not in (TaskKind.INPUT_SEG, TaskKind.CONST_SEG):
            continue
        home = None
        if task.kind == TaskKind.INPUT_SEG:
            home = input_home.get(task.node_id)
        if home is None:
            home = 0
            for consumer in consumers[task.task_id]:
                p = result.placements.get(consumer)
                if p is not None:
                    home = p.tile
                    break
            if task.kind == TaskKind.INPUT_SEG:
                input_home[task.node_id] = home
        result.placements[task.task_id] = Placement(home)

    used_cores = {p.core_key for p in result.placements.values()
                  if p.core >= 0}
    used_tiles = {p.tile for p in result.placements.values()}
    result.num_cores = len(used_cores)
    result.num_tiles = len(used_tiles)
    return result
