"""Register allocation support (Section 5.4).

The allocator manages one core's general-purpose register space as a
first-fit free list of contiguous ranges (values are vectors, so ranges —
not single registers — are the allocation unit).  Code generation performs
liveness itself (it knows every consumer's position from the global
schedule) and calls :meth:`allocate`/:meth:`release`; when allocation
fails, codegen picks a victim and spills it to tile memory, re-loading on
demand — the events behind Table 8's "% accesses from spilled registers".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.config import CoreConfig


class RegisterExhaustion(RuntimeError):
    """No allocation is possible even after spilling everything legal."""


@dataclass
class AllocatorStats:
    """Register-file pressure statistics for one core."""

    allocations: int = 0
    spill_stores: int = 0
    spill_loads: int = 0
    peak_words: int = 0
    register_reads: int = 0
    register_writes: int = 0

    @property
    def spilled_access_fraction(self) -> float:
        """Fraction of register accesses served by spilled values —
        the Table 8 register-pressure metric."""
        total = self.register_reads + self.register_writes
        spill = self.spill_loads + self.spill_stores
        if total + spill == 0:
            return 0.0
        return spill / (total + spill)


@dataclass
class _FreeBlock:
    start: int
    length: int


@dataclass
class RegisterAllocator:
    """First-fit range allocator over one core's general registers."""

    config: CoreConfig
    stats: AllocatorStats = field(default_factory=AllocatorStats)

    def __post_init__(self) -> None:
        self._base = self.config.general_base
        self._capacity = self.config.num_general_registers
        self._free: list[_FreeBlock] = [_FreeBlock(self._base, self._capacity)]
        self._in_use = 0

    @property
    def words_in_use(self) -> int:
        return self._in_use

    @property
    def capacity(self) -> int:
        return self._capacity

    def allocate(self, width: int) -> int | None:
        """Reserve ``width`` contiguous registers; None when impossible.

        Best-fit: the smallest adequate hole is used, so values dropped
        into holes left by same-width predecessors refill them exactly —
        the dominant pattern when vector widths repeat — which keeps
        fragmentation from stranding free space between pinned operands.
        """
        if width <= 0:
            raise ValueError("allocation width must be positive")
        best = None
        for i, block in enumerate(self._free):
            if block.length >= width and (
                    best is None or block.length < self._free[best].length):
                best = i
        if best is None:
            return None
        block = self._free[best]
        start = block.start
        block.start += width
        block.length -= width
        if block.length == 0:
            del self._free[best]
        self._in_use += width
        self.stats.allocations += 1
        self.stats.peak_words = max(self.stats.peak_words, self._in_use)
        return start

    def release(self, start: int, width: int) -> None:
        """Return a range to the free list, coalescing neighbours."""
        if width <= 0:
            raise ValueError("release width must be positive")
        if not (self._base <= start
                and start + width <= self._base + self._capacity):
            raise ValueError(
                f"release of [{start}, {start + width}) outside the "
                f"general-register space")
        self._in_use -= width
        new_block = _FreeBlock(start, width)
        idx = 0
        while idx < len(self._free) and self._free[idx].start < start:
            idx += 1
        self._free.insert(idx, new_block)
        self._coalesce(max(0, idx - 1))

    def _coalesce(self, idx: int) -> None:
        while idx + 1 < len(self._free):
            a, b = self._free[idx], self._free[idx + 1]
            if a.start + a.length > b.start:
                raise AssertionError("overlapping free blocks: double free?")
            if a.start + a.length == b.start:
                a.length += b.length
                del self._free[idx + 1]
            else:
                idx += 1
                if idx + 1 >= len(self._free):
                    break
