"""Global instruction scheduling (Section 5.3).

The whole task graph is linearized *at once* — not per core — so that the
order each core/tile sees is the restriction of one global order.  With the
blocking shared-memory protocol (Section 4.1.1), per-core linearizations
that are mutually inconsistent can deadlock (Figure 10); a single global
linear order is the paper's cure (Section 5.3.3).

The order itself is a depth-first postorder over the dependence DAG
("reverse postorder" in Figure 9's terms): a task is emitted immediately
after the subgraph producing its operands, which keeps values short-lived
and register pressure low.  The ``naive`` mode emits tasks in construction
order instead — Figure 9(b)'s high-pressure linearization — and exists for
the register-pressure ablation.
"""

from __future__ import annotations

from repro.compiler.options import CompilerOptions
from repro.compiler.tiling import TaskKind, TiledGraph


def _postorder(graph: TiledGraph) -> list[int]:
    """Iterative DFS postorder from the output tasks."""
    visited = [False] * len(graph.tasks)
    order: list[int] = []
    roots = [t.task_id for t in graph.tasks if t.kind == TaskKind.OUTPUT_SEG]
    # Also keep tasks not reachable from any output (dead code) at the end;
    # they are compiled anyway so the static instruction counts match the
    # written program.
    roots += [t.task_id for t in graph.tasks]

    for root in roots:
        if visited[root]:
            continue
        stack: list[tuple[int, int]] = [(root, 0)]
        visited[root] = True
        while stack:
            task_id, child_idx = stack.pop()
            inputs = graph.task(task_id).inputs
            advanced = False
            while child_idx < len(inputs):
                child = inputs[child_idx].task_id
                child_idx += 1
                if not visited[child]:
                    visited[child] = True
                    stack.append((task_id, child_idx))
                    stack.append((child, 0))
                    advanced = True
                    break
            if not advanced and child_idx >= len(inputs):
                order.append(task_id)
    return order


def schedule(graph: TiledGraph,
             options: CompilerOptions | None = None) -> list[int]:
    """Produce the global linearization of the task graph.

    Returns:
        Task ids in execution order; every task appears exactly once and
        after all of its inputs.
    """
    options = options if options is not None else CompilerOptions()
    if options.schedule == "naive":
        return [t.task_id for t in graph.tasks]
    order = _postorder(graph)
    _check_topological(graph, order)
    return order


def _check_topological(graph: TiledGraph, order: list[int]) -> None:
    position = {task_id: i for i, task_id in enumerate(order)}
    if len(position) != len(graph.tasks):
        raise AssertionError("schedule dropped or duplicated tasks")
    for task in graph.tasks:
        for piece in task.inputs:
            if position[piece.task_id] >= position[task.task_id]:
                raise AssertionError(
                    f"task {task.task_id} scheduled before its input "
                    f"{piece.task_id}")


def max_live_values(graph: TiledGraph, order: list[int]) -> int:
    """Peak number of simultaneously live task values under ``order``.

    The register-pressure metric of Figure 9: a value becomes live when
    produced and dies after its last consumer executes.
    """
    position = {task_id: i for i, task_id in enumerate(order)}
    last_use: dict[int, int] = {}
    for task in graph.tasks:
        for piece in task.inputs:
            last_use[piece.task_id] = max(
                last_use.get(piece.task_id, -1), position[task.task_id])
    live = 0
    peak = 0
    expiring: dict[int, int] = {}
    for step, task_id in enumerate(order):
        live += 1
        peak = max(peak, live)
        death = last_use.get(task_id, step)
        expiring[death] = expiring.get(death, 0) + 1
        live -= expiring.pop(step, 0)
    return peak
