"""Tiling: lower the computation DAG to MVMU-sized tasks (Section 5.2).

"The compiler divides tensors into 2D tiles, each the size of one MVMU,
with appropriate padding, and divides the corresponding vectors and
operations in the model accordingly."

Every vector is segmented at multiples of the MVMU dimension.  A MATVEC
becomes a grid of :data:`TaskKind.MVM_TILE` tasks (one per 2-D weight tile,
each bound to one MVMU for the model's lifetime) feeding a
:data:`TaskKind.REDUCE` per output segment that sums the partial products.
Elementwise and unary operations become one task per segment.  CONCAT and
SLICE become GATHER tasks that assemble an output segment from pieces of
input segments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.arch.config import PumaConfig
from repro.compiler.frontend import Model, NodeKind
from repro.isa.opcodes import AluOp


class TaskKind(enum.Enum):
    INPUT_SEG = "input"     # one segment of a model input (memory resident)
    CONST_SEG = "const"     # one segment of a constant vector
    MVM_TILE = "mvm"        # one 2-D weight tile on one MVMU
    REDUCE = "reduce"       # sum of MVM partials for one output segment
    EWISE = "ewise"         # elementwise binary over one segment
    EWISE_IMM = "ewise_imm"
    UNARY = "unary"
    RANDOM = "random"
    GATHER = "gather"       # assemble a segment from pieces (concat/slice)
    OUTPUT_SEG = "output"   # store one output segment at its final address


@dataclass(frozen=True)
class Piece:
    """A slice of a producer task's value: ``producer[offset:offset+length]``."""

    task_id: int
    offset: int
    length: int


@dataclass
class Task:
    """One segment-level operation in the tiled graph."""

    task_id: int
    kind: TaskKind
    width: int                       # output width (<= mvmu_dim)
    inputs: list[Piece] = field(default_factory=list)
    alu_op: Optional[AluOp] = None
    weights: Optional[np.ndarray] = None   # (dim, dim) ints for MVM_TILE
    in_width: int = 0                      # used rows of an MVM tile
    const_values: Optional[np.ndarray] = None
    immediate: int = 0
    name: str = ""                   # input/output name
    node_id: int = -1                # provenance
    seg_index: int = 0
    matvec_key: tuple[str, int, int] | None = None  # (matrix, out_seg, node)
    # All MVM invocations of one weight block share one physical MVMU:
    # crossbars are written once at configuration time (Section 3.2.5) and
    # re-fired for every use (LSTM steps, repeated layers).
    weight_key: tuple[str, int, int] | None = None  # (matrix, in_seg, out_seg)

    def input_ids(self) -> list[int]:
        return [p.task_id for p in self.inputs]


@dataclass
class TiledGraph:
    """The segment-level task graph plus vector segment bookkeeping."""

    tasks: list[Task] = field(default_factory=list)
    # node_id -> ordered task ids producing that node's segments
    node_segments: dict[int, list[int]] = field(default_factory=dict)
    # node_id -> segment start offsets (parallel to node_segments)
    node_offsets: dict[int, list[int]] = field(default_factory=dict)
    input_nodes: dict[str, int] = field(default_factory=dict)
    output_nodes: dict[str, int] = field(default_factory=dict)

    def add(self, task: Task) -> Task:
        task.task_id = len(self.tasks)
        self.tasks.append(task)
        return task

    def task(self, task_id: int) -> Task:
        return self.tasks[task_id]

    def consumers(self) -> dict[int, list[int]]:
        """Map task id -> consumer task ids (with multiplicity)."""
        out: dict[int, list[int]] = {t.task_id: [] for t in self.tasks}
        for t in self.tasks:
            if t.kind == TaskKind.RANDOM:
                continue  # length-only dependence, no data consumed
            for piece in t.inputs:
                out[piece.task_id].append(t.task_id)
        return out


def _segment_offsets(length: int, dim: int) -> list[int]:
    return list(range(0, length, dim))


def _pieces_for_range(graph: TiledGraph, node_id: int, start: int,
                      length: int, dim: int) -> list[Piece]:
    """Pieces of ``node_id``'s segments covering [start, start+length)."""
    seg_ids = graph.node_segments[node_id]
    offsets = graph.node_offsets[node_id]
    pieces = []
    remaining = length
    pos = start
    while remaining > 0:
        seg_idx = pos // dim
        seg_start = offsets[seg_idx]
        seg_width = graph.task(seg_ids[seg_idx]).width
        in_seg_off = pos - seg_start
        take = min(remaining, seg_width - in_seg_off)
        pieces.append(Piece(seg_ids[seg_idx], in_seg_off, take))
        pos += take
        remaining -= take
    return pieces


def tile_model(model: Model, config: PumaConfig) -> TiledGraph:
    """Lower a validated model DAG into the segment-level task graph."""
    model.validate()
    dim = config.core.mvmu_dim
    fmt = config.core.fixed_point
    graph = TiledGraph()

    for node in model.nodes:
        offsets = _segment_offsets(node.length, dim)
        seg_ids: list[int] = []

        if node.kind == NodeKind.INPUT:
            for k, off in enumerate(offsets):
                width = min(dim, node.length - off)
                t = graph.add(Task(-1, TaskKind.INPUT_SEG, width,
                                   name=node.name, node_id=node.node_id,
                                   seg_index=k))
                seg_ids.append(t.task_id)
            graph.input_nodes[node.name] = node.node_id

        elif node.kind == NodeKind.CONST:
            values = fmt.quantize(node.values)
            for k, off in enumerate(offsets):
                width = min(dim, node.length - off)
                t = graph.add(Task(-1, TaskKind.CONST_SEG, width,
                                   const_values=values[off:off + width],
                                   name=node.name, node_id=node.node_id,
                                   seg_index=k))
                seg_ids.append(t.task_id)

        elif node.kind == NodeKind.MATVEC:
            weights = fmt.quantize(model.matrices[node.matrix_name])
            src = node.inputs[0]
            src_offsets = graph.node_offsets[src]
            src_segs = graph.node_segments[src]
            for j, out_off in enumerate(offsets):
                out_width = min(dim, node.length - out_off)
                partials: list[Piece] = []
                for i, in_off in enumerate(src_offsets):
                    in_width = graph.task(src_segs[i]).width
                    block = np.zeros((dim, dim), dtype=np.int64)
                    block[:in_width, :out_width] = weights[
                        in_off:in_off + in_width, out_off:out_off + out_width]
                    mvm = graph.add(Task(
                        -1, TaskKind.MVM_TILE, out_width,
                        inputs=[Piece(src_segs[i], 0,
                                      graph.task(src_segs[i]).width)],
                        weights=block, in_width=in_width,
                        node_id=node.node_id, seg_index=j,
                        matvec_key=(node.matrix_name, j, node.node_id),
                        weight_key=(node.matrix_name, i, j)))
                    partials.append(Piece(mvm.task_id, 0, out_width))
                reduce_task = graph.add(Task(
                    -1, TaskKind.REDUCE, out_width, inputs=partials,
                    node_id=node.node_id, seg_index=j))
                seg_ids.append(reduce_task.task_id)

        elif node.kind in (NodeKind.EWISE, NodeKind.UNARY,
                           NodeKind.EWISE_IMM, NodeKind.RANDOM):
            kind = {NodeKind.EWISE: TaskKind.EWISE,
                    NodeKind.UNARY: TaskKind.UNARY,
                    NodeKind.EWISE_IMM: TaskKind.EWISE_IMM,
                    NodeKind.RANDOM: TaskKind.RANDOM}[node.kind]
            imm = int(fmt.quantize(node.immediate)) \
                if node.kind == NodeKind.EWISE_IMM else 0
            for k, off in enumerate(offsets):
                width = min(dim, node.length - off)
                pieces = []
                if node.kind != NodeKind.RANDOM:
                    # RANDOM's frontend input only fixes the length; the
                    # task itself consumes no data.
                    for src in node.inputs:
                        src_task = graph.node_segments[src][k]
                        pieces.append(Piece(src_task, 0, width))
                t = graph.add(Task(-1, kind, width, inputs=pieces,
                                   alu_op=node.alu_op, immediate=imm,
                                   node_id=node.node_id, seg_index=k))
                seg_ids.append(t.task_id)

        elif node.kind in (NodeKind.CONCAT, NodeKind.SLICE):
            # Build each output segment from the covering input pieces.
            if node.kind == NodeKind.CONCAT:
                spans = []  # (node_id, start) per element run
                for src in node.inputs:
                    spans.append((src, model.node(src).length))
            for k, off in enumerate(offsets):
                width = min(dim, node.length - off)
                pieces: list[Piece] = []
                if node.kind == NodeKind.SLICE:
                    pieces = _pieces_for_range(
                        graph, node.inputs[0], node.slice_start + off,
                        width, dim)
                else:
                    # Walk the concatenated inputs covering [off, off+width).
                    remaining, pos = width, off
                    for src, src_len in spans:
                        if remaining == 0:
                            break
                        if pos >= src_len:
                            pos -= src_len
                            continue
                        take = min(remaining, src_len - pos)
                        pieces.extend(_pieces_for_range(
                            graph, src, pos, take, dim))
                        remaining -= take
                        pos = 0
                t = graph.add(Task(-1, TaskKind.GATHER, width, inputs=pieces,
                                   node_id=node.node_id, seg_index=k))
                seg_ids.append(t.task_id)

        elif node.kind == NodeKind.OUTPUT:
            src = node.inputs[0]
            for k, off in enumerate(offsets):
                width = min(dim, node.length - off)
                src_task = graph.node_segments[src][k]
                t = graph.add(Task(-1, TaskKind.OUTPUT_SEG, width,
                                   inputs=[Piece(src_task, 0, width)],
                                   name=node.name, node_id=node.node_id,
                                   seg_index=k))
                seg_ids.append(t.task_id)
            graph.output_nodes[node.name] = node.node_id

        else:
            raise ValueError(f"cannot tile node kind {node.kind}")

        graph.node_segments[node.node_id] = seg_ids
        graph.node_offsets[node.node_id] = offsets

    return graph
