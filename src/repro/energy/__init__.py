"""Power, area, and timing models (Table 3) plus design-space exploration."""

from repro.energy.components import (
    ComponentSpec,
    CoreBudget,
    NodeBudget,
    TileBudget,
    core_budget,
    node_budget,
    table3_rows,
    tile_budget,
)
from repro.energy.model import EnergyModel, LatencyModel
from repro.energy.area import NodeMetrics, node_metrics

__all__ = [
    "ComponentSpec",
    "CoreBudget",
    "TileBudget",
    "NodeBudget",
    "core_budget",
    "tile_budget",
    "node_budget",
    "table3_rows",
    "EnergyModel",
    "LatencyModel",
    "NodeMetrics",
    "node_metrics",
]
