"""Node-level efficiency metrics: peak throughput, TOPS/s/mm², TOPS/s/W.

These are the Table 6 numbers for PUMA: 52.31 TOPS/s peak, 0.58 TOPS/s/mm²,
0.84 TOPS/s/W at 90.6 mm² and 62.5 W.  Multiply and add count as two
separate operations (Table 6 footnote).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import PumaConfig
from repro.energy.components import node_budget
from repro.energy.model import mvm_initiation_interval_cycles


@dataclass(frozen=True)
class NodeMetrics:
    """Peak efficiency metrics of one node configuration."""

    peak_tops: float
    power_w: float
    area_mm2: float
    weight_capacity_bytes: int

    @property
    def tops_per_mm2(self) -> float:
        """Peak area efficiency (AE in Table 6)."""
        return self.peak_tops / self.area_mm2

    @property
    def tops_per_w(self) -> float:
        """Peak power efficiency (PE in Table 6)."""
        return self.peak_tops / self.power_w


def node_metrics(config: PumaConfig | None = None) -> NodeMetrics:
    """Compute peak node metrics from a configuration."""
    config = config if config is not None else PumaConfig()
    core = config.core
    node = config.node
    num_mvmus = node.num_tiles * node.tile.num_cores * core.num_mvmus
    ops_per_mvm = 2 * core.mvmu_dim * core.mvmu_dim  # MAC = 2 ops
    input_steps = core.fixed_point.total_bits // core.bits_per_input
    interval_s = (mvm_initiation_interval_cycles(core.mvmu_dim, input_steps)
                  * config.cycle_ns * 1e-9)
    peak_ops = num_mvmus * ops_per_mvm / interval_s
    budget = node_budget(node)
    weight_bits = (num_mvmus * core.mvmu_dim * core.mvmu_dim
                   * core.fixed_point.total_bits)
    return NodeMetrics(
        peak_tops=peak_ops / 1e12,
        power_w=budget.power_w,
        area_mm2=budget.area_mm2,
        weight_capacity_bytes=weight_bits // 8,
    )
