"""Component power/area models calibrated to Table 3.

The paper obtained these numbers from RTL synthesis (IBM 45 nm, scaled to
32 nm), Cacti (memories), and Orion (NoC); PUMAsim consumed them as
constants.  We embed the published values and add the parametric scaling
laws the design-space exploration of Section 7.6 relies on:

* ADC power/area grow exponentially with resolution (SAR converters), and
  resolution is tied to crossbar dimension: ``bits = log2(dim) + cell_bits
  - 1`` (the ISAAC encoding PUMA adopts);
* DAC array and drivers grow linearly with rows;
* the crossbar array itself grows with device count but is tiny next to its
  peripherals;
* VFU power/area grow linearly with lane count;
* memory power/area grow linearly with capacity (the Cacti trend over the
  small capacities swept here).

Published constants are per-component at 1 GHz, 32 nm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import CoreConfig, NodeConfig, PumaConfig, TileConfig

MW = 1e-3  # watts per milliwatt


@dataclass(frozen=True)
class ComponentSpec:
    """One Table 3 row: published power/area plus its parameters."""

    name: str
    power_mw: float
    area_mm2: float
    parameter: str = ""
    specification: str = ""


# Table 3, transcribed.
TABLE3: dict[str, ComponentSpec] = {
    "control_pipeline": ComponentSpec("Control Pipeline", 0.25, 0.0033,
                                      "# stages", "3"),
    "instruction_memory": ComponentSpec("Instruction Memory", 1.52, 0.0031,
                                        "capacity", "4KB"),
    "register_file": ComponentSpec("Register File", 0.477, 0.00192,
                                   "capacity", "1KB"),
    "mvmu": ComponentSpec("MVMU", 19.09, 0.012, "# per core / dimensions",
                          "2 / 128x128"),
    "vfu": ComponentSpec("VFU", 1.90, 0.004, "width", "1"),
    "sfu": ComponentSpec("SFU", 0.055, 0.0006, "-", "-"),
    "core": ComponentSpec("Core", 42.37, 0.036, "# per tile", "8"),
    "tile_control_unit": ComponentSpec("Tile Control Unit", 0.5, 0.00145,
                                       "-", "-"),
    "tile_instruction_memory": ComponentSpec("Tile Instruction Memory", 1.91,
                                             0.0054, "capacity", "8KB"),
    "tile_data_memory": ComponentSpec("Tile Data Memory", 17.66, 0.086,
                                      "capacity / technology", "64KB eDRAM"),
    "tile_memory_bus": ComponentSpec("Tile Memory Bus", 7.0, 0.090,
                                     "width", "384 bits"),
    "tile_attribute_memory": ComponentSpec("Tile Attribute Memory", 2.77,
                                           0.012, "# entries / technology",
                                           "32K eDRAM"),
    "tile_receive_buffer": ComponentSpec("Tile Receive Buffer", 9.14, 0.0044,
                                         "# fifos / depth", "16 / 2"),
    "tile": ComponentSpec("Tile", 373.8, 0.479, "# per node", "138"),
    "noc": ComponentSpec("On-chip Network", 570.63, 1.622,
                         "flit_size / ports / conc", "32 / 4 / 4"),
    "node": ComponentSpec("Node", 62500.0, 90.638, "-", "-"),
    "offchip_network": ComponentSpec("Off-chip Network (per node)", 10400.0,
                                     22.88, "type / link bandwidth",
                                     "HyperTransport / 6.4 GB/sec"),
}

# Reference design point the constants were published for.
_REF_DIM = 128
_REF_CELL_BITS = 2
_REF_NUM_MVMUS = 2
_REF_VFU_WIDTH = 1
_REF_RF_BYTES = 1024
_REF_CORES_PER_TILE = 8
_REF_SMEM_BYTES = 65536

# MVMU internal energy/area partition (calibration; ADC-dominated per the
# ISAAC analysis the paper builds on).
_MVMU_ADC_POWER_FRACTION = 0.60
_MVMU_DAC_POWER_FRACTION = 0.25
_MVMU_XBAR_POWER_FRACTION = 0.15
_MVMU_ADC_AREA_FRACTION = 0.50
_MVMU_DAC_AREA_FRACTION = 0.30
_MVMU_XBAR_AREA_FRACTION = 0.20


def adc_bits_for(dim: int, cell_bits: int) -> int:
    """ADC resolution required by a ``dim``-row crossbar of ``cell_bits``
    cells with 1-bit input slicing (ISAAC encoding: one bit saved)."""
    return max(1, int(math.ceil(math.log2(max(dim, 2)))) + cell_bits - 1)


def mvmu_power_mw(dim: int = _REF_DIM, cell_bits: int = _REF_CELL_BITS) -> float:
    """MVMU power scaled from the reference point.

    ADC count is fixed (one per crossbar slice, shared across columns), so
    ADC power scales as ``2**bits``; DAC/driver power scales with rows; the
    crossbar term scales with device count.
    """
    ref = TABLE3["mvmu"].power_mw
    ref_bits = adc_bits_for(_REF_DIM, _REF_CELL_BITS)
    bits = adc_bits_for(dim, cell_bits)
    adc = ref * _MVMU_ADC_POWER_FRACTION * (2.0 ** (bits - ref_bits))
    dac = ref * _MVMU_DAC_POWER_FRACTION * (dim / _REF_DIM)
    xbar = ref * _MVMU_XBAR_POWER_FRACTION * (dim / _REF_DIM) ** 2
    return adc + dac + xbar


def mvmu_area_mm2(dim: int = _REF_DIM, cell_bits: int = _REF_CELL_BITS) -> float:
    """MVMU area scaled from the reference point (see :func:`mvmu_power_mw`)."""
    ref = TABLE3["mvmu"].area_mm2
    ref_bits = adc_bits_for(_REF_DIM, _REF_CELL_BITS)
    bits = adc_bits_for(dim, cell_bits)
    adc = ref * _MVMU_ADC_AREA_FRACTION * (2.0 ** (bits - ref_bits))
    dac = ref * _MVMU_DAC_AREA_FRACTION * (dim / _REF_DIM)
    xbar = ref * _MVMU_XBAR_AREA_FRACTION * (dim / _REF_DIM) ** 2
    return adc + dac + xbar


@dataclass(frozen=True)
class CoreBudget:
    """Power/area roll-up of one core."""

    power_mw: float
    area_mm2: float
    mvmu_power_mw: float
    mvmu_area_mm2: float


def core_budget(core: CoreConfig) -> CoreBudget:
    """Compute a core's power/area from its configuration."""
    mvmu_p = mvmu_power_mw(core.mvmu_dim, core.bits_per_cell)
    mvmu_a = mvmu_area_mm2(core.mvmu_dim, core.bits_per_cell)
    vfu_p = TABLE3["vfu"].power_mw * core.vfu_width / _REF_VFU_WIDTH
    vfu_a = TABLE3["vfu"].area_mm2 * core.vfu_width / _REF_VFU_WIDTH
    rf_bytes = core.num_general_registers * 2
    rf_scale = rf_bytes / _REF_RF_BYTES
    power = (TABLE3["control_pipeline"].power_mw
             + TABLE3["instruction_memory"].power_mw
             + TABLE3["register_file"].power_mw * rf_scale
             + core.num_mvmus * mvmu_p
             + vfu_p
             + TABLE3["sfu"].power_mw)
    area = (TABLE3["control_pipeline"].area_mm2
            + TABLE3["instruction_memory"].area_mm2
            + TABLE3["register_file"].area_mm2 * rf_scale
            + core.num_mvmus * mvmu_a
            + vfu_a
            + TABLE3["sfu"].area_mm2)
    return CoreBudget(power, area, mvmu_p, mvmu_a)


@dataclass(frozen=True)
class TileBudget:
    """Power/area roll-up of one tile."""

    power_mw: float
    area_mm2: float
    core: CoreBudget


def tile_budget(tile: TileConfig) -> TileBudget:
    """Compute a tile's power/area from its configuration.

    Shared memory and attribute memory scale with capacity, which is what
    the shared-memory-sizing ablation of Table 8 measures.
    """
    core = core_budget(tile.core)
    smem_scale = tile.shared_memory_bytes / _REF_SMEM_BYTES
    attr_scale = tile.attribute_entries / 32768
    fifo_scale = ((tile.receive_fifos * tile.receive_fifo_depth)
                  / (16 * 2))
    power = (tile.num_cores * core.power_mw
             + TABLE3["tile_control_unit"].power_mw
             + TABLE3["tile_instruction_memory"].power_mw
             + TABLE3["tile_data_memory"].power_mw * smem_scale
             + TABLE3["tile_memory_bus"].power_mw
             + TABLE3["tile_attribute_memory"].power_mw * attr_scale
             + TABLE3["tile_receive_buffer"].power_mw * fifo_scale)
    area = (tile.num_cores * core.area_mm2
            + TABLE3["tile_control_unit"].area_mm2
            + TABLE3["tile_instruction_memory"].area_mm2
            + TABLE3["tile_data_memory"].area_mm2 * smem_scale
            + TABLE3["tile_memory_bus"].area_mm2
            + TABLE3["tile_attribute_memory"].area_mm2 * attr_scale
            + TABLE3["tile_receive_buffer"].area_mm2 * fifo_scale)
    return TileBudget(power, area, core)


@dataclass(frozen=True)
class NodeBudget:
    """Power/area roll-up of one node."""

    power_w: float
    area_mm2: float
    tile: TileBudget


def node_budget(node: NodeConfig) -> NodeBudget:
    """Compute a node's power/area from its configuration."""
    tile = tile_budget(node.tile)
    power_mw = (node.num_tiles * tile.power_mw
                + TABLE3["noc"].power_mw
                + TABLE3["offchip_network"].power_mw)
    area = (node.num_tiles * tile.area_mm2
            + TABLE3["noc"].area_mm2
            + TABLE3["offchip_network"].area_mm2)
    return NodeBudget(power_mw * MW, area, tile)


def table3_rows(config: PumaConfig | None = None) -> list[dict[str, object]]:
    """Regenerate Table 3: published constants plus model roll-ups.

    Roll-up rows (Core, Tile, Node) are recomputed from the configuration so
    that the test suite can check the model against the published totals.
    """
    config = config if config is not None else PumaConfig()
    core = core_budget(config.core)
    tile = tile_budget(config.tile)
    node = node_budget(config.node)
    rows = []
    for key, spec in TABLE3.items():
        row = {
            "component": spec.name,
            "power_mw": spec.power_mw,
            "area_mm2": spec.area_mm2,
            "parameter": spec.parameter,
            "specification": spec.specification,
        }
        if key == "core":
            row["model_power_mw"] = core.power_mw
            row["model_area_mm2"] = core.area_mm2
        elif key == "tile":
            row["model_power_mw"] = tile.power_mw
            row["model_area_mm2"] = tile.area_mm2
        elif key == "node":
            row["model_power_mw"] = node.power_w / MW
            row["model_area_mm2"] = node.area_mm2
        rows.append(row)
    return rows
