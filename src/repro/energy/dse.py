"""Design-space exploration (Figure 12).

Sweeps tile-level peak area efficiency (GOPS/s/mm²) and power efficiency
(GOPS/s/W) across the five design parameters of Section 7.6, evaluating the
paper's synthetic benchmark: *an MVM operation on each MVMU, followed by a
VFU operation, then a ROM-Embedded RAM look-up*.

Per-iteration timing of one core:

* the pipelined MVMUs sustain one (coalesced) MVM per initiation interval;
* the VFU tail — the vector op plus the ROM look-up (two ROM phases) —
  depends on the MVM results, so it serializes after the MVM issue slot;
* the iteration streams operands through the tile's shared memory: inputs
  and results for every stage, six passes of ``num_mvmus x dim`` words;
  the 384-bit bus is the shared-resource ceiling that ends core scaling
  ("until shared memory bandwidth becomes the bottleneck").

Every sweep holds the other parameters at the sweet spot found by
:func:`sweet_spot` (cf. the paper's methodology).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import PumaConfig
from repro.energy.components import tile_budget
from repro.energy.model import (
    BUS_WORDS_PER_CYCLE,
    mvm_initiation_interval_cycles,
)

# VFU passes per iteration: the vector op plus the ROM look-up, which
# costs two VFU-coupled phases (probe + interpolate).
_VFU_PASSES = 3
# Shared-memory traffic per core per iteration, in vectors of
# num_mvmus * dim words: stage inputs and outputs for MVM, VFU, and ROM.
_MEMORY_PASSES = 6


@dataclass(frozen=True)
class DesignPoint:
    """One configuration's efficiency under the synthetic benchmark."""

    mvmu_dim: int
    num_mvmus: int
    vfu_width: int
    num_cores: int
    rf_scale: float
    gops: float
    tile_power_w: float
    tile_area_mm2: float

    @property
    def gops_per_mm2(self) -> float:
        return self.gops / self.tile_area_mm2

    @property
    def gops_per_w(self) -> float:
        return self.gops / self.tile_power_w


def _config_for(dim: int, mvmus: int, vfu: int, cores: int,
                rf_scale: float) -> PumaConfig:
    base = PumaConfig()
    rf_registers = max(8, int(2 * dim * mvmus * rf_scale))
    config = base.with_core(
        mvmu_dim=dim, num_mvmus=mvmus, vfu_width=vfu,
        num_general_registers=rf_registers)
    return config.with_tile(num_cores=cores, core=config.core)


def evaluate_design(dim: int = 128, mvmus: int = 2, vfu: int = 1,
                    cores: int = 8, rf_scale: float = 1.0) -> DesignPoint:
    """Evaluate one design point under the synthetic benchmark."""
    config = _config_for(dim, mvmus, vfu, cores, rf_scale)
    core = config.core
    input_steps = core.fixed_point.total_bits // core.bits_per_input

    interval = mvm_initiation_interval_cycles(dim, input_steps)
    vfu_tail = _VFU_PASSES * mvmus * dim / vfu
    per_core_cycles = interval + vfu_tail

    # Shared memory ceiling across the tile's cores: the 384-bit bus moves
    # 24 words/cycle at peak, but the random transaction mix of many cores
    # pays the eDRAM access cycles per line, halving effective throughput.
    effective_bus = BUS_WORDS_PER_CYCLE / 2
    words_per_iter = _MEMORY_PASSES * mvmus * dim
    memory_cycles = cores * words_per_iter / effective_bus
    iter_cycles = max(per_core_cycles, memory_cycles)

    # MACs count as two ops; the VFU/ROM ops add 2 ops per element.
    ops_per_iter = (2 * dim * dim * mvmus + 2 * mvmus * dim)
    total_ops_per_s = (cores * ops_per_iter
                       / (iter_cycles * config.cycle_ns * 1e-9))

    budget = tile_budget(config.tile)
    return DesignPoint(
        mvmu_dim=dim, num_mvmus=mvmus, vfu_width=vfu, num_cores=cores,
        rf_scale=rf_scale,
        gops=total_ops_per_s / 1e9,
        tile_power_w=budget.power_mw * 1e-3,
        tile_area_mm2=budget.area_mm2,
    )


# One-line interpretation of each Figure 12 sweep (Section 7.6's text).
SWEEP_PARAMETERS_DOC = {
    "mvmu_dim": "quadratic MAC growth vs non-linear ADC overhead",
    "num_mvmus": "crossbar efficiency until the VFU becomes the bottleneck",
    "vfu_width": "narrow CMOS units; 4 lanes balance throughput vs area",
    "num_cores": "amortize tile overheads until memory bandwidth binds",
    "rf_scale": "larger register files only cost area/power",
}

MVMU_DIM_SWEEP = (64, 128, 256)
NUM_MVMUS_SWEEP = (1, 4, 16, 64)
VFU_WIDTH_SWEEP = (1, 4, 16, 64)
CORES_SWEEP = (1, 4, 8, 16)
RF_SCALE_SWEEP = (0.25, 1.0, 4.0, 16.0)

# The paper's sweet spot (Section 7.6): 128x128 MVMUs, a handful per core,
# 4 VFU lanes, 8 cores.  Sweeps pin the other parameters here.
SWEET_SPOT = {"dim": 128, "mvmus": 2, "vfu": 4, "cores": 8, "rf_scale": 1.0}


def sweep(parameter: str) -> list[DesignPoint]:
    """Sweep one parameter with the others at the sweet spot.

    Args:
        parameter: one of ``mvmu_dim``, ``num_mvmus``, ``vfu_width``,
            ``num_cores``, ``rf_scale``.
    """
    values = {
        "mvmu_dim": MVMU_DIM_SWEEP,
        "num_mvmus": NUM_MVMUS_SWEEP,
        "vfu_width": VFU_WIDTH_SWEEP,
        "num_cores": CORES_SWEEP,
        "rf_scale": RF_SCALE_SWEEP,
    }.get(parameter)
    if values is None:
        raise KeyError(f"unknown sweep parameter {parameter!r}")
    points = []
    for value in values:
        args = dict(SWEET_SPOT)
        key = {"mvmu_dim": "dim", "num_mvmus": "mvmus", "vfu_width": "vfu",
               "num_cores": "cores", "rf_scale": "rf_scale"}[parameter]
        args[key] = value
        points.append(evaluate_design(
            dim=args["dim"], mvmus=args["mvmus"], vfu=args["vfu"],
            cores=args["cores"], rf_scale=args["rf_scale"]))
    return points


def sweet_spot() -> DesignPoint:
    """The maximum-efficiency configuration's design point."""
    return evaluate_design(**{
        "dim": SWEET_SPOT["dim"], "mvmus": SWEET_SPOT["mvmus"],
        "vfu": SWEET_SPOT["vfu"], "cores": SWEET_SPOT["cores"],
        "rf_scale": SWEET_SPOT["rf_scale"]})


def register_spill_sweep(rf_scales=RF_SCALE_SWEEP) -> dict[float, float]:
    """Figure 12's spill panel: % register accesses from spills vs RF size.

    Measured by actually compiling the Figure 4 MLP at each register-file
    size and reading the code generator's spill counters.
    """
    import numpy as np

    from repro.compiler import compile_model
    from repro.compiler.frontend import (ConstMatrix, InVector, Model,
                                         OutVector, sigmoid)

    def pressure_probe(tag: str) -> Model:
        # Two 42-wide values held across a long dependent chain on one
        # core: the 42-word width keeps any single op's operands within
        # even the smallest swept register file, while the held values
        # push peak liveness beyond it — the sweep measures *spilling*,
        # not infeasibility.  (This is the "window-based computations with
        # a large number of intervening instructions" pattern Section 3.4.2
        # names as the spilling case.)
        rng = np.random.default_rng(0)
        width = 42
        model = Model.create(f"pressure_{tag}")
        x = InVector.create(model, width, "x")
        w0 = ConstMatrix.create(model, width, width, "w0",
                                rng.normal(0, 0.15, (width, width)))
        w1 = ConstMatrix.create(model, width, width, "w1",
                                rng.normal(0, 0.15, (width, width)))
        held_a = sigmoid(w0 @ x)
        held_b = sigmoid(w1 @ x)
        t = held_a
        for _ in range(10):
            t = sigmoid(t)
        out = OutVector.create(model, width, "out")
        out.assign(t * held_a + held_b)
        return model

    results = {}
    for scale in rf_scales:
        config = _config_for(dim=128, mvmus=2, vfu=1, cores=8,
                             rf_scale=scale)
        try:
            compiled = compile_model(pressure_probe(str(scale)), config)
            results[scale] = compiled.spilled_access_fraction() * 100.0
        except Exception:
            results[scale] = math.nan  # too small to compile at all
    return results
