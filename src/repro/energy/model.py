"""Per-instruction latency and energy models.

The detailed simulator charges each executed instruction through these
models; the analytic layer model (:mod:`repro.perf`) uses the same
constants, so both levels of the evaluation agree by construction.

Key calibration facts from the paper:

* a 128x128 memristive MVMU performs 16,384 MACs in 2304 ns consuming
  43.97 nJ (Section 7.4.3) — equal to the Table 3 MVMU power (19.09 mW)
  times the MVM latency, so energy is modelled as component power times
  busy time throughout;
* MVM latency decomposes as ``input_steps * dim * 9/8`` ADC-limited cycles
  (16 x 128 x 1.125 = 2304), which provides the scaling for the
  design-space sweeps;
* the MVMU is pipelined (Figure 1); back-to-back MVMs achieve an initiation
  interval of ``0.6 x latency``, the value that reproduces Table 6's peak
  52.31 TOPS/s for 2208 MVMUs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.arch.config import PumaConfig
from repro.arch.core import ExecOutcome
from repro.energy.components import MW, TABLE3, adc_bits_for, mvmu_power_mw
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode

# The MVM is ADC-limited: each input step digitizes every column, and a SAR
# conversion costs (bits + 1) cycles at the 1 GHz clock.  At the reference
# point that is 16 steps x 128 rows x (8+1)/8 ... = 2304 cycles, matching
# the published 2304 ns (Section 7.4.3); larger crossbars need higher
# resolution, which is the counterweight in the Figure 12 dimension sweep.
_SAR_CYCLES_PER_BIT_GROUP = 8  # conversions pipeline 8 bit-slices wide
# Pipelined MVMU initiation interval as a fraction of MVM latency.
MVM_PIPELINE_FACTOR = 0.6
# Tile memory bus moves 384 bits = 24 words per cycle.
BUS_WORDS_PER_CYCLE = 24
# eDRAM random-access overhead per transaction.
MEMORY_ACCESS_CYCLES = 2
# Register-file port width seen by copy/set.
COPY_WORDS_PER_CYCLE = 4
# ROM-mode access energy relative to a RAM access of the register file.
ROM_ACCESS_FACTOR = 2.0
# NoC energy per flit-hop (Orion-class router + link at 32 nm).
NOC_FLIT_HOP_ENERGY_J = 1.15e-12
# Chip-to-chip link energy per 16-bit word (HyperTransport-class SerDes,
# ~6 pJ/bit at 32 nm).
OFFCHIP_WORD_ENERGY_J = 96e-12


def mvm_latency_cycles(dim: int, input_steps: int,
                       cell_bits: int = 2) -> int:
    """End-to-end latency of one MVM operation in cycles.

    ``input_steps * dim`` conversions at ``(adc_bits + 1)`` SAR cycles
    each, pipelined ``_SAR_CYCLES_PER_BIT_GROUP`` wide: 2304 at the
    128x128/2-bit reference point.
    """
    bits = adc_bits_for(dim, cell_bits)
    cycles = input_steps * dim * (bits + 1) / _SAR_CYCLES_PER_BIT_GROUP
    return max(1, round(cycles))


def mvm_initiation_interval_cycles(dim: int, input_steps: int,
                                   cell_bits: int = 2) -> float:
    """Pipelined issue interval between back-to-back MVMs."""
    return mvm_latency_cycles(dim, input_steps, cell_bits) * MVM_PIPELINE_FACTOR


class LatencyModel:
    """Instruction latency in cycles for a given configuration."""

    def __init__(self, config: PumaConfig) -> None:
        self.config = config
        core = config.core
        self._mvm_cycles = mvm_latency_cycles(
            core.mvmu_dim, core.fixed_point.total_bits // core.bits_per_input)

    def cycles(self, instr: Instruction, outcome: ExecOutcome,
               batch: int = 1) -> int:
        """Cycles the issuing unit is busy executing ``instr``.

        With ``batch > 1`` data-carrying instructions process one lane per
        batch input: vector units stream ``batch * vec_width`` words through
        the same per-word pipelines, and an MVM issues ``batch``
        back-to-back analog passes through the pipelined MVMU (one full
        latency plus ``batch - 1`` initiation intervals).  Control
        instructions execute once regardless of batch — that amortization
        is PUMA's batching benefit (Section 7.3).
        """
        op = instr.opcode
        w = outcome.vec_width * max(1, batch)
        if op == Opcode.MVM:
            if batch > 1:
                return max(1, round(
                    self._mvm_cycles
                    * (1.0 + (batch - 1) * MVM_PIPELINE_FACTOR)))
            return self._mvm_cycles
        if op in (Opcode.ALU, Opcode.ALUI):
            lanes = self.config.core.vfu_width
            cycles = math.ceil(w / lanes)
            if outcome.rom_access:
                cycles += math.ceil(w / lanes)  # ROM probe/restore overlap
            return max(1, cycles)
        if op in (Opcode.SET, Opcode.COPY):
            return max(1, math.ceil(w / COPY_WORDS_PER_CYCLE))
        if op in (Opcode.LOAD, Opcode.STORE):
            return MEMORY_ACCESS_CYCLES + math.ceil(w / BUS_WORDS_PER_CYCLE)
        if op in (Opcode.SEND, Opcode.RECEIVE):
            # Tile-side occupancy: the memory transaction plus injection /
            # ejection; network traversal is charged by the NoC itself.
            return (MEMORY_ACCESS_CYCLES + math.ceil(w / BUS_WORDS_PER_CYCLE)
                    + 1)
        if op in (Opcode.ALU_INT, Opcode.JMP, Opcode.BRN, Opcode.HLT):
            return 1
        raise ValueError(f"no latency model for {op.name}")


@dataclass
class EnergyBreakdown:
    """Accumulated energy by component category (joules)."""

    mvm: float = 0.0
    vfu: float = 0.0
    sfu: float = 0.0
    register_file: float = 0.0
    rom: float = 0.0
    shared_memory: float = 0.0
    network: float = 0.0
    fetch_decode: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return (self.mvm + self.vfu + self.sfu + self.register_file
                + self.rom + self.shared_memory + self.network
                + self.fetch_decode + sum(self.extra.values()))

    def merge(self, other: "EnergyBreakdown") -> None:
        self.mvm += other.mvm
        self.vfu += other.vfu
        self.sfu += other.sfu
        self.register_file += other.register_file
        self.rom += other.rom
        self.shared_memory += other.shared_memory
        self.network += other.network
        self.fetch_decode += other.fetch_decode
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0.0) + value

    def as_dict(self) -> dict[str, float]:
        out = {
            "mvm": self.mvm,
            "vfu": self.vfu,
            "sfu": self.sfu,
            "register_file": self.register_file,
            "rom": self.rom,
            "shared_memory": self.shared_memory,
            "network": self.network,
            "fetch_decode": self.fetch_decode,
        }
        out.update(self.extra)
        return out


class EnergyModel:
    """Instruction energy as component power times busy time.

    The tile configuration matters: shared-memory energy scales with the
    configured capacity, which is exactly what the shared-memory-sizing
    ablation (Table 8) measures.
    """

    def __init__(self, config: PumaConfig) -> None:
        self.config = config
        self.cycle_s = config.cycle_ns * 1e-9
        self.latency = LatencyModel(config)
        core = config.core
        tile = config.tile
        self._p_mvmu = mvmu_power_mw(core.mvmu_dim, core.bits_per_cell) * MW
        self._p_vfu = TABLE3["vfu"].power_mw * MW * core.vfu_width
        self._p_sfu = TABLE3["sfu"].power_mw * MW
        rf_scale = (core.num_general_registers * 2) / 1024
        self._p_rf = TABLE3["register_file"].power_mw * MW * rf_scale
        smem_scale = tile.shared_memory_bytes / 65536
        self._p_smem = (TABLE3["tile_data_memory"].power_mw * MW * smem_scale
                        + TABLE3["tile_memory_bus"].power_mw * MW
                        + TABLE3["tile_attribute_memory"].power_mw * MW
                        * (tile.attribute_entries / 32768))
        self._p_fetch = (TABLE3["instruction_memory"].power_mw
                         + TABLE3["control_pipeline"].power_mw) * MW
        self._p_rbuf = TABLE3["tile_receive_buffer"].power_mw * MW

    def energy(self, instr: Instruction, outcome: ExecOutcome,
               batch: int = 1) -> EnergyBreakdown:
        """Energy of one completed instruction.

        Energy is component power times busy time, so batched instructions
        charge the (longer) batched busy time computed by the latency model
        while still paying for a single fetch/decode.
        """
        op = instr.opcode
        cycles = self.latency.cycles(instr, outcome, batch)
        t = cycles * self.cycle_s
        out = EnergyBreakdown()
        out.fetch_decode += self._p_fetch * self.cycle_s  # one fetch/decode
        if op == Opcode.MVM:
            out.mvm += self._p_mvmu * t * max(1, outcome.mvm_count)
            return out
        if op in (Opcode.ALU, Opcode.ALUI):
            out.vfu += self._p_vfu * t
            out.register_file += self._p_rf * t
            if outcome.rom_access:
                out.rom += self._p_rf * t * ROM_ACCESS_FACTOR
            return out
        if op in (Opcode.SET, Opcode.COPY):
            out.register_file += self._p_rf * t * 2  # read + write streams
            return out
        if op in (Opcode.LOAD, Opcode.STORE):
            out.shared_memory += self._p_smem * t
            out.register_file += self._p_rf * t
            return out
        if op in (Opcode.SEND, Opcode.RECEIVE):
            out.shared_memory += self._p_smem * t
            if op == Opcode.RECEIVE:
                out.network += self._p_rbuf * t
            return out
        if op == Opcode.ALU_INT:
            out.sfu += self._p_sfu * t
            return out
        if op in (Opcode.JMP, Opcode.BRN, Opcode.HLT):
            return out
        raise ValueError(f"no energy model for {op.name}")

    def network_energy(self, flit_hops: int, offchip_words: int = 0) -> float:
        """NoC traversal energy plus chip-to-chip link energy."""
        return (flit_hops * NOC_FLIT_HOP_ENERGY_J
                + offchip_words * OFFCHIP_WORD_ENERGY_J)
