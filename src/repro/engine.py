"""Batched inference engine: compile once, run many inputs SIMD-over-batch.

PUMA's evaluation (Section 7.3, Fig 11c/d) is framed around *batched*
inference: the expensive work — compiling the model and programming the
crossbars — happens once, and many inputs stream through the programmed
hardware.  :class:`InferenceEngine` is the top-level serving interface for
that pattern:

* ``compile_model`` runs once per (model, config, options) triple; the
  resulting :class:`~repro.compiler.compile.CompiledModel` is cached
  process-wide (:func:`compile_cache_info` reports hits/misses), so
  constructing several engines for the same model is cheap;
* :meth:`predict` is the float-first entry point: it validates named float
  inputs against the compiled program's ``input_layout``, quantizes them,
  executes the whole ``(batch, length)`` matrix in a single
  SIMD-over-batch simulator pass, and returns a typed
  :class:`~repro.serve.types.RunResult` carrying float and fixed-point
  output views plus the run's :class:`~repro.sim.stats.SimulationStats`;
* :meth:`run_batch` is the same pass for callers already holding
  fixed-point words; :meth:`run_sequential` is the reference fallback (one
  single-input simulation per row) — batched and sequential results are
  bitwise identical for deterministic programs, for both ideal and noisy
  crossbar models (``tests/test_batched_engine.py`` enforces this);
* steady-state runs take the **trace-replay fast path** by default: the
  first simulation at a given (config, crossbar model, seed) records the
  resolved dynamic schedule as a *batch-generic* execution tape
  (:mod:`repro.sim.tape`) cached on the :class:`CompiledModel`; every
  later run — at any batch size — replays the tape as a flat sequence of
  pre-bound numpy operations, with batch-dependent timing derived on
  demand by a shadow timing simulation.  By default the tape is further
  compiled by the **tape optimizer** (:mod:`repro.sim.tapeopt`): dead
  stores eliminated, store→load pairs forwarded to register moves,
  adjacent same-shape ops fused into wide kernels, independent MVMs
  batched into one stacked matmul — still bitwise-identical (a first-run
  equivalence probe per batch enforces this, falling back to plain
  replay on any mismatch).  Programs using the stochastic ``RANDOM`` op
  (and unseeded engines) transparently fall back to the interpreter;
  :func:`tape_cache_info` reports recordings/replays/optimized runs/
  fallbacks, ``execution_mode="replay"`` disables the optimizer, and
  ``execution_mode="interpret"`` disables the fast path outright;
* all of the above persists **across processes** through the artifact
  store (:mod:`repro.store`): ``artifact_dir=`` makes the engine
  warm-start from a matching on-disk artifact (compilation + programmed
  crossbars + tapes) at construction time, :meth:`save_artifacts` /
  :meth:`InferenceEngine.from_artifacts` are the explicit save/load
  pair, and :meth:`ensure_artifacts` is the idempotent
  load-or-build-and-save primitive the serving layers use.

For an async front-end with queueing and dynamic micro-batching on top of
this engine, see :class:`repro.serve.PumaServer`.

Quickstart::

    from repro.engine import InferenceEngine
    from repro.workloads.mlp import build_mlp_model

    engine = InferenceEngine(build_mlp_model([64, 150, 150, 14]), seed=0)
    result = engine.predict({"x": x_float})     # (batch, 64) floats in
    y = result.outputs["out"]                   # (batch, 14) floats out
    print(result.cycles_per_inference, result.stats.summary())
"""

from __future__ import annotations

import threading
import warnings
import weakref
from pathlib import Path
from typing import Mapping, NamedTuple

import numpy as np

from repro.arch.config import PumaConfig
from repro.arch.crossbar import CrossbarModel
from repro.compiler.compile import CompiledModel, compile_model
from repro.compiler.frontend import Model
from repro.compiler.options import CompilerOptions
from repro.node.node import Node
from repro.serve.types import RunResult
from repro.sim.simulator import Simulator
from repro.sim.stats import SimulationStats
from repro.sim.tape import (
    ExecutionTape,
    TapeRecorder,
    TapeReplayer,
    TapeValidationError,
    find_unsupported_op,
)
from repro.sim.tapeopt import (
    OptimizedReplayer,
    OptimizedTape,
    TapeOptimizationError,
    optimize_tape,
)
from repro.store import (
    MANIFEST_NAME,
    ArtifactError,
    artifact_key,
    fingerprint_digest,
    fingerprint_value,
    load_artifact,
    model_digest,
    program_digest,
    save_artifact,
)

# Most programmed-crossbar snapshots kept per compiled model (each holds
# every MVMU's levels + conductances — multi-MB for mid-size models).
_PROGRAMMED_STATE_CAP = 8
# Execution tapes kept per compiled model (one per distinct
# (config, crossbar model, seed); tapes are batch-generic, so one entry
# serves every batch size — a tape holds the step list plus per-batch
# stats snapshots, small next to a programmed-state entry).
_EXECUTION_TAPE_CAP = 8
# Bound replayers (node + pre-bound closures) kept per engine; the node's
# (batch, words) arrays dominate, so keep only the recent batch sizes.
_REPLAYER_CAP = 4

EXECUTION_MODES = ("auto", "replay", "optimized", "interpret")

# model -> {config/options fingerprint -> CompiledModel}.  Weak keys: the
# cache must not keep dead models (and their weight arrays) alive.
_COMPILE_CACHE: "weakref.WeakKeyDictionary[Model, dict[tuple, CompiledModel]]" \
    = weakref.WeakKeyDictionary()
_cache_hits = 0
_cache_misses = 0


# Canonical implementation lives in repro.store (the artifact store keys
# disk artifacts off the same value fingerprints the compile cache uses);
# the old private name stays importable for existing callers.
_fingerprint_value = fingerprint_value


def _cache_fingerprint(config: PumaConfig,
                       options: CompilerOptions | None) -> tuple:
    """A stable value key for the compile-relevant arguments."""
    return (_fingerprint_value(config), _fingerprint_value(options))


class CompileCacheInfo(NamedTuple):
    """Process-wide compile-cache statistics (cf. ``functools.lru_cache``).

    ``misses`` counts every lookup not served from memory — whether the
    compilation was then rebuilt by the compiler or loaded from the
    artifact store (:func:`repro.store.store_info` separates the two) —
    so hits + misses always reconciles with lookups.
    """

    hits: int
    misses: int
    entries: int


def compile_cached(model: Model, config: PumaConfig,
                   options: CompilerOptions | None = None, *,
                   loader=None) -> CompiledModel:
    """Compile ``model`` for ``config``, memoized on (model, config, options).

    ``loader`` is an optional miss-path hook: called before the compiler
    on a cache miss, its non-``None`` result (e.g. an artifact-store
    load) is cached in place of a fresh compilation.
    """
    global _cache_hits, _cache_misses
    per_model = _COMPILE_CACHE.setdefault(model, {})
    key = _cache_fingerprint(config, options)
    if key in per_model:
        _cache_hits += 1
    else:
        _cache_misses += 1
        compiled = loader() if loader is not None else None
        if compiled is None:
            compiled = compile_model(model, config, options)
        per_model[key] = compiled
    return per_model[key]


def compile_cache_info() -> CompileCacheInfo:
    """Hits/misses/live-entry counts of the process-wide compile cache."""
    entries = sum(len(compiled) for compiled in _COMPILE_CACHE.values())
    return CompileCacheInfo(hits=_cache_hits, misses=_cache_misses,
                            entries=entries)


def clear_compile_cache() -> None:
    """Drop every cached compilation and reset the hit/miss counters."""
    global _cache_hits, _cache_misses
    _COMPILE_CACHE.clear()
    _cache_hits = 0
    _cache_misses = 0


# -- execution-tape cache introspection ------------------------------------
#
# Tapes live on CompiledModel.execution_tapes (their lifetime is the
# compilation's, like programmed_states); the process-wide counters and the
# weak registry below exist so operators can observe the fast path —
# cf. compile_cache_info().

# Keyed by id(): CompiledModel is an eq-by-value dataclass (unhashable);
# the WeakValueDictionary drops entries as compilations die, so a recycled
# id simply overwrites a vacated slot.
_TAPE_MODELS: "weakref.WeakValueDictionary[int, CompiledModel]" = \
    weakref.WeakValueDictionary()
_tape_lock = threading.Lock()
_tape_recordings = 0
_tape_replays = 0
_tape_fallbacks = 0
_tape_optimized = 0
_tape_optimizer_fallbacks = 0
_tape_derived_stats = 0


class TapeCacheInfo(NamedTuple):
    """Process-wide execution-tape statistics.

    Attributes:
        entries: live tapes across all live compilations.  Tape dicts
            shared by replica engines (``ShardedEngine``, fleet workers on
            one ``CompiledModel``) are counted once, not per replica.
        recordings: interpreter passes that recorded a tape (cache misses).
        replays: runs served from a tape — plain *and* optimized (every
            optimized run is also a replay; ``optimized`` counts the
            subset).
        fallbacks: runs that wanted the fast path but used the interpreter
            (stochastic RANDOM-op program, unseeded engine, or a tape that
            failed validation at replay time).
        optimized: replays served by a fused/optimized execution plan.
        optimizer_fallbacks: times the optimizer declined a tape, its plan
            failed the structural self-check, or a first-replay
            equivalence probe mismatched — the run fell back to the plain
            replay path (still tape-served, never wrong).
        derived_stats: batch sizes whose stats were derived by a shadow
            timing simulation instead of a full recording pass.
    """

    entries: int
    recordings: int
    replays: int
    fallbacks: int
    optimized: int
    optimizer_fallbacks: int
    derived_stats: int


def tape_cache_info() -> TapeCacheInfo:
    """Entries/recordings/replays/fallback counters of the tape cache."""
    with _tape_lock:
        # Replicas may share one execution_tapes dict across distinct
        # CompiledModel wrappers; dedup by dict identity so shared tapes
        # are not double-counted, and count only real tapes (a cleared or
        # externally-mutated dict must not inflate the report).
        seen: set[int] = set()
        entries = 0
        for compiled in _TAPE_MODELS.values():
            tapes = compiled.execution_tapes
            if id(tapes) in seen:
                continue
            seen.add(id(tapes))
            entries += sum(1 for tape in tapes.values()
                           if isinstance(tape, ExecutionTape))
        return TapeCacheInfo(
            entries=entries, recordings=_tape_recordings,
            replays=_tape_replays, fallbacks=_tape_fallbacks,
            optimized=_tape_optimized,
            optimizer_fallbacks=_tape_optimizer_fallbacks,
            derived_stats=_tape_derived_stats)


def clear_tape_caches() -> None:
    """Drop every recorded tape on live compilations and reset counters."""
    global _tape_recordings, _tape_replays, _tape_fallbacks
    global _tape_optimized, _tape_optimizer_fallbacks, _tape_derived_stats
    with _tape_lock:
        for compiled in _TAPE_MODELS.values():
            compiled.execution_tapes.clear()
        _tape_recordings = 0
        _tape_replays = 0
        _tape_fallbacks = 0
        _tape_optimized = 0
        _tape_optimizer_fallbacks = 0
        _tape_derived_stats = 0


def _count_tape_event(kind: str) -> None:
    global _tape_recordings, _tape_replays, _tape_fallbacks
    global _tape_optimized, _tape_optimizer_fallbacks, _tape_derived_stats
    with _tape_lock:
        if kind == "recording":
            _tape_recordings += 1
        elif kind == "replay":
            _tape_replays += 1
        elif kind == "optimized":
            # An optimized run is a replay served by the fused plan: the
            # replays counter stays the "tape-served runs" total.
            _tape_replays += 1
            _tape_optimized += 1
        elif kind == "optimizer_fallback":
            _tape_optimizer_fallbacks += 1
        elif kind == "derived":
            _tape_derived_stats += 1
        else:
            _tape_fallbacks += 1


class InferenceEngine:
    """Serves batched inference for one compiled model.

    Args:
        model: the frontend model to serve (``None`` only via
            :meth:`from_compiled`).
        config: accelerator configuration (Table 3 defaults when omitted).
        options: compiler options; part of the compile-cache key.
        crossbar_model: overrides the device model (noise studies).
        seed: RNG seed for write noise and the RANDOM op.  The same seed is
            used for every run, so repeated calls see identically programmed
            crossbars — the property that makes batched and sequential
            executions comparable bit for bit.
        execution_mode: ``"auto"`` (default) records a batch-generic
            execution tape on the first run, optimizes it
            (:mod:`repro.sim.tapeopt`), and replays it afterwards at any
            batch size, falling back to the event-driven interpreter when
            the program cannot be taped (stochastic RANDOM op, unseeded
            engine) and to plain replay when the tape cannot be optimized
            or fails its equivalence probe; ``"optimized"`` is the strict
            variant of ``"auto"`` that raises ``ValueError`` for engines
            that can *never* replay; ``"replay"`` is strict like
            ``"optimized"`` but never invokes the optimizer — every
            replay runs the plain step-for-step tape (recording passes —
            the first run, or the one after a tape is invalidated — are
            part of both strict modes, exactly as in ``"auto"``);
            ``"interpret"`` always runs the event-driven interpreter.
            All four produce bitwise-identical outputs and
            field-identical stats.
        artifact_dir: persistent artifact store directory
            (:mod:`repro.store`).  At construction the engine loads a
            matching artifact if one exists — skipping compilation,
            crossbar programming, and tape recording — and otherwise
            compiles normally; any invalid artifact is ignored (rebuild,
            never a wrong answer).  :meth:`save_artifacts` writes the
            keyed artifact back.

    Attributes:
        compiled: the (cached) compilation artifacts.
        program: the executable :class:`~repro.isa.program.NodeProgram`.
        fmt: the datapath fixed-point format.
    """

    def __init__(self, model: Model | None, config: PumaConfig | None = None,
                 options: CompilerOptions | None = None,
                 crossbar_model: CrossbarModel | None = None,
                 seed: int | None = 0, *,
                 compiled: CompiledModel | None = None,
                 execution_mode: str = "auto",
                 artifact_dir: str | Path | None = None) -> None:
        if (model is None) == (compiled is None):
            raise ValueError(
                "provide exactly one of 'model' (compiled through the "
                "cache) or 'compiled' (a pre-built CompiledModel)")
        if execution_mode not in EXECUTION_MODES:
            raise ValueError(
                f"execution_mode must be one of {EXECUTION_MODES}, "
                f"got {execution_mode!r}")
        self.model = model
        self.config = config if config is not None else PumaConfig()
        self.options = options
        self.crossbar_model = crossbar_model
        self.seed = seed
        self.execution_mode = execution_mode
        self.artifact_dir = Path(artifact_dir) if artifact_dir else None
        # config/crossbar_model/seed are fixed for the engine's lifetime;
        # fingerprinting them walks every dataclass field recursively, so
        # do it once, not per run.  (Computed before compilation: the
        # artifact store keys off it.)
        self._fingerprint = (_fingerprint_value(self.config),
                             _fingerprint_value(self.crossbar_model),
                             self.seed)
        # The artifact path this engine already loaded or saved, so
        # repeated ensure_artifacts() calls (server + shard pool wiring)
        # don't re-hash and re-deserialize a multi-MB artifact per layer
        # — plus which batch sizes the on-disk tape carries stats for
        # (stats derived after adoption still need a save), and whether
        # an in-memory tape invalidation made the on-disk copy stale.
        self._adopted_artifact: Path | None = None
        self._persisted_stats_batches: set[int] = set()
        self._artifact_stale = False
        if compiled is not None:
            self.compiled = compiled
        else:
            self.compiled = self._resolve_compiled()
        self.program = self.compiled.program
        self.fmt = self.config.core.fixed_point
        self._last_stats: SimulationStats | None = None
        # Trace-replay state: bound replayers by batch size, guarded by a
        # lock (a replayer mutates its node's arrays while running).
        self._replayers: dict[int, TapeReplayer] = {}
        self._replay_lock = threading.Lock()
        self._tape_blocker: str | None | bool = False  # False = not scanned
        # Static dependence graph for the tape cross-check, built lazily on
        # the first recording (analysis cost is per-engine, not per-run).
        self._depgraph = None

    @classmethod
    def from_compiled(cls, compiled: CompiledModel,
                      config: PumaConfig | None = None, *,
                      crossbar_model: CrossbarModel | None = None,
                      seed: int | None = 0,
                      execution_mode: str = "auto",
                      artifact_dir: str | Path | None = None
                      ) -> "InferenceEngine":
        """Serve an already-compiled model (CNN lowering, importer output).

        Bypasses the compile cache — the caller owns the compilation.
        ``artifact_dir`` enables :meth:`save_artifacts` /
        :meth:`ensure_artifacts`, keyed by a digest of the compiled
        program (there is no frontend model to digest).

        Example::

            compiled = compile_cnn(small_cnn_spec(), config)
            engine = InferenceEngine.from_compiled(compiled, config, seed=0)
        """
        return cls(None, config, crossbar_model=crossbar_model, seed=seed,
                   compiled=compiled, execution_mode=execution_mode,
                   artifact_dir=artifact_dir)

    # -- persistent artifact store -----------------------------------------

    def _key_digests(self) -> tuple[str, str, int | None]:
        """The engine key as stable digests (what artifact manifests pin)."""
        config_fp, crossbar_fp, seed = self._fingerprint
        return (fingerprint_digest(config_fp),
                fingerprint_digest(crossbar_fp), seed)

    def _artifact_path(self, artifact_dir: Path | None = None) -> Path:
        """Where this engine's artifact lives under the store directory."""
        base = artifact_dir if artifact_dir is not None else self.artifact_dir
        if base is None:
            raise ValueError(
                "no artifact directory configured (pass artifact_dir= to "
                "the engine or to this call)")
        if self.model is not None:
            content = model_digest(self.model)
            content = fingerprint_digest(
                (content, fingerprint_value(self.options)))
            name = self.model.name
        else:
            content = program_digest(self.compiled.program)
            name = self.compiled.program.name
        config_digest, crossbar_digest, seed = self._key_digests()
        key = fingerprint_digest((config_digest, crossbar_digest, seed))
        return Path(base) / artifact_key(name, content, key)

    def _resolve_compiled(self) -> CompiledModel:
        """Compile cache -> artifact store -> compiler, in that order.

        A store hit fills the in-process cache too (through the
        ``loader`` hook), so replica engines built for the same model
        share the compilation.  When the compile cache hits but this
        engine's (config, crossbar model, seed) has no programmed state
        yet — e.g. the model was compiled in-process under a different
        seed — the store is still consulted for the state and tapes.

        ``seed=None`` bypasses the store entirely, in both directions:
        fresh-entropy state must not be frozen to disk
        (:meth:`save_artifacts` raises) and, symmetrically, must never be
        *served* from disk — an unseeded engine compiles fresh and runs
        the interpreter, end of story.
        """
        loader = self._try_load_store \
            if self.artifact_dir is not None and self.seed is not None \
            else None
        compiled = compile_cached(self.model, self.config, self.options,
                                  loader=loader)
        if (self.artifact_dir is not None
                and self._adopted_artifact is None
                and self.seed is not None
                and self._fingerprint not in compiled.programmed_states):
            loaded = self._load_store()
            if loaded is not None:
                self._adopt_loaded(compiled, loaded)
        return compiled

    def _load_store(self):
        """This engine's validated artifact, or ``None`` to rebuild.

        Any validation failure (version/fingerprint mismatch, corrupt or
        truncated payloads) is treated as a cache miss — the store must
        never produce a wrong answer, only a slower start.
        """
        path = self._artifact_path()
        if not (path / MANIFEST_NAME).is_file():
            return None
        try:
            loaded = load_artifact(path,
                                   expected_key_digests=self._key_digests())
        except ArtifactError:
            return None
        self._adopted_artifact = path.resolve()
        self._persisted_stats_batches = self._tape_stats_batches(loaded.tape)
        self._artifact_stale = False
        return loaded

    @staticmethod
    def _tape_stats_batches(tape: ExecutionTape | None) -> set[int]:
        return set(tape.stats_by_batch) if tape is not None else set()

    def _try_load_store(self) -> CompiledModel | None:
        """Compile-cache loader hook: the artifact's compilation, with
        this engine's caches installed, or ``None`` to compile."""
        loaded = self._load_store()
        if loaded is None:
            return None
        return self._adopt_loaded(loaded.compiled, loaded)

    def _adopt_loaded(self, compiled: CompiledModel, loaded) -> CompiledModel:
        """Install a loaded artifact's caches under this engine's keys.

        An unseeded engine adopts nothing: persisted programmed state and
        tapes would freeze exactly the entropy ``seed=None`` asks to stay
        fresh (the load path already fails loudly on such artifacts; this
        guard keeps in-process adoption honest too).
        """
        if self.seed is None:
            return compiled
        with _tape_lock:
            compiled.programmed_states[self._fingerprint] = \
                loaded.programmed_state
            if loaded.tape is not None:
                compiled.execution_tapes[self._fingerprint] = loaded.tape
            _TAPE_MODELS[id(compiled)] = compiled
        return compiled

    @classmethod
    def from_artifacts(cls, path: str | Path, *,
                       execution_mode: str = "auto",
                       artifact_dir: str | Path | None = None
                       ) -> "InferenceEngine":
        """Build an engine from one on-disk artifact — the warm start.

        Loads the compilation, the programmed crossbar state, and every
        recorded execution tape from ``path``; the returned engine serves
        requests **bitwise identically** to a cold-built engine with the
        same model/config/crossbar/seed (``tests/test_store.py``), without
        re-paying compilation, programming, or tape recording.

        Example::

            InferenceEngine(model, seed=0).warm(batch=16) \\
                .save_artifacts("artifacts/mlp")
            # ... later, in a different process:
            engine = InferenceEngine.from_artifacts("artifacts/mlp")
            result = engine.predict({"x": x})      # replays immediately

        Raises:
            ArtifactError: the artifact is missing, corrupt, truncated,
                or from an unsupported format version.
        """
        loaded = load_artifact(path)
        engine = cls(None, loaded.config, loaded.options,
                     crossbar_model=loaded.crossbar_model, seed=loaded.seed,
                     compiled=loaded.compiled, execution_mode=execution_mode,
                     artifact_dir=artifact_dir)
        engine._adopt_loaded(engine.compiled, loaded)
        engine._adopted_artifact = Path(path).resolve()
        engine._persisted_stats_batches = cls._tape_stats_batches(loaded.tape)
        return engine

    def save_artifacts(self, path: str | Path | None = None) -> Path:
        """Persist this engine's warm state as an on-disk artifact.

        Warms first (a no-op when already warm), then writes the
        compilation, the programmed crossbar state for this engine's
        (config, crossbar model, seed), and the batch-generic execution
        tape recorded at that key (with every batch size's derived stats)
        — so a later :meth:`from_artifacts` (or an ``artifact_dir``
        engine in a brand-new process) starts exactly where this engine
        stands.  Record the tape and derive the stats you want persisted
        before saving (``warm(batch=N)`` per serving batch size).

        Args:
            path: explicit artifact directory; defaults to the keyed slot
                under the engine's ``artifact_dir``.

        Returns:
            The artifact directory written.

        Raises:
            ArtifactError: the engine is unseeded (``seed=None`` state
                must not be frozen to disk).
            ValueError: no path given and no ``artifact_dir`` configured.
        """
        if self.seed is None:
            raise ArtifactError(
                "cannot save artifacts for an unseeded engine: seed=None "
                "requests fresh entropy per run, which a persisted state "
                "would freeze")
        self.warm()
        state = self.compiled.programmed_states.get(self._state_key())
        tape = self.compiled.execution_tapes.get(self._fingerprint)
        target = Path(path) if path is not None else self._artifact_path()
        saved = save_artifact(
            target, compiled=self.compiled, tape=tape,
            programmed_state=state, config=self.config,
            options=self.options, crossbar_model=self.crossbar_model,
            seed=self.seed)
        self._adopted_artifact = saved.resolve()
        self._persisted_stats_batches = self._tape_stats_batches(tape)
        self._artifact_stale = False
        return saved

    def ensure_artifacts(self, artifact_dir: str | Path | None = None, *,
                         batch: int | None = None) -> Path | None:
        """Make the on-disk artifact exist and this engine warm — both ways.

        The idempotent primitive behind ``cli warm`` and the serving
        layers: if a valid artifact for this engine's key already exists,
        adopt its caches (programmed state + tapes); otherwise warm the
        engine (recording a tape for ``batch`` when given) and save one.
        Either way, the next process pointed at the same directory
        warm-starts.

        Args:
            artifact_dir: store directory; defaults to (and, on first
                use, becomes) the engine's ``artifact_dir``.
            batch: additionally guarantee a recorded tape for this batch
                size before saving.

        Returns:
            The artifact path, or ``None`` when no directory is
            configured anywhere (a no-op, so callers can wire it
            unconditionally).
        """
        base = Path(artifact_dir) if artifact_dir is not None \
            else self.artifact_dir
        if base is None or self.seed is None:
            # No store configured, or nothing persistable: seed=None
            # state must stay fresh per run (save_artifacts would raise).
            return None
        if self.artifact_dir is None:
            self.artifact_dir = base
        path = self._artifact_path(base)
        adopted = (path.resolve() == self._adopted_artifact
                   and not self._artifact_stale)
        if adopted and (
                batch is None or self._replay_blocker() is not None
                or batch in self._persisted_stats_batches):
            # Already loaded from (or saved to) this exact artifact, the
            # in-memory tape was not invalidated since, and the requested
            # batch's stats are on disk (not merely derived in memory) —
            # don't re-hash and re-deserialize it per serving layer.
            return path
        if not adopted and (path / MANIFEST_NAME).is_file():
            try:
                loaded = load_artifact(
                    path, expected_key_digests=self._key_digests())
            except ArtifactError:
                loaded = None
            if loaded is not None:
                self._adopt_loaded(self.compiled, loaded)
                self._adopted_artifact = path.resolve()
                self._persisted_stats_batches = \
                    self._tape_stats_batches(loaded.tape)
                self._artifact_stale = False
                if batch is None or batch in self._persisted_stats_batches \
                        or self._replay_blocker() is not None:
                    return path
        self.warm()
        if batch is not None:
            self.warm(batch=batch)
        return self.save_artifacts(path)

    # -- deprecated mutable state ------------------------------------------

    @property
    def last_stats(self) -> SimulationStats | None:
        """Deprecated: stats of the most recent run.

        Mutable per-engine state is a hazard once a server interleaves
        runs; read ``.stats`` on the :class:`RunResult` a run returns.
        """
        warnings.warn(
            "InferenceEngine.last_stats is deprecated; use the RunResult "
            "returned by predict()/run_batch()/run_sequential() "
            "(its .stats attribute)", DeprecationWarning, stacklevel=2)
        return self._last_stats

    @last_stats.setter
    def last_stats(self, value: SimulationStats | None) -> None:
        warnings.warn(
            "InferenceEngine.last_stats is deprecated; stats travel on "
            "RunResult now", DeprecationWarning, stacklevel=2)
        self._last_stats = value

    # -- data formatting ---------------------------------------------------

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Real values -> fixed-point words (any shape)."""
        return self.fmt.quantize(values)

    def dequantize(self, words: np.ndarray) -> np.ndarray:
        """Fixed-point words -> real values (any shape)."""
        return self.fmt.dequantize(words)

    # -- input validation --------------------------------------------------

    def _check_names(self, inputs: Mapping[str, np.ndarray]) -> None:
        """Every program input present, nothing extra."""
        layout = self.program.input_layout
        unknown = sorted(set(inputs) - set(layout))
        if unknown:
            raise ValueError(
                f"unknown input name(s) {unknown}; program inputs are "
                f"{sorted(layout)}")
        missing = sorted(set(layout) - set(inputs))
        if missing:
            raise ValueError(
                f"missing input(s) {missing}; program inputs are "
                f"{sorted(layout)}")

    def _infer_batch(self, inputs: Mapping[str, np.ndarray]) -> int:
        """Batch size implied by the input shapes (rows of 2-D inputs).

        Validates each value against the compiled ``input_layout``: 1-D
        vectors (broadcast to every lane) and ``(batch, length)`` matrices
        are accepted, per-lane lengths must match the layout, and all 2-D
        inputs must agree on the batch size.
        """
        layout = self.program.input_layout
        batch: int | None = None
        for name, values in inputs.items():
            arr = np.asarray(values)
            if arr.ndim == 2:
                if batch is not None and arr.shape[0] != batch:
                    raise ValueError(
                        f"inconsistent batch sizes across inputs: "
                        f"{batch} vs {arr.shape[0]} ({name!r})")
                batch = arr.shape[0]
            elif arr.ndim != 1:
                raise ValueError(
                    f"input {name!r} must be 1-D or (batch, length), "
                    f"got shape {arr.shape}")
            if name in layout:
                length = layout[name][2]
                if arr.shape[-1] != length:
                    raise ValueError(
                        f"input {name!r} expects {length} values per "
                        f"inference, got {arr.shape[-1]} "
                        f"(shape {arr.shape})")
        return batch if batch is not None else 1

    def validate_request(self, inputs: Mapping[str, np.ndarray]) -> None:
        """Validate one single-inference request (1-D vectors only).

        The fail-fast check :class:`repro.serve.PumaServer` runs at
        ``submit`` time, before a request can poison a coalesced batch.
        """
        self._check_names(inputs)
        for name, values in inputs.items():
            arr = np.asarray(values)
            if arr.ndim != 1:
                raise ValueError(
                    f"request input {name!r} must be a 1-D vector "
                    f"(one inference), got shape {arr.shape}")
        self._infer_batch(inputs)

    def _state_key(self) -> tuple | None:
        """Programmed-state cache key; ``None`` when seed=None (fresh
        entropy per run must not be frozen)."""
        if self.seed is None:
            return None
        return self._fingerprint

    def _harvest_programmed_state(self, key: tuple, node: Node) -> None:
        state = node.export_programmed_state(self.program)
        states = self.compiled.programmed_states
        # The insert-then-evict below mutates a dict shared by every
        # replica engine serving this compilation; serialize it (thread
        # replicas would otherwise race next(iter())/pop on eviction).
        with _tape_lock:
            states[key] = state
            # A seed/noise sweep over one kept-alive model would
            # otherwise pin one multi-MB crossbar snapshot per
            # (config, crossbar model, seed) forever; evicting the
            # oldest entries costs only a re-programming pass.
            while len(states) > _PROGRAMMED_STATE_CAP:
                states.pop(next(iter(states)), None)

    def _simulator(self, batch: int,
                   tape_recorder: TapeRecorder | None = None) -> Simulator:
        """A fresh simulator, reusing cached crossbar programming.

        The first construction for a given (config, crossbar model, seed)
        programs the crossbars and harvests the configuration-time state
        (conductances + post-programming RNG position) onto the compiled
        model; every later construction — any batch size, any replica
        engine sharing the compilation — installs that state instead of
        re-programming, bitwise identically (Section 3.2.5: weights are
        written once at configuration time).  ``seed=None`` requests fresh
        entropy per run, which must not be frozen, so it bypasses the
        cache.
        """
        key = self._state_key()
        state = self.compiled.programmed_states.get(key) if key else None
        sim = Simulator(self.config, self.program,
                        crossbar_model=self.crossbar_model,
                        seed=self.seed, batch=batch,
                        programmed_state=state,
                        tape_recorder=tape_recorder)
        if key is not None and state is None:
            self._harvest_programmed_state(key, sim.node)
        return sim

    def warm(self, batch: int | None = None) -> "InferenceEngine":
        """Program the crossbars (and optionally record a tape) up front.

        Compilation already happened in ``__init__``; this performs (and
        caches) the configuration-time crossbar programming so the first
        real request doesn't pay it — and so worker processes forked after
        ``warm()`` inherit the programmed arrays copy-on-write.  No-op
        when the state is already cached, or with ``seed=None`` (fresh
        entropy per run cannot be pre-programmed).

        With ``batch`` the warm-up additionally guarantees tape coverage
        for that batch size: the first call records the batch-generic
        tape (one interpreter pass over zero-filled inputs — the schedule
        is input-independent); later calls only derive that batch's
        timing stats via a shadow simulation, which is how one tape comes
        to serve the whole batch ladder.  Ignored when the engine cannot
        replay (``execution_mode="interpret"``, RANDOM-op program, or
        seed=None).
        """
        if self.seed is not None:
            if self._state_key() not in self.compiled.programmed_states:
                # Side effect of building any simulator: the programming
                # pass runs and its state is harvested.  Skip the build
                # when the state is already cached (warm() is called once
                # per batch rung by serving bring-up).
                self._simulator(1)
            if batch is not None and self._replay_blocker() is None:
                tape = self.compiled.execution_tapes.get(self._fingerprint)
                if tape is None:
                    zeros = {
                        name: np.zeros((batch, length) if batch > 1
                                       else (length,), dtype=np.int64)
                        for name, (_tile, _addr, length)
                        in self.program.input_layout.items()
                    }
                    self.run_batch(zeros)
                elif tape.stats_for(batch) is None:
                    self._stats_for_batch(tape, batch)
        return self

    # -- trace replay ------------------------------------------------------

    def _replay_blocker(self) -> str | None:
        """Why this engine cannot trace-replay, or ``None`` if it can."""
        if self.execution_mode == "interpret":
            return "execution_mode='interpret'"
        if self.seed is None:
            return ("seed=None requests fresh entropy per run, which a "
                    "recorded schedule would freeze")
        if self._tape_blocker is False:  # not scanned yet
            self._tape_blocker = find_unsupported_op(self.program)
        return self._tape_blocker

    def _dependence_graph(self):
        """The program's static dependence graph (built once, cached).

        Consumed by the tape cross-check in :meth:`_execute`; the same
        object is the substrate the static verifier and the future tape
        optimizer use (see ``docs/analysis.md``).
        """
        if self._depgraph is None:
            from repro.analysis.depgraph import StaticDependenceGraph

            self._depgraph = StaticDependenceGraph.from_program(
                self.program, self.config)
        return self._depgraph

    def _optimizer_enabled(self) -> bool:
        """Whether this engine should fuse tapes into optimized plans."""
        return self.execution_mode in ("auto", "optimized")

    def _optimized_plan(self, tape: ExecutionTape) -> OptimizedTape | None:
        """The tape's fused plan, building (and caching) it on first use.

        Returns ``None`` when the tape previously failed optimization or
        runtime verification (the sentinel strings on ``tape.optimized``)
        — plain replay keeps serving it, and the miss was already counted
        when the sentinel was set.
        """
        opt = tape.optimized
        if isinstance(opt, OptimizedTape):
            return opt
        if opt is not None:  # "unoptimizable" / "failed-verification"
            return None
        try:
            plan = optimize_tape(tape, self._dependence_graph())
        except TapeOptimizationError:
            tape.optimized = "unoptimizable"
            _count_tape_event("optimizer_fallback")
            return None
        tape.optimized = plan
        return plan

    def _fresh_node(self, batch: int) -> Node:
        """An event-loop-free node for replay, reusing cached programming."""
        key = self._state_key()
        state = self.compiled.programmed_states.get(key) if key else None
        node = Node.for_program(
            self.config, self.program, lambda _delay, _callback: None,
            crossbar_model=self.crossbar_model, seed=self.seed,
            batch=batch, programmed_state=state)
        if key is not None and state is None:
            self._harvest_programmed_state(key, node)
        return node

    def _replayer(self, batch: int) -> TapeReplayer | None:
        """The bound replayer for ``batch``, or ``None`` with no tape yet.

        Binds the tape's optimized plan (building it on first use) when
        the optimizer is enabled, a plain :class:`TapeReplayer` otherwise.
        Raises :class:`TapeValidationError` when a cached tape cannot be
        bound to a fresh node (callers treat that as "re-record").
        """
        tape = self.compiled.execution_tapes.get(self._fingerprint)
        if tape is None:
            self._replayers.pop(batch, None)
            return None
        plan = (self._optimized_plan(tape)
                if self._optimizer_enabled() else None)
        replayer = self._replayers.get(batch)
        if replayer is not None:
            if (replayer.tape is tape
                    and (replayer.optimized is plan
                         if isinstance(replayer, OptimizedReplayer)
                         else plan is None)):
                return replayer
            # The cached tape or its plan was cleared or replaced
            # (invalidation, clear_tape_caches, a failed equivalence
            # probe): drop the stale binding and rebind below.
            self._replayers.pop(batch, None)
        node = self._fresh_node(batch)
        if plan is not None:
            replayer = OptimizedReplayer(tape, plan, node, self.program)
        else:
            replayer = TapeReplayer(tape, node, self.program)
        self._replayers[batch] = replayer
        while len(self._replayers) > _REPLAYER_CAP:
            self._replayers.pop(next(iter(self._replayers)))
        return replayer

    def _invalidate_tape(self) -> None:
        """Drop the tape, its bound replayers, and the persistence
        bookkeeping that claimed it was saved.

        Clearing ``_persisted_stats_batches`` and raising
        ``_artifact_stale`` makes the next :meth:`ensure_artifacts` /
        :meth:`save_artifacts` rewrite the on-disk artifact instead of
        trusting a manifest that still advertises the evicted tape.
        """
        self._replayers.clear()
        self.compiled.execution_tapes.pop(self._fingerprint, None)
        self._persisted_stats_batches.clear()
        self._artifact_stale = True

    def _stats_for_batch(self, tape: ExecutionTape, batch: int
                         ) -> SimulationStats:
        """Stats for ``batch``, deriving (and caching) them when missing.

        The tape is batch-generic but timing is not: latencies, word
        counts, energy, and NoC traffic all scale with the lane count.
        Derivation runs one *shadow timing* simulation — a ``batch=1``
        functional pass with every cost charged at ``batch`` lanes
        (``Simulator(stats_batch=...)``) — which yields stats
        field-identical to a real batch-``batch`` interpreter run at
        batch-1 cost, because event ordering depends on the batch only
        through those charged latencies.
        """
        if tape.stats_for(batch) is None:
            zeros = {
                name: np.zeros(length, dtype=np.int64)
                for name, (_tile, _addr, length)
                in self.program.input_layout.items()
            }
            key = self._state_key()
            state = self.compiled.programmed_states.get(key) if key else None
            sim = Simulator(self.config, self.program,
                            crossbar_model=self.crossbar_model,
                            seed=self.seed, batch=1,
                            programmed_state=state,
                            stats_batch=batch)
            if key is not None and state is None:
                self._harvest_programmed_state(key, sim.node)
            sim.run(zeros)
            tape.add_stats(batch, sim.stats)
            _count_tape_event("derived")
        return tape.stats_copy(batch)

    def _verify_optimized(self, replayer: "OptimizedReplayer",
                          inputs: dict[str, np.ndarray], batch: int,
                          words: dict[str, np.ndarray]
                          ) -> tuple[dict[str, np.ndarray], bool]:
        """First-run equivalence probe for an optimized plan at ``batch``.

        Replays the same inputs through a transient plain
        :class:`TapeReplayer` on a fresh node and compares bitwise.  On a
        match the (plan, batch) pair is marked verified and never probed
        again; on a mismatch the plan is poisoned
        (``tape.optimized = "failed-verification"``), the fallback is
        counted, and the plain replayer's words are served — the caller
        never returns unverified optimized output.
        """
        reference = TapeReplayer(replayer.tape, self._fresh_node(batch),
                                 self.program)
        ref_words = reference.run(inputs)
        # The probe is bookkeeping, not a served run.
        replayer.tape.replay_count -= 1
        same = (set(ref_words) == set(words)
                and all(np.array_equal(words[name], ref_words[name])
                        for name in ref_words))
        if same:
            replayer.optimized.verified_batches.add(batch)
            return words, True
        replayer.tape.optimized = "failed-verification"
        self._replayers.clear()
        _count_tape_event("optimizer_fallback")
        return ref_words, False

    def _execute(self, inputs: dict[str, np.ndarray], batch: int
                 ) -> tuple[dict[str, np.ndarray], SimulationStats, str]:
        """One pass: replay (optimized when possible) or interpret+record.

        Returns ``(words, stats, execution)`` with ``execution`` naming the
        path taken (``"optimized"`` / ``"replay"`` / ``"interpreter"``).
        """
        blocker = self._replay_blocker()
        if blocker is not None:
            if self.execution_mode in ("replay", "optimized"):
                raise ValueError(
                    f"execution_mode={self.execution_mode!r} but the "
                    f"program cannot be trace-replayed: {blocker}")
            if self.execution_mode != "interpret":
                _count_tape_event("fallback")
            sim = self._simulator(batch)
            return sim.run(inputs), sim.stats, "interpreter"

        with self._replay_lock:
            try:
                replayer = self._replayer(batch)
                if replayer is not None:
                    words = replayer.run(inputs)
                    execution = "replay"
                    if isinstance(replayer, OptimizedReplayer):
                        if batch in replayer.optimized.verified_batches:
                            execution = "optimized"
                        else:
                            words, verified = self._verify_optimized(
                                replayer, inputs, batch, words)
                            execution = ("optimized" if verified
                                         else "replay")
                    stats = self._stats_for_batch(replayer.tape, batch)
                    _count_tape_event(execution if execution == "optimized"
                                      else "replay")
                    return words, stats, execution
            except TapeValidationError:
                # A stale/incompatible tape is an internal cache problem,
                # never a user-facing failure: drop it and re-record below.
                self._invalidate_tape()
                _count_tape_event("fallback")

        recorder = TapeRecorder(batch)
        sim = self._simulator(batch, tape_recorder=recorder)
        words = sim.run(inputs)
        tape = recorder.finish(sim.stats)
        problems = self._dependence_graph().validate_tape(tape)
        if problems:
            # The recorded schedule is not a legal realization of the
            # program's static dependence graph — never replay it.  The
            # run's own results are still correct (the interpreter
            # computed them); only the tape is discarded, and the miss is
            # counted like every other fast-path fallback.
            _count_tape_event("fallback")
            return words, sim.stats, "interpreter"
        tapes = self.compiled.execution_tapes
        # Shared with every replica engine on this compilation: serialize
        # the insert-then-evict (concurrent recorders would otherwise race
        # next(iter())/pop once the cap is reached).
        with _tape_lock:
            tapes[self._fingerprint] = tape
            while len(tapes) > _EXECUTION_TAPE_CAP:
                tapes.pop(next(iter(tapes)), None)
            _TAPE_MODELS[id(self.compiled)] = self.compiled
        _count_tape_event("recording")
        return words, sim.stats, "interpreter"

    # -- execution ---------------------------------------------------------

    def predict(self, inputs: Mapping[str, np.ndarray]) -> RunResult:
        """Float-first inference: real values in, :class:`RunResult` out.

        Args:
            inputs: real-valued arrays per input name — ``(length,)``
                vectors are broadcast to every lane, ``(batch, length)``
                matrices carry one inference per row.  Quantization to the
                datapath fixed-point format happens here.

        Returns:
            The run's :class:`RunResult`; read dequantized floats from
            ``result.outputs`` and raw words via the mapping interface.

        Raises:
            ValueError: unknown/missing input names, per-lane lengths that
                disagree with the compiled ``input_layout``, or
                inconsistent batch sizes — checked up front, before any
                simulation starts.
        """
        arrays = {name: np.asarray(values, dtype=np.float64)
                  for name, values in inputs.items()}
        # Validation (names, lengths, batch consistency) happens in
        # run_batch; quantization preserves every checked property.
        return self.run_batch({name: self.quantize(arr)
                               for name, arr in arrays.items()})

    def run_batch(self, inputs: Mapping[str, np.ndarray]) -> RunResult:
        """Run a whole batch of fixed-point words in one SIMD pass.

        Args:
            inputs: fixed-point words per input name; ``(batch, length)``
                matrices carry one row per lane, 1-D vectors are broadcast
                to every lane (shared conditioning inputs).

        Returns:
            The :class:`RunResult` — a mapping over the fixed-point output
            words (``(batch, length)``, or ``(length,)`` when the batch
            size is 1) that also carries float views and the pass's stats.
        """
        self._check_names(inputs)
        batch = self._infer_batch(inputs)
        words, stats, execution = self._execute(dict(inputs), batch)
        self._last_stats = stats
        return RunResult(words=words, fmt=self.fmt, stats=stats,
                         batch=batch, execution=execution)

    def run(self, inputs: Mapping[str, np.ndarray]) -> RunResult:
        """Run a single input (1-D fixed-point vectors) through the
        simulator."""
        return self.run_batch(inputs)

    def run_sequential(self, inputs: Mapping[str, np.ndarray]) -> RunResult:
        """Reference path: one single-input simulation per batch row.

        Produces outputs shaped exactly like :meth:`run_batch` (stacked
        rows); used by the equivalence tests and as a fallback when lanes
        must not share a simulator (e.g. stochastic RANDOM-op workloads
        where each input should draw fresh noise).

        The result's ``stats`` are the final row's run (matching the
        legacy ``last_stats`` contract); ``lane_stats`` carries every
        row's stats.
        """
        self._check_names(inputs)
        batch = self._infer_batch(inputs)
        if batch == 1:
            result = self.run_batch(inputs)
            return RunResult(words=result.words, fmt=result.fmt,
                             stats=result.stats, batch=1,
                             lane_stats=(result.stats,))
        rows: list[dict[str, np.ndarray]] = []
        lane_stats: list[SimulationStats] = []
        for lane in range(batch):
            lane_inputs = {
                name: (np.asarray(values)[lane]
                       if np.asarray(values).ndim == 2 else values)
                for name, values in inputs.items()
            }
            sim = self._simulator(1)
            rows.append(sim.run(lane_inputs))
            lane_stats.append(sim.stats)
            self._last_stats = sim.stats
        words = {name: np.stack([row[name] for row in rows])
                 for name in rows[0]}
        return RunResult(words=words, fmt=self.fmt, stats=lane_stats[-1],
                         batch=batch, lane_stats=tuple(lane_stats))
