"""Batched inference engine: compile once, run many inputs SIMD-over-batch.

PUMA's evaluation (Section 7.3, Fig 11c/d) is framed around *batched*
inference: the expensive work — compiling the model and programming the
crossbars — happens once, and many inputs stream through the programmed
hardware.  :class:`InferenceEngine` is the top-level serving interface for
that pattern:

* ``compile_model`` runs once per (model, config, options) triple; the
  resulting :class:`~repro.compiler.compile.CompiledModel` is cached
  process-wide (:func:`compile_cache_info` reports hits/misses), so
  constructing several engines for the same model is cheap;
* :meth:`predict` is the float-first entry point: it validates named float
  inputs against the compiled program's ``input_layout``, quantizes them,
  executes the whole ``(batch, length)`` matrix in a single
  SIMD-over-batch simulator pass, and returns a typed
  :class:`~repro.serve.types.RunResult` carrying float and fixed-point
  output views plus the run's :class:`~repro.sim.stats.SimulationStats`;
* :meth:`run_batch` is the same pass for callers already holding
  fixed-point words; :meth:`run_sequential` is the reference fallback (one
  single-input simulation per row) — batched and sequential results are
  bitwise identical for deterministic programs, for both ideal and noisy
  crossbar models (``tests/test_batched_engine.py`` enforces this).

For an async front-end with queueing and dynamic micro-batching on top of
this engine, see :class:`repro.serve.PumaServer`.

Quickstart::

    from repro.engine import InferenceEngine
    from repro.workloads.mlp import build_mlp_model

    engine = InferenceEngine(build_mlp_model([64, 150, 150, 14]), seed=0)
    result = engine.predict({"x": x_float})     # (batch, 64) floats in
    y = result.outputs["out"]                   # (batch, 14) floats out
    print(result.cycles_per_inference, result.stats.summary())
"""

from __future__ import annotations

import dataclasses
import warnings
import weakref
from typing import Mapping, NamedTuple

import numpy as np

from repro.arch.config import PumaConfig
from repro.arch.crossbar import CrossbarModel
from repro.compiler.compile import CompiledModel, compile_model
from repro.compiler.frontend import Model
from repro.compiler.options import CompilerOptions
from repro.serve.types import RunResult
from repro.sim.simulator import Simulator
from repro.sim.stats import SimulationStats

# Most programmed-crossbar snapshots kept per compiled model (each holds
# every MVMU's levels + conductances — multi-MB for mid-size models).
_PROGRAMMED_STATE_CAP = 8

# model -> {config/options fingerprint -> CompiledModel}.  Weak keys: the
# cache must not keep dead models (and their weight arrays) alive.
_COMPILE_CACHE: "weakref.WeakKeyDictionary[Model, dict[tuple, CompiledModel]]" \
    = weakref.WeakKeyDictionary()
_cache_hits = 0
_cache_misses = 0


def _fingerprint_value(value):
    """A hashable, value-based key component.

    Dataclasses decompose field by field (recursively), so the key covers
    exactly what the instance *holds* — unlike ``repr``, which would miss
    ``repr=False`` fields and collide for distinct types with equal
    string forms.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (type(value).__qualname__, tuple(
            (f.name, _fingerprint_value(getattr(value, f.name)))
            for f in dataclasses.fields(value)))
    if isinstance(value, (list, tuple)):
        return (type(value).__name__,
                tuple(_fingerprint_value(v) for v in value))
    if isinstance(value, dict):
        return ("dict", tuple(sorted(
            (k, _fingerprint_value(v)) for k, v in value.items())))
    return value


def _cache_fingerprint(config: PumaConfig,
                       options: CompilerOptions | None) -> tuple:
    """A stable value key for the compile-relevant arguments."""
    return (_fingerprint_value(config), _fingerprint_value(options))


class CompileCacheInfo(NamedTuple):
    """Process-wide compile-cache statistics (cf. ``functools.lru_cache``)."""

    hits: int
    misses: int
    entries: int


def compile_cached(model: Model, config: PumaConfig,
                   options: CompilerOptions | None = None) -> CompiledModel:
    """Compile ``model`` for ``config``, memoized on (model, config, options)."""
    global _cache_hits, _cache_misses
    per_model = _COMPILE_CACHE.setdefault(model, {})
    key = _cache_fingerprint(config, options)
    if key in per_model:
        _cache_hits += 1
    else:
        _cache_misses += 1
        per_model[key] = compile_model(model, config, options)
    return per_model[key]


def compile_cache_info() -> CompileCacheInfo:
    """Hits/misses/live-entry counts of the process-wide compile cache."""
    entries = sum(len(compiled) for compiled in _COMPILE_CACHE.values())
    return CompileCacheInfo(hits=_cache_hits, misses=_cache_misses,
                            entries=entries)


def clear_compile_cache() -> None:
    """Drop every cached compilation and reset the hit/miss counters."""
    global _cache_hits, _cache_misses
    _COMPILE_CACHE.clear()
    _cache_hits = 0
    _cache_misses = 0


class InferenceEngine:
    """Serves batched inference for one compiled model.

    Args:
        model: the frontend model to serve (``None`` only via
            :meth:`from_compiled`).
        config: accelerator configuration (Table 3 defaults when omitted).
        options: compiler options; part of the compile-cache key.
        crossbar_model: overrides the device model (noise studies).
        seed: RNG seed for write noise and the RANDOM op.  The same seed is
            used for every run, so repeated calls see identically programmed
            crossbars — the property that makes batched and sequential
            executions comparable bit for bit.

    Attributes:
        compiled: the (cached) compilation artifacts.
        program: the executable :class:`~repro.isa.program.NodeProgram`.
        fmt: the datapath fixed-point format.
    """

    def __init__(self, model: Model | None, config: PumaConfig | None = None,
                 options: CompilerOptions | None = None,
                 crossbar_model: CrossbarModel | None = None,
                 seed: int | None = 0, *,
                 compiled: CompiledModel | None = None) -> None:
        if (model is None) == (compiled is None):
            raise ValueError(
                "provide exactly one of 'model' (compiled through the "
                "cache) or 'compiled' (a pre-built CompiledModel)")
        self.model = model
        self.config = config if config is not None else PumaConfig()
        self.options = options
        self.crossbar_model = crossbar_model
        self.seed = seed
        if compiled is not None:
            self.compiled = compiled
        else:
            self.compiled = compile_cached(model, self.config, options)
        self.program = self.compiled.program
        self.fmt = self.config.core.fixed_point
        self._last_stats: SimulationStats | None = None

    @classmethod
    def from_compiled(cls, compiled: CompiledModel,
                      config: PumaConfig | None = None, *,
                      crossbar_model: CrossbarModel | None = None,
                      seed: int | None = 0) -> "InferenceEngine":
        """Serve an already-compiled model (CNN lowering, importer output).

        Bypasses the compile cache — the caller owns the compilation.
        """
        return cls(None, config, crossbar_model=crossbar_model, seed=seed,
                   compiled=compiled)

    # -- deprecated mutable state ------------------------------------------

    @property
    def last_stats(self) -> SimulationStats | None:
        """Deprecated: stats of the most recent run.

        Mutable per-engine state is a hazard once a server interleaves
        runs; read ``.stats`` on the :class:`RunResult` a run returns.
        """
        warnings.warn(
            "InferenceEngine.last_stats is deprecated; use the RunResult "
            "returned by predict()/run_batch()/run_sequential() "
            "(its .stats attribute)", DeprecationWarning, stacklevel=2)
        return self._last_stats

    @last_stats.setter
    def last_stats(self, value: SimulationStats | None) -> None:
        warnings.warn(
            "InferenceEngine.last_stats is deprecated; stats travel on "
            "RunResult now", DeprecationWarning, stacklevel=2)
        self._last_stats = value

    # -- data formatting ---------------------------------------------------

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Real values -> fixed-point words (any shape)."""
        return self.fmt.quantize(values)

    def dequantize(self, words: np.ndarray) -> np.ndarray:
        """Fixed-point words -> real values (any shape)."""
        return self.fmt.dequantize(words)

    # -- input validation --------------------------------------------------

    def _check_names(self, inputs: Mapping[str, np.ndarray]) -> None:
        """Every program input present, nothing extra."""
        layout = self.program.input_layout
        unknown = sorted(set(inputs) - set(layout))
        if unknown:
            raise ValueError(
                f"unknown input name(s) {unknown}; program inputs are "
                f"{sorted(layout)}")
        missing = sorted(set(layout) - set(inputs))
        if missing:
            raise ValueError(
                f"missing input(s) {missing}; program inputs are "
                f"{sorted(layout)}")

    def _infer_batch(self, inputs: Mapping[str, np.ndarray]) -> int:
        """Batch size implied by the input shapes (rows of 2-D inputs).

        Validates each value against the compiled ``input_layout``: 1-D
        vectors (broadcast to every lane) and ``(batch, length)`` matrices
        are accepted, per-lane lengths must match the layout, and all 2-D
        inputs must agree on the batch size.
        """
        layout = self.program.input_layout
        batch: int | None = None
        for name, values in inputs.items():
            arr = np.asarray(values)
            if arr.ndim == 2:
                if batch is not None and arr.shape[0] != batch:
                    raise ValueError(
                        f"inconsistent batch sizes across inputs: "
                        f"{batch} vs {arr.shape[0]} ({name!r})")
                batch = arr.shape[0]
            elif arr.ndim != 1:
                raise ValueError(
                    f"input {name!r} must be 1-D or (batch, length), "
                    f"got shape {arr.shape}")
            if name in layout:
                length = layout[name][2]
                if arr.shape[-1] != length:
                    raise ValueError(
                        f"input {name!r} expects {length} values per "
                        f"inference, got {arr.shape[-1]} "
                        f"(shape {arr.shape})")
        return batch if batch is not None else 1

    def validate_request(self, inputs: Mapping[str, np.ndarray]) -> None:
        """Validate one single-inference request (1-D vectors only).

        The fail-fast check :class:`repro.serve.PumaServer` runs at
        ``submit`` time, before a request can poison a coalesced batch.
        """
        self._check_names(inputs)
        for name, values in inputs.items():
            arr = np.asarray(values)
            if arr.ndim != 1:
                raise ValueError(
                    f"request input {name!r} must be a 1-D vector "
                    f"(one inference), got shape {arr.shape}")
        self._infer_batch(inputs)

    def _simulator(self, batch: int) -> Simulator:
        """A fresh simulator, reusing cached crossbar programming.

        The first construction for a given (config, crossbar model, seed)
        programs the crossbars and harvests the configuration-time state
        (conductances + post-programming RNG position) onto the compiled
        model; every later construction — any batch size, any replica
        engine sharing the compilation — installs that state instead of
        re-programming, bitwise identically (Section 3.2.5: weights are
        written once at configuration time).  ``seed=None`` requests fresh
        entropy per run, which must not be frozen, so it bypasses the
        cache.
        """
        state = key = None
        if self.seed is not None:
            key = (_fingerprint_value(self.config),
                   _fingerprint_value(self.crossbar_model), self.seed)
            state = self.compiled.programmed_states.get(key)
        sim = Simulator(self.config, self.program,
                        crossbar_model=self.crossbar_model,
                        seed=self.seed, batch=batch,
                        programmed_state=state)
        if key is not None and state is None:
            states = self.compiled.programmed_states
            states[key] = sim.node.export_programmed_state(self.program)
            # A seed/noise sweep over one kept-alive model would
            # otherwise pin one multi-MB crossbar snapshot per
            # (config, crossbar model, seed) forever; evicting the
            # oldest entries costs only a re-programming pass.
            while len(states) > _PROGRAMMED_STATE_CAP:
                states.pop(next(iter(states)))
        return sim

    def warm(self) -> "InferenceEngine":
        """Program the crossbars once, ahead of the first run.

        Compilation already happened in ``__init__``; this performs (and
        caches) the configuration-time crossbar programming so the first
        real request doesn't pay it — and so worker processes forked after
        ``warm()`` inherit the programmed arrays copy-on-write.  No-op
        when the state is already cached, or with ``seed=None`` (fresh
        entropy per run cannot be pre-programmed).
        """
        if self.seed is not None:
            self._simulator(1)
        return self

    # -- execution ---------------------------------------------------------

    def predict(self, inputs: Mapping[str, np.ndarray]) -> RunResult:
        """Float-first inference: real values in, :class:`RunResult` out.

        Args:
            inputs: real-valued arrays per input name — ``(length,)``
                vectors are broadcast to every lane, ``(batch, length)``
                matrices carry one inference per row.  Quantization to the
                datapath fixed-point format happens here.

        Returns:
            The run's :class:`RunResult`; read dequantized floats from
            ``result.outputs`` and raw words via the mapping interface.

        Raises:
            ValueError: unknown/missing input names, per-lane lengths that
                disagree with the compiled ``input_layout``, or
                inconsistent batch sizes — checked up front, before any
                simulation starts.
        """
        arrays = {name: np.asarray(values, dtype=np.float64)
                  for name, values in inputs.items()}
        # Validation (names, lengths, batch consistency) happens in
        # run_batch; quantization preserves every checked property.
        return self.run_batch({name: self.quantize(arr)
                               for name, arr in arrays.items()})

    def run_batch(self, inputs: Mapping[str, np.ndarray]) -> RunResult:
        """Run a whole batch of fixed-point words in one SIMD pass.

        Args:
            inputs: fixed-point words per input name; ``(batch, length)``
                matrices carry one row per lane, 1-D vectors are broadcast
                to every lane (shared conditioning inputs).

        Returns:
            The :class:`RunResult` — a mapping over the fixed-point output
            words (``(batch, length)``, or ``(length,)`` when the batch
            size is 1) that also carries float views and the pass's stats.
        """
        self._check_names(inputs)
        batch = self._infer_batch(inputs)
        sim = self._simulator(batch)
        words = sim.run(dict(inputs))
        self._last_stats = sim.stats
        return RunResult(words=words, fmt=self.fmt, stats=sim.stats,
                         batch=batch)

    def run(self, inputs: Mapping[str, np.ndarray]) -> RunResult:
        """Run a single input (1-D fixed-point vectors) through the
        simulator."""
        return self.run_batch(inputs)

    def run_sequential(self, inputs: Mapping[str, np.ndarray]) -> RunResult:
        """Reference path: one single-input simulation per batch row.

        Produces outputs shaped exactly like :meth:`run_batch` (stacked
        rows); used by the equivalence tests and as a fallback when lanes
        must not share a simulator (e.g. stochastic RANDOM-op workloads
        where each input should draw fresh noise).

        The result's ``stats`` are the final row's run (matching the
        legacy ``last_stats`` contract); ``lane_stats`` carries every
        row's stats.
        """
        self._check_names(inputs)
        batch = self._infer_batch(inputs)
        if batch == 1:
            result = self.run_batch(inputs)
            return RunResult(words=result.words, fmt=result.fmt,
                             stats=result.stats, batch=1,
                             lane_stats=(result.stats,))
        rows: list[dict[str, np.ndarray]] = []
        lane_stats: list[SimulationStats] = []
        for lane in range(batch):
            lane_inputs = {
                name: (np.asarray(values)[lane]
                       if np.asarray(values).ndim == 2 else values)
                for name, values in inputs.items()
            }
            sim = self._simulator(1)
            rows.append(sim.run(lane_inputs))
            lane_stats.append(sim.stats)
            self._last_stats = sim.stats
        words = {name: np.stack([row[name] for row in rows])
                 for name in rows[0]}
        return RunResult(words=words, fmt=self.fmt, stats=lane_stats[-1],
                         batch=batch, lane_stats=tuple(lane_stats))
