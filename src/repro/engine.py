"""Batched inference engine: compile once, run many inputs SIMD-over-batch.

PUMA's evaluation (Section 7.3, Fig 11c/d) is framed around *batched*
inference: the expensive work — compiling the model and programming the
crossbars — happens once, and many inputs stream through the programmed
hardware.  :class:`InferenceEngine` is the top-level serving interface for
that pattern:

* ``compile_model`` runs once per (model, config, options) triple; the
  resulting :class:`~repro.compiler.compile.CompiledModel` is cached
  process-wide, so constructing several engines (or re-constructing one)
  for the same model is cheap;
* :meth:`run_batch` executes a whole ``(batch, length)`` input matrix in a
  single simulator pass — every instruction operates on all lanes at once
  (PUMA programs are control-uniform across inputs), so the Python/event
  overhead of the detailed simulator is paid once per *batch* instead of
  once per *input*;
* :meth:`run_sequential` is the reference fallback: one classic
  single-input simulation per row.  Batched and sequential results are
  bitwise identical for deterministic programs (anything without the
  RANDOM op), for both ideal and noisy crossbar models — the property
  tests in ``tests/test_batched_engine.py`` enforce this.

Quickstart::

    from repro.engine import InferenceEngine
    from repro.workloads.mlp import build_mlp_model

    engine = InferenceEngine(build_mlp_model([64, 150, 150, 14]), seed=0)
    y = engine.run_batch({"x": engine.quantize(x_float)})["out"]
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.arch.config import PumaConfig
from repro.arch.crossbar import CrossbarModel
from repro.compiler.compile import CompiledModel, compile_model
from repro.compiler.frontend import Model
from repro.compiler.options import CompilerOptions
from repro.sim.simulator import Simulator
from repro.sim.stats import SimulationStats

# model -> {config/options fingerprint -> CompiledModel}.  Weak keys: the
# cache must not keep dead models (and their weight arrays) alive.
_COMPILE_CACHE: "weakref.WeakKeyDictionary[Model, dict[str, CompiledModel]]" \
    = weakref.WeakKeyDictionary()


def _cache_fingerprint(config: PumaConfig,
                       options: CompilerOptions | None) -> str:
    """A stable key for the compile-relevant arguments.

    Configs and options are small dataclasses whose ``repr`` covers every
    field, which makes a faithful value key without requiring hashability.
    """
    return f"{config!r}|{options!r}"


def compile_cached(model: Model, config: PumaConfig,
                   options: CompilerOptions | None = None) -> CompiledModel:
    """Compile ``model`` for ``config``, memoized on (model, config, options)."""
    per_model = _COMPILE_CACHE.setdefault(model, {})
    key = _cache_fingerprint(config, options)
    if key not in per_model:
        per_model[key] = compile_model(model, config, options)
    return per_model[key]


def clear_compile_cache() -> None:
    """Drop every cached compilation (tests, memory pressure)."""
    _COMPILE_CACHE.clear()


class InferenceEngine:
    """Serves batched inference for one compiled model.

    Args:
        model: the frontend model to serve.
        config: accelerator configuration (Table 3 defaults when omitted).
        options: compiler options; part of the compile-cache key.
        crossbar_model: overrides the device model (noise studies).
        seed: RNG seed for write noise and the RANDOM op.  The same seed is
            used for every run, so repeated calls see identically programmed
            crossbars — the property that makes batched and sequential
            executions comparable bit for bit.

    Attributes:
        compiled: the (cached) compilation artifacts.
        program: the executable :class:`~repro.isa.program.NodeProgram`.
        fmt: the datapath fixed-point format.
        last_stats: simulation statistics of the most recent run.
    """

    def __init__(self, model: Model, config: PumaConfig | None = None,
                 options: CompilerOptions | None = None,
                 crossbar_model: CrossbarModel | None = None,
                 seed: int | None = 0) -> None:
        self.model = model
        self.config = config if config is not None else PumaConfig()
        self.options = options
        self.crossbar_model = crossbar_model
        self.seed = seed
        self.compiled = compile_cached(model, self.config, options)
        self.program = self.compiled.program
        self.fmt = self.config.core.fixed_point
        self.last_stats: SimulationStats | None = None

    # -- data formatting ---------------------------------------------------

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Real values -> fixed-point words (any shape)."""
        return self.fmt.quantize(values)

    def dequantize(self, words: np.ndarray) -> np.ndarray:
        """Fixed-point words -> real values (any shape)."""
        return self.fmt.dequantize(words)

    def _infer_batch(self, inputs: dict[str, np.ndarray]) -> int:
        """Batch size implied by the input shapes (rows of 2-D inputs)."""
        batch: int | None = None
        for name, values in inputs.items():
            arr = np.asarray(values)
            if arr.ndim == 2:
                if batch is not None and arr.shape[0] != batch:
                    raise ValueError(
                        f"inconsistent batch sizes across inputs: "
                        f"{batch} vs {arr.shape[0]} ({name!r})")
                batch = arr.shape[0]
            elif arr.ndim != 1:
                raise ValueError(
                    f"input {name!r} must be 1-D or (batch, length), "
                    f"got shape {arr.shape}")
        return batch if batch is not None else 1

    def _simulator(self, batch: int) -> Simulator:
        return Simulator(self.config, self.program,
                         crossbar_model=self.crossbar_model,
                         seed=self.seed, batch=batch)

    # -- execution ---------------------------------------------------------

    def run_batch(self, inputs: dict[str, np.ndarray]
                  ) -> dict[str, np.ndarray]:
        """Run a whole batch through one SIMD-over-batch simulation.

        Args:
            inputs: fixed-point words per input name; ``(batch, length)``
                matrices carry one row per lane, 1-D vectors are broadcast
                to every lane (shared conditioning inputs).

        Returns:
            Outputs by name, ``(batch, length)`` (or ``(length,)`` when the
            batch size is 1).
        """
        batch = self._infer_batch(inputs)
        sim = self._simulator(batch)
        outputs = sim.run(dict(inputs))
        self.last_stats = sim.stats
        return outputs

    def run(self, inputs: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Run a single input (1-D vectors) through the simulator."""
        return self.run_batch(inputs)

    def run_sequential(self, inputs: dict[str, np.ndarray]
                       ) -> dict[str, np.ndarray]:
        """Reference path: one single-input simulation per batch row.

        Produces outputs shaped exactly like :meth:`run_batch` (stacked
        rows); used by the equivalence tests and as a fallback when lanes
        must not share a simulator (e.g. stochastic RANDOM-op workloads
        where each input should draw fresh noise).

        ``last_stats`` holds the stats of the final row's run.
        """
        batch = self._infer_batch(inputs)
        if batch == 1:
            return self.run_batch(inputs)
        rows: list[dict[str, np.ndarray]] = []
        for lane in range(batch):
            lane_inputs = {
                name: (np.asarray(values)[lane]
                       if np.asarray(values).ndim == 2 else values)
                for name, values in inputs.items()
            }
            sim = self._simulator(1)
            rows.append(sim.run(lane_inputs))
            self.last_stats = sim.stats
        return {name: np.stack([row[name] for row in rows])
                for name in rows[0]}
