"""Experiment drivers: regenerate every table and figure of the paper.

Each module exposes the data behind one exhibit (as plain rows/series
dictionaries) plus a text renderer; :mod:`repro.figures.runner` regenerates
everything and produces the report recorded in EXPERIMENTS.md.
"""

from repro.figures import (  # noqa: F401
    fig4,
    fig9,
    fig11,
    fig12,
    fig13,
    table1,
    table3,
    table5,
    table6,
    table7,
    table8,
)
from repro.figures.runner import run_all

__all__ = ["fig4", "fig9", "fig11", "fig12", "fig13", "table1", "table3",
           "table5", "table6", "table7", "table8", "run_all"]
