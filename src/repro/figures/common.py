"""Shared helpers for the experiment drivers."""

from __future__ import annotations

from typing import Sequence


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None,
                 title: str = "") -> str:
    """Render rows of dicts as an aligned text table."""
    if not rows:
        return f"{title}\n(no data)"
    columns = list(columns) if columns else list(rows[0].keys())
    widths = {c: len(str(c)) for c in columns}
    formatted_rows = []
    for row in rows:
        formatted = {}
        for c in columns:
            value = row.get(c, "")
            if isinstance(value, float):
                text = f"{value:.4g}"
            else:
                text = str(value)
            formatted[c] = text
            widths[c] = max(widths[c], len(text))
        formatted_rows.append(formatted)
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(f"{c:<{widths[c]}}" for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for formatted in formatted_rows:
        lines.append(" | ".join(f"{formatted[c]:<{widths[c]}}"
                                for c in columns))
    return "\n".join(lines)
