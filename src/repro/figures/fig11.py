"""Figure 11: energy and latency vs CPU/GPU platforms.

(a) inference energy normalized to PUMA (batch 1);
(b) inference latency normalized to PUMA (batch 1);
(c) batch energy savings compared to Haswell (batches 16..128);
(d) batch throughput normalized to Haswell.
"""

from __future__ import annotations

from functools import lru_cache

from repro.baselines import PLATFORMS, estimate
from repro.figures.common import format_table
from repro.perf import estimate_puma
from repro.workloads.registry import TABLE5_BENCHMARKS, benchmark

BATCH_SIZES = (16, 32, 64, 128)
BENCHES = tuple(TABLE5_BENCHMARKS)


@lru_cache(maxsize=8)
def _puma(name: str, batch: int = 1):
    return estimate_puma(benchmark(name), batch=batch)


@lru_cache(maxsize=64)
def _platform(name: str, platform: str, batch: int = 1):
    return estimate(benchmark(name), PLATFORMS[platform], batch=batch)


def energy_rows() -> list[dict]:
    """Fig 11(a): per-inference energy normalized to PUMA (higher = PUMA
    saves more)."""
    rows = []
    for bench in BENCHES:
        puma = _puma(bench)
        row: dict = {"Benchmark": bench}
        for platform in PLATFORMS:
            ratio = (_platform(bench, platform).energy_per_inference_j
                     / puma.energy_per_inference_j)
            row[platform] = round(ratio, 2)
        rows.append(row)
    return rows


def latency_rows() -> list[dict]:
    """Fig 11(b): latency normalized to PUMA (values < 1 mean the platform
    beats PUMA — the MLP-on-GPU case the paper highlights)."""
    rows = []
    for bench in BENCHES:
        puma = _puma(bench)
        row: dict = {"Benchmark": bench}
        for platform in PLATFORMS:
            ratio = (_platform(bench, platform).latency_per_inference_s
                     / puma.latency_per_inference_s)
            row[platform] = round(ratio, 3)
        rows.append(row)
    return rows


def batch_energy_rows() -> list[dict]:
    """Fig 11(c): PUMA batch energy savings relative to Haswell."""
    rows = []
    for bench in BENCHES:
        row: dict = {"Benchmark": bench}
        for batch in BATCH_SIZES:
            haswell = _platform(bench, "Haswell", batch)
            puma = _puma(bench, batch)
            row[f"B{batch}"] = round(
                haswell.energy_per_inference_j
                / puma.energy_per_inference_j, 1)
        rows.append(row)
    return rows


def batch_throughput_rows() -> list[dict]:
    """Fig 11(d): PUMA batch throughput normalized to Haswell."""
    rows = []
    for bench in BENCHES:
        row: dict = {"Benchmark": bench}
        for batch in BATCH_SIZES:
            haswell = _platform(bench, "Haswell", batch)
            puma = _puma(bench, batch)
            row[f"B{batch}"] = round(
                puma.throughput_ips / haswell.throughput_ips, 1)
        rows.append(row)
    return rows


def puma_absolute_rows() -> list[dict]:
    """The PUMA-side absolute numbers behind the figure."""
    rows = []
    for bench in BENCHES:
        puma = _puma(bench)
        rows.append({
            "Benchmark": bench,
            "Latency (ms)": round(puma.latency_s * 1e3, 3),
            "Energy (mJ)": round(puma.energy_j * 1e3, 3),
            "MVMUs": puma.mvmus_used,
            "Nodes": puma.nodes_used,
        })
    return rows


def render() -> str:
    parts = [
        format_table(energy_rows(),
                     title="Figure 11(a): inference energy normalized to "
                           "PUMA (batch 1, higher = PUMA better)"),
        format_table(latency_rows(),
                     title="Figure 11(b): inference latency normalized to "
                           "PUMA (batch 1, >1 = PUMA faster)"),
        format_table(batch_energy_rows(),
                     title="Figure 11(c): batch energy savings vs Haswell"),
        format_table(batch_throughput_rows(),
                     title="Figure 11(d): batch throughput vs Haswell"),
        format_table(puma_absolute_rows(),
                     title="PUMA absolute estimates (batch 1)"),
    ]
    return "\n\n".join(parts)
