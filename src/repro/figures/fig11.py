"""Figure 11: energy and latency vs CPU/GPU platforms.

(a) inference energy normalized to PUMA (batch 1);
(b) inference latency normalized to PUMA (batch 1);
(c) batch energy savings compared to Haswell (batches 16..128);
(d) batch throughput normalized to Haswell.

The Table 5 networks are too large to push through the detailed functional
simulator, so (c)/(d) use the analytic pipeline model for both sides of the
comparison.  :func:`measured_batch_rows` grounds those analytic batch rows
with *real* batched executions: the compilable Figure-4 MLP runs through
:class:`repro.engine.InferenceEngine` at every batch size, SIMD-over-batch
on the detailed simulator, and the table reports measured per-inference
cycle/energy amortization alongside a bitwise check against sequential
single-input runs.  :func:`sharded_batch_rows` extends the story past one
engine: the same batch fanned out across replicas
(:class:`repro.serve.ShardedEngine`), with merged cycles (max over the
concurrent shards) and the bitwise check against the unsharded pass.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.baselines import PLATFORMS, estimate
from repro.figures.common import format_table
from repro.perf import estimate_puma
from repro.workloads.registry import TABLE5_BENCHMARKS, benchmark

BATCH_SIZES = (16, 32, 64, 128)
MEASURED_BATCH_SIZES = (1, 16, 64)
BENCHES = tuple(TABLE5_BENCHMARKS)


@lru_cache(maxsize=8)
def _puma(name: str, batch: int = 1):
    return estimate_puma(benchmark(name), batch=batch)


@lru_cache(maxsize=64)
def _platform(name: str, platform: str, batch: int = 1):
    return estimate(benchmark(name), PLATFORMS[platform], batch=batch)


def energy_rows() -> list[dict]:
    """Fig 11(a): per-inference energy normalized to PUMA (higher = PUMA
    saves more)."""
    rows = []
    for bench in BENCHES:
        puma = _puma(bench)
        row: dict = {"Benchmark": bench}
        for platform in PLATFORMS:
            ratio = (_platform(bench, platform).energy_per_inference_j
                     / puma.energy_per_inference_j)
            row[platform] = round(ratio, 2)
        rows.append(row)
    return rows


def latency_rows() -> list[dict]:
    """Fig 11(b): latency normalized to PUMA (values < 1 mean the platform
    beats PUMA — the MLP-on-GPU case the paper highlights)."""
    rows = []
    for bench in BENCHES:
        puma = _puma(bench)
        row: dict = {"Benchmark": bench}
        for platform in PLATFORMS:
            ratio = (_platform(bench, platform).latency_per_inference_s
                     / puma.latency_per_inference_s)
            row[platform] = round(ratio, 3)
        rows.append(row)
    return rows


def batch_energy_rows() -> list[dict]:
    """Fig 11(c): PUMA batch energy savings relative to Haswell."""
    rows = []
    for bench in BENCHES:
        row: dict = {"Benchmark": bench}
        for batch in BATCH_SIZES:
            haswell = _platform(bench, "Haswell", batch)
            puma = _puma(bench, batch)
            row[f"B{batch}"] = round(
                haswell.energy_per_inference_j
                / puma.energy_per_inference_j, 1)
        rows.append(row)
    return rows


def batch_throughput_rows() -> list[dict]:
    """Fig 11(d): PUMA batch throughput normalized to Haswell."""
    rows = []
    for bench in BENCHES:
        row: dict = {"Benchmark": bench}
        for batch in BATCH_SIZES:
            haswell = _platform(bench, "Haswell", batch)
            puma = _puma(bench, batch)
            row[f"B{batch}"] = round(
                puma.throughput_ips / haswell.throughput_ips, 1)
        rows.append(row)
    return rows


def measured_batch_rows(batch_sizes: tuple[int, ...] = MEASURED_BATCH_SIZES,
                        dims: list[int] | None = None,
                        seed: int = 0) -> list[dict]:
    """Real batched inference on the detailed simulator (MLP proxy).

    One row per batch size: simulated cycles and energy for the whole
    batch, the per-inference amortization relative to the first (smallest)
    measured batch size, and whether the batched outputs are bitwise
    identical to sequential single-input runs (they must be — the engine's
    core guarantee).
    """
    from repro.engine import InferenceEngine
    from repro.workloads.mlp import FIGURE4_MLP_DIMS, build_mlp_model

    dims = dims if dims is not None else list(FIGURE4_MLP_DIMS)
    engine = InferenceEngine(build_mlp_model(dims, seed=seed), seed=seed)
    rng = np.random.default_rng(seed)
    rows = []
    base_cycles_per_inf = base_energy_per_inf = None
    for batch in batch_sizes:
        x = engine.quantize(rng.normal(0.0, 0.5, size=(batch, dims[0])))
        batched = engine.run_batch({"x": x})
        stats = batched.stats
        cycles_per_inf = batched.cycles_per_inference
        energy_per_inf = batched.energy_per_inference_j
        if base_cycles_per_inf is None:
            base_cycles_per_inf = cycles_per_inf
            base_energy_per_inf = energy_per_inf
        sequential = engine.run_sequential({"x": x})
        exact = all(np.array_equal(batched[name], sequential[name])
                    for name in batched)
        rows.append({
            "Batch": batch,
            "Cycles": stats.cycles,
            "Cycles/inf": round(cycles_per_inf, 1),
            "Energy/inf (uJ)": round(energy_per_inf * 1e6, 3),
            "Cycle amortization": round(
                base_cycles_per_inf / cycles_per_inf, 2),
            "Energy amortization": round(
                base_energy_per_inf / energy_per_inf, 2),
            "Bitwise==sequential": exact,
        })
    return rows


def sharded_batch_rows(batch: int = 64,
                       shard_counts: tuple[int, ...] = (1, 2, 4),
                       dims: list[int] | None = None,
                       seed: int = 0) -> list[dict]:
    """Fig 11 (sharded): one batch fanned out across engine replicas.

    The PUMA throughput story scales past one node by replication: each
    replica holds a copy of the programmed weights and serves a slice of
    the batch (:class:`repro.serve.ShardedEngine`).  One row per shard
    count: the merged cycle count (max over the concurrent shards), the
    modelled speedup over the unsharded pass, and the bitwise check
    against the single-engine run — the sharding layer's core guarantee.
    """
    from repro.engine import InferenceEngine
    from repro.serve import ShardedEngine
    from repro.workloads.mlp import FIGURE4_MLP_DIMS, build_mlp_model

    dims = dims if dims is not None else list(FIGURE4_MLP_DIMS)
    engine = InferenceEngine(build_mlp_model(dims, seed=seed), seed=seed)
    rng = np.random.default_rng(seed)
    x = engine.quantize(rng.normal(0.0, 0.5, size=(batch, dims[0])))
    single = engine.run_batch({"x": x})
    rows = []
    for shards in shard_counts:
        if shards == 1:
            # One shard is the unsharded pass by construction — reuse it
            # rather than re-simulating the whole batch.
            result = single
        else:
            # Thread workers keep the figure pipeline deterministic and
            # process-free; the wall-clock scaling study lives in
            # benchmarks/bench_sharded_serving.py.
            with ShardedEngine(engine, num_shards=shards,
                               executor="thread") as sharded:
                result = sharded.run_batch({"x": x})
        exact = all(np.array_equal(single[name], result[name])
                    for name in single)
        rows.append({
            "Shards": shards,
            "Cycles (max/shard)": result.cycles,
            "Cycles/inf": round(result.cycles_per_inference, 1),
            "Modelled speedup": round(single.cycles / result.cycles, 2),
            "Energy/inf (uJ)": round(
                result.energy_per_inference_j * 1e6, 3),
            "Bitwise==unsharded": exact,
        })
    return rows


def puma_absolute_rows() -> list[dict]:
    """The PUMA-side absolute numbers behind the figure."""
    rows = []
    for bench in BENCHES:
        puma = _puma(bench)
        rows.append({
            "Benchmark": bench,
            "Latency (ms)": round(puma.latency_s * 1e3, 3),
            "Energy (mJ)": round(puma.energy_j * 1e3, 3),
            "MVMUs": puma.mvmus_used,
            "Nodes": puma.nodes_used,
        })
    return rows


def render() -> str:
    parts = [
        format_table(energy_rows(),
                     title="Figure 11(a): inference energy normalized to "
                           "PUMA (batch 1, higher = PUMA better)"),
        format_table(latency_rows(),
                     title="Figure 11(b): inference latency normalized to "
                           "PUMA (batch 1, >1 = PUMA faster)"),
        format_table(batch_energy_rows(),
                     title="Figure 11(c): batch energy savings vs Haswell"),
        format_table(batch_throughput_rows(),
                     title="Figure 11(d): batch throughput vs Haswell"),
        format_table(measured_batch_rows(),
                     title="Figure 11 (measured): real batched runs of the "
                           "Figure-4 MLP on the detailed simulator"),
        format_table(sharded_batch_rows(),
                     title="Figure 11 (sharded): batch 64 fanned out "
                           "across engine replicas (cycles = max over "
                           "concurrent shards)"),
        format_table(puma_absolute_rows(),
                     title="PUMA absolute estimates (batch 1)"),
    ]
    return "\n\n".join(parts)
