"""Figure 12: design space exploration."""

from __future__ import annotations

from repro.energy.dse import register_spill_sweep, sweep, sweet_spot
from repro.figures.common import format_table

SWEEP_PARAMETERS = ("mvmu_dim", "num_mvmus", "vfu_width", "num_cores",
                    "rf_scale")


def sweep_rows(parameter: str) -> list[dict]:
    rows = []
    for point in sweep(parameter):
        rows.append({
            parameter: getattr(point, parameter),
            "GOPS": round(point.gops, 1),
            "AE (GOPS/s/mm2)": round(point.gops_per_mm2, 1),
            "PE (GOPS/s/W)": round(point.gops_per_w, 1),
        })
    return rows


def spill_rows() -> list[dict]:
    return [{"RF scale": scale, "% accesses from spills": round(pct, 2)}
            for scale, pct in register_spill_sweep().items()]


def render() -> str:
    sp = sweet_spot()
    parts = [
        "Figure 12: Design Space Exploration "
        f"(sweet spot: {sp.gops:.0f} GOPS, AE {sp.gops_per_mm2:.0f} "
        f"GOPS/s/mm2, PE {sp.gops_per_w:.0f} GOPS/s/W)",
    ]
    for parameter in SWEEP_PARAMETERS:
        parts.append("")
        parts.append(format_table(sweep_rows(parameter),
                                  title=f"Sweep: {parameter}"))
    parts.append("")
    parts.append(format_table(
        spill_rows(),
        title="Register spilling vs RF size (compiled Figure 4 MLP)"))
    return "\n".join(parts)
