"""Figure 13: inference accuracy vs memristor precision and write noise."""

from __future__ import annotations

from repro.accuracy import accuracy_sweep
from repro.accuracy.eval import PRECISION_SWEEP, SIGMA_SWEEP
from repro.figures.common import format_table


def rows(trials: int = 5) -> list[dict]:
    grid = accuracy_sweep(trials=trials)
    table = []
    for sigma in SIGMA_SWEEP:
        row: dict = {"sigma_N": sigma}
        for bits in PRECISION_SWEEP:
            row[f"{bits}-bit"] = round(grid[sigma][bits] * 100.0, 1)
        table.append(row)
    return table


def render() -> str:
    return format_table(
        rows(),
        title="Figure 13: Inference accuracy (%) vs memristor precision "
              "(bits/cell) and write noise (sigma_N)")
