"""Figure 4: static instruction usage by execution unit.

Compiles each of the six small workloads with the real compiler (the CNN
through the loop-based lowering) and reports the static instruction counts
bucketed by execution unit: inter-tile data transfer, inter-core data
transfer, control flow, SFU, VFU, MVM unit.
"""

from __future__ import annotations

from functools import lru_cache

from repro.arch.config import PumaConfig
from repro.compiler import compile_model
from repro.compiler.cnn import compile_cnn
from repro.figures.common import format_table
from repro.workloads.cnn import build_lenet5_spec
from repro.workloads.registry import FIGURE4_WORKLOADS, figure4_model

CATEGORY_LABELS = {
    "inter_tile": "Inter-Tile Data Transfer",
    "inter_core": "Inter-Core Data Transfer",
    "control_flow": "Control Flow",
    "sfu": "Scalar Functional Unit",
    "vfu": "Vector Functional Unit",
    "mvm": "MVM Unit (crossbar)",
}


@lru_cache(maxsize=1)
def usage_breakdowns(seq_len: int = 2) -> dict[str, dict[str, int]]:
    """Static instruction counts per workload, by execution unit."""
    config = PumaConfig()
    out: dict[str, dict[str, int]] = {}
    for name in FIGURE4_WORKLOADS:
        if "CNN" in name:
            compiled = compile_cnn(build_lenet5_spec(), config)
            out[name] = compiled.program.usage_breakdown()
        else:
            model = figure4_model(name, seq_len=seq_len)
            out[name] = compile_model(model, config).program.usage_breakdown()
    return out


def rows(seq_len: int = 2) -> list[dict]:
    """Percentage breakdown per workload (the Figure 4 bars)."""
    table = []
    for name, usage in usage_breakdowns(seq_len).items():
        total = sum(usage.values())
        row: dict = {"Workload": name, "Total": total}
        for key, label in CATEGORY_LABELS.items():
            row[label] = round(100.0 * usage.get(key, 0) / max(total, 1), 1)
        table.append(row)
    return table


def render() -> str:
    return format_table(
        rows(),
        ["Workload", *CATEGORY_LABELS.values(), "Total"],
        title="Figure 4: Static instruction usage (%)")
