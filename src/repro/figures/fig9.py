"""Figure 9: instruction-scheduling example — register pressure under
different linearizations and coalescing choices.

The paper's Figure 9 shows a sub-graph scheduled on one core with two
crossbars: reverse-postorder linearization keeps fewer values live than
naive linearization (9b vs 9c), and coalescing MVMs whose results are
consumed together keeps pressure low (9d vs 9e).  This module reconstructs
the experiment with the real compiler on a Figure 9-shaped model: several
(A x, B x) pairs whose sums are consumed immediately.
"""

from __future__ import annotations

import numpy as np

from repro.arch.config import PumaConfig
from repro.compiler import CompilerOptions, compile_model
from repro.compiler.frontend import ConstMatrix, InVector, Model, OutVector
from repro.figures.common import format_table


def _figure9_model(pairs: int = 4, width: int = 64) -> Model:
    """The Figure 9 shape: many (A_i x, B_i x) pairs summed pairwise.

    All matvecs are *constructed* before any consumer — so the naive
    (construction-order) linearization of Figure 9(b) holds every product
    live at once, while reverse postorder (9c) consumes each pair before
    producing the next.
    """
    rng = np.random.default_rng(9)
    model = Model.create("fig9")
    x = InVector.create(model, width, "x")
    products = []
    for i in range(pairs):
        a = ConstMatrix.create(model, width, width, f"A{i}",
                               rng.normal(0, 0.1, (width, width)))
        b = ConstMatrix.create(model, width, width, f"B{i}",
                               rng.normal(0, 0.1, (width, width)))
        products.append(a @ x)
        products.append(b @ x)
    total = None
    for i in range(pairs):
        pair_sum = products[2 * i] + products[2 * i + 1]
        total = pair_sum if total is None else total + pair_sum
    out = OutVector.create(model, width, "out")
    out.assign(total)
    return model


def rows() -> list[dict]:
    config = PumaConfig()
    table = []
    for label, options in (
        ("reverse postorder + coalescing (9c/9e)", CompilerOptions()),
        ("reverse postorder, no coalescing", CompilerOptions(
            coalesce_mvms=False)),
        ("naive linearization + coalescing (9b)", CompilerOptions(
            schedule="naive")),
        ("naive, no coalescing (9d)", CompilerOptions(
            schedule="naive", coalesce_mvms=False)),
    ):
        compiled = compile_model(_figure9_model(), config, options)
        table.append({
            "Linearization": label,
            "Peak live values": compiled.max_live_values,
            "MVM instructions": compiled.coalesced_mvm_instructions,
        })
    return table


def render() -> str:
    return format_table(
        rows(),
        ["Linearization", "Peak live values", "MVM instructions"],
        title="Figure 9: scheduling example — the compiler's linearization "
              "keeps values short-lived and fuses MVM pairs")
