"""Regenerate every table and figure in one pass.

``python -m repro.figures.runner`` prints the full report; the benchmark
harness under ``benchmarks/`` drives the same modules one exhibit at a
time with timing.
"""

from __future__ import annotations

import sys
import time

from repro.figures import (
    fig4,
    fig9,
    fig11,
    fig12,
    fig13,
    table1,
    table3,
    table5,
    table6,
    table7,
    table8,
)

EXHIBITS = [
    ("Table 1", table1),
    ("Table 3", table3),
    ("Figure 4", fig4),
    ("Table 5", table5),
    ("Figure 9", fig9),
    ("Figure 11", fig11),
    ("Table 6", table6),
    ("Table 7", table7),
    ("Table 8", table8),
    ("Figure 12", fig12),
    ("Figure 13", fig13),
]


def run_all(stream=None) -> str:
    """Render every exhibit; returns (and optionally streams) the report."""
    parts = []
    for name, module in EXHIBITS:
        start = time.time()
        text = module.render()
        elapsed = time.time() - start
        block = f"{'=' * 72}\n{name}  (regenerated in {elapsed:.1f}s)\n" \
                f"{'=' * 72}\n{text}\n"
        parts.append(block)
        if stream is not None:
            stream.write(block + "\n")
            stream.flush()
    return "\n".join(parts)


def main() -> None:
    run_all(stream=sys.stdout)


if __name__ == "__main__":
    main()
