"""Table 1: workload characterization, derived from the layer specs."""

from __future__ import annotations

from repro.figures.common import format_table
from repro.workloads.characterize import table1_rows


def rows() -> list[dict]:
    """Characterization rows for the MLP / LSTM / CNN classes."""
    return table1_rows()


def render() -> str:
    data = rows()
    # Transpose: characteristics as rows, workload classes as columns.
    classes = [r["Characteristic"] for r in data]
    keys = [k for k in data[0] if k != "Characteristic"]
    table = []
    for key in keys:
        row = {"Characteristic": key}
        for cls, r in zip(classes, data):
            row[cls] = r[key]
        table.append(row)
    return format_table(table, ["Characteristic", *classes],
                        title="Table 1: Workload Characterization")
