"""Table 3: PUMA hardware characteristics (published vs model roll-ups)."""

from __future__ import annotations

from repro.energy.components import table3_rows
from repro.figures.common import format_table


def rows() -> list[dict]:
    return table3_rows()


def render() -> str:
    data = []
    for row in rows():
        entry = {
            "Component": row["component"],
            "Power (mW)": row["power_mw"],
            "Area (mm2)": row["area_mm2"],
            "Parameter": row["parameter"],
            "Spec": row["specification"],
        }
        if "model_power_mw" in row:
            entry["Model power"] = f"{row['model_power_mw']:.4g}"
            entry["Model area"] = f"{row['model_area_mm2']:.4g}"
        data.append(entry)
    return format_table(
        data,
        ["Component", "Power (mW)", "Area (mm2)", "Parameter", "Spec",
         "Model power", "Model area"],
        title="Table 3: PUMA Hardware Characteristics (1 GHz, 32 nm)")
