"""Table 5: the benchmark networks and their parameter counts."""

from __future__ import annotations

from repro.figures.common import format_table
from repro.workloads.registry import BENCHMARK_GROUPS, TABLE5_BENCHMARKS


def rows() -> list[dict]:
    table = []
    for name, spec_fn in TABLE5_BENCHMARKS.items():
        spec = spec_fn()
        table.append({
            "DNN Name": name,
            "Type": BENCHMARK_GROUPS[name],
            "# FC Layers": spec.num_fc_layers,
            "# LSTM Layers": spec.num_lstm_layers or "-",
            "# Conv Layers": spec.num_conv_layers or "-",
            "# Parameters (M)": round(spec.params / 1e6, 1),
            "Non-linear": ", ".join(spec.nonlinear),
            "Sequence": spec.seq_len if spec.seq_len > 1 else "-",
        })
    return table


def render() -> str:
    return format_table(rows(), title="Table 5: Benchmarks")
