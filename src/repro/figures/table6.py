"""Table 6: comparison with ML accelerators (TPU, ISAAC)."""

from __future__ import annotations

from repro.baselines.isaac import ISAAC_METRICS
from repro.baselines.tpu import TPU_SPEC, tpu_measured_efficiency
from repro.energy.area import node_metrics
from repro.figures.common import format_table

_CLASSES = ("MLP", "LSTM", "CNN")


def rows() -> list[dict]:
    puma = node_metrics()
    table = [
        {
            "Platform": "PUMA",
            "Area (mm2)": round(puma.area_mm2, 1),
            "Power (W)": round(puma.power_w, 1),
            "Peak TOPS/s": round(puma.peak_tops, 2),
            "Peak AE (TOPS/s/mm2)": round(puma.tops_per_mm2, 3),
            "Peak PE (TOPS/s/W)": round(puma.tops_per_w, 3),
        },
        {
            "Platform": "TPU",
            "Area (mm2)": TPU_SPEC.area_mm2,
            "Power (W)": TPU_SPEC.power_w,
            "Peak TOPS/s": TPU_SPEC.peak_tops_16b,
            "Peak AE (TOPS/s/mm2)": round(TPU_SPEC.peak_area_efficiency, 3),
            "Peak PE (TOPS/s/W)": round(TPU_SPEC.peak_power_efficiency, 3),
        },
        {
            "Platform": "ISAAC",
            "Area (mm2)": ISAAC_METRICS.area_mm2,
            "Power (W)": ISAAC_METRICS.power_w,
            "Peak TOPS/s": ISAAC_METRICS.peak_tops,
            "Peak AE (TOPS/s/mm2)": round(
                ISAAC_METRICS.peak_area_efficiency, 3),
            "Peak PE (TOPS/s/W)": round(
                ISAAC_METRICS.peak_power_efficiency, 3),
        },
    ]
    return table


def per_workload_rows() -> list[dict]:
    """Best per-class AE/PE: PUMA stays at peak (no batch dependence);
    the TPU's collapses when weight reuse is absent (measured TPU
    utilizations: MLP 12.1%, LSTM 3.7%, CNN 78.2%)."""
    puma = node_metrics()
    table = []
    for cls in _CLASSES:
        tpu = tpu_measured_efficiency(cls)
        table.append({
            "Workload": cls,
            "PUMA AE": round(puma.tops_per_mm2, 3),
            "TPU AE": round(tpu["area_efficiency"], 4),
            "PUMA PE": round(puma.tops_per_w, 3),
            "TPU PE": round(tpu["power_efficiency"], 4),
            "PUMA/TPU AE": round(puma.tops_per_mm2
                                 / tpu["area_efficiency"], 1),
        })
    return table


def comparison_factors() -> dict[str, float]:
    """The headline Table 6 factors."""
    puma = node_metrics()
    return {
        "puma_vs_tpu_peak_ae": puma.tops_per_mm2 / TPU_SPEC.peak_area_efficiency,
        "puma_vs_tpu_peak_pe": puma.tops_per_w / TPU_SPEC.peak_power_efficiency,
        "puma_vs_isaac_ae": puma.tops_per_mm2
        / ISAAC_METRICS.peak_area_efficiency,
        "puma_vs_isaac_pe": puma.tops_per_w
        / ISAAC_METRICS.peak_power_efficiency,
    }


def render() -> str:
    factors = comparison_factors()
    lines = [
        format_table(rows(), title="Table 6: Comparison with ML accelerators"),
        "",
        format_table(per_workload_rows(),
                     title="Per-workload best efficiency (TPU at its best "
                           "batch)"),
        "",
        f"PUMA vs TPU: {factors['puma_vs_tpu_peak_ae']:.1f}x peak AE, "
        f"{factors['puma_vs_tpu_peak_pe']:.2f}x peak PE "
        "(paper: 8.3x, 1.65x)",
        f"PUMA vs ISAAC: {factors['puma_vs_isaac_ae']:.2f}x AE, "
        f"{factors['puma_vs_isaac_pe']:.2f}x PE "
        "(paper: 0.708x = 29.2% lower, 0.793x = 20.7% lower)",
    ]
    return "\n".join(lines)
