"""Table 7: programmability comparison with ISAAC."""

from __future__ import annotations

from repro.baselines.isaac import isaac_programmability
from repro.figures.common import format_table


def rows() -> list[dict]:
    data = isaac_programmability()
    return [
        {"Aspect": "Architecture",
         "PUMA": data["PUMA"]["architecture"],
         "ISAAC": data["ISAAC"]["architecture"]},
        {"Aspect": "Programmability",
         "PUMA": data["PUMA"]["programmability"],
         "ISAAC": data["ISAAC"]["programmability"]},
        {"Aspect": "Workloads",
         "PUMA": data["PUMA"]["workloads"],
         "ISAAC": data["ISAAC"]["workloads"]},
    ]


def render() -> str:
    return format_table(rows(),
                        title="Table 7: Programmability comparison")
