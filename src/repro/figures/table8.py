"""Table 8: evaluation of the compiler/architecture optimizations.

Five ablations, regenerated with the real toolchain:

* **input shuffling** — compile and simulate Lenet5 with and without the
  MVM filter/stride operands; report the energy ratio (paper: 0.84-0.85x
  for CNNs, '-' elsewhere);
* **shared memory sizing** — PUMA energy with the pipelining-aware memory
  (64 KB) versus a memory sized for no inter-layer pipelining (the paper's
  sizing factors per workload class), through the capacity-scaled energy
  model (paper: 0.58-0.75x);
* **graph partitioning** — affinity versus random placement, simulated on
  the Figure 4 workloads; energy ratio (paper: 0.37-0.81x);
* **register pressure** — % of register accesses served by spills in the
  compiled code (paper: ~0%, up to ~2% for CNNs);
* **MVM coalescing** — simulated cycle count with and without coalescing
  (paper: 0.60-0.84x latency).

The published Table 8 runs the full Table 5 networks; instruction-level
simulation at that scale is impractical in Python, so the compiled
ablations run on the Figure 4 workloads (same code paths, smaller
matrices) while the sizing ablation uses the analytic model at full scale.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.arch.config import PumaConfig
from repro.compiler import CompilerOptions
from repro.compiler.cnn import compile_cnn
from repro.engine import InferenceEngine
from repro.figures.common import format_table
from repro.perf import estimate_puma
from repro.workloads.cnn import build_lenet5_spec
from repro.workloads.registry import FIGURE4_WORKLOADS, benchmark, figure4_model

# The paper's no-pipelining shared-memory sizing factors (Section 7.5).
SIZING_FACTORS = {
    "MLPL4": 1.0, "MLPL5": 1.0,
    "NMTL3": 50.51, "NMTL5": 50.51,
    "BigLSTM": 21.61, "LSTM-2048": 21.61,
    "Vgg16": 15.91, "Vgg19": 15.91,
}

_SIM_WORKLOADS = [n for n in FIGURE4_WORKLOADS if "CNN" not in n]


def _simulate(model, config, options, seed=0):
    """Compile + run one random inference; returns (compiled, RunResult)."""
    engine = InferenceEngine(model, config, options, seed=seed)
    rng = np.random.default_rng(seed)
    inputs = {
        name: rng.normal(0, 0.3, size=length)
        for name, (_tile, _addr, length)
        in engine.program.input_layout.items()
    }
    return engine.compiled, engine.predict(inputs)


def input_shuffling_ratios(config: PumaConfig | None = None
                           ) -> dict[str, float]:
    """CNN energy and XbarIn-traffic with shuffling / without.

    The energy ratio is close to 1 here because our Table 3-calibrated
    memory energy is transaction-dominated; the traffic ratio shows the
    optimization's data-movement effect directly.
    """
    from repro.isa.opcodes import Opcode

    config = config if config is not None else PumaConfig()
    spec = build_lenet5_spec()
    energies = {}
    load_words = {}
    for shuffle in (True, False):
        compiled = compile_cnn(spec, config, input_shuffle=shuffle)
        engine = InferenceEngine.from_compiled(compiled, config, seed=0)
        image = np.random.default_rng(3).uniform(-0.5, 0.5, size=32 * 32)
        result = engine.predict({"image": image})
        energies[shuffle] = result.stats.total_energy_j
        load_words[shuffle] = result.stats.words_by_opcode[Opcode.LOAD]
    return {
        "energy_ratio": energies[True] / energies[False],
        "load_words_ratio": load_words[True] / load_words[False],
    }


def shared_memory_sizing_rows() -> list[dict]:
    """Energy with pipelined sizing vs no-pipelining sizing, per benchmark."""
    rows = []
    base = PumaConfig()
    for bench, factor in SIZING_FACTORS.items():
        spec = benchmark(bench)
        default_energy = estimate_puma(spec, base).energy_j
        inflated = base.with_tile(
            shared_memory_bytes=int(base.tile.shared_memory_bytes * factor),
            attribute_entries=int(base.tile.attribute_entries * factor))
        big_energy = estimate_puma(spec, inflated).energy_j
        rows.append({
            "Workload": bench,
            "Sizing factor": factor,
            "Energy ratio": round(default_energy / big_energy, 3),
        })
    return rows


@lru_cache(maxsize=1)
def compiled_ablation_rows() -> list[dict]:
    """Partitioning / register-pressure / coalescing ablations (simulated)."""
    config = PumaConfig()
    rows = []
    for name in _SIM_WORKLOADS:
        model_a = figure4_model(name)
        _, sim_affinity = _simulate(model_a, config, CompilerOptions())
        model_r = figure4_model(name)
        _, sim_random = _simulate(
            model_r, config, CompilerOptions(partition="random", seed=7))
        model_c = figure4_model(name)
        compiled_nc, sim_nc = _simulate(
            model_c, config, CompilerOptions(coalesce_mvms=False))
        model_s = figure4_model(name)
        compiled_std, _ = _simulate(model_s, config, CompilerOptions())

        rows.append({
            "Workload": name,
            "Graph partitioning (energy)": round(
                sim_affinity.stats.total_energy_j
                / sim_random.stats.total_energy_j, 3),
            "Register pressure (% spilled)": round(
                compiled_std.spilled_access_fraction() * 100, 2),
            "MVM coalescing (latency)": round(
                sim_affinity.stats.cycles / sim_nc.stats.cycles, 3),
        })
    return rows


def rows() -> list[dict]:
    """The combined Table 8 view."""
    shuffle = input_shuffling_ratios()
    sizing = {r["Workload"]: r["Energy ratio"]
              for r in shared_memory_sizing_rows()}
    # Each Figure 4 workload inherits its class's sizing ablation.
    sizing_class = {"MLP": sizing.get("MLPL4"),
                    "LSTM": sizing.get("NMTL3"),
                    "RNN": sizing.get("NMTL3"),
                    "BM": "-", "RBM": "-"}
    out = []
    for row in compiled_ablation_rows():
        cls = row["Workload"].split(" ")[0].rstrip("(")
        out.append({
            "Workload": row["Workload"],
            "Input shuffling": "-",
            "Shared memory sizing": sizing_class.get(cls, "-"),
            "Graph partitioning": row["Graph partitioning (energy)"],
            "Register pressure %": row["Register pressure (% spilled)"],
            "MVM coalescing": row["MVM coalescing (latency)"],
        })
    out.append({
        "Workload": "CNN (Lenet5)",
        "Input shuffling": f"{shuffle['energy_ratio']:.3f} (energy), "
                           f"{shuffle['load_words_ratio']:.2f} (traffic)",
        "Shared memory sizing": sizing.get("Vgg16", ""),
        "Graph partitioning": "-",
        "Register pressure %": 0.0,
        "MVM coalescing": "-",
    })
    return out


def render() -> str:
    parts = [
        format_table(rows(), title="Table 8: Evaluation of optimizations "
                                   "(ratios: optimized / baseline, lower "
                                   "is better)"),
        "",
        format_table(shared_memory_sizing_rows(),
                     title="Shared-memory sizing detail (analytic, full "
                           "Table 5 scale)"),
    ]
    return "\n".join(parts)
