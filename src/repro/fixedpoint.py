"""16-bit fixed-point arithmetic used throughout the PUMA datapath.

PUMA computes in 16-bit fixed point (paper Section 6.1: "We use 16 bit
fixed-point precision that provides very high accuracy in inference
applications").  This module provides the number format shared by the
functional simulator, the compiler's constant lowering, and the crossbar
weight programming path.

The format is signed two's complement with a configurable number of
fractional bits (default 12, leaving 3 integer bits plus sign, a common
choice for inference where activations are normalized).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

TOTAL_BITS = 16
DEFAULT_FRAC_BITS = 12

INT_MIN = -(1 << (TOTAL_BITS - 1))
INT_MAX = (1 << (TOTAL_BITS - 1)) - 1


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed two's-complement fixed-point format.

    Attributes:
        total_bits: word width in bits (PUMA uses 16).
        frac_bits: number of fractional bits.
    """

    total_bits: int = TOTAL_BITS
    frac_bits: int = DEFAULT_FRAC_BITS

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise ValueError("total_bits must be at least 2")
        if not 0 <= self.frac_bits < self.total_bits:
            raise ValueError(
                f"frac_bits must be in [0, {self.total_bits}), "
                f"got {self.frac_bits}"
            )

    @property
    def scale(self) -> int:
        """Integer units per 1.0."""
        return 1 << self.frac_bits

    @property
    def int_min(self) -> int:
        return -(1 << (self.total_bits - 1))

    @property
    def int_max(self) -> int:
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_value(self) -> float:
        """Most negative representable real value."""
        return self.int_min / self.scale

    @property
    def max_value(self) -> float:
        """Most positive representable real value."""
        return self.int_max / self.scale

    @property
    def resolution(self) -> float:
        """Smallest representable increment."""
        return 1.0 / self.scale

    def quantize(self, values: np.ndarray | float) -> np.ndarray:
        """Convert real values to fixed-point integers with saturation."""
        scaled = np.round(np.asarray(values, dtype=np.float64) * self.scale)
        return np.clip(scaled, self.int_min, self.int_max).astype(np.int64)

    def dequantize(self, ints: np.ndarray | int) -> np.ndarray:
        """Convert fixed-point integers back to real values."""
        return np.asarray(ints, dtype=np.float64) / self.scale

    def saturate(self, ints: np.ndarray | int) -> np.ndarray:
        """Clamp integer values into the representable range."""
        return np.clip(np.asarray(ints, dtype=np.int64), self.int_min, self.int_max)

    def wrap(self, ints: np.ndarray | int) -> np.ndarray:
        """Two's-complement wrap-around (hardware overflow semantics)."""
        arr = np.asarray(ints, dtype=np.int64)
        mask = (1 << self.total_bits) - 1
        wrapped = arr & mask
        sign_bit = 1 << (self.total_bits - 1)
        return np.where(wrapped >= sign_bit, wrapped - (1 << self.total_bits), wrapped)

    def multiply(self, a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray:
        """Fixed-point multiply: full-width product rescaled, saturated."""
        prod = np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
        return self.saturate(prod >> self.frac_bits)

    def divide(self, a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray:
        """Fixed-point divide with round-toward-zero, saturated.

        The quotient is computed in pure integer arithmetic: ``float64``
        division only carries 53 bits of mantissa, which silently misrounds
        once the shifted numerator exceeds ``2**53`` (wide intermediate
        formats).  ``np.floor_divide`` rounds toward -inf, so negative
        inexact quotients are corrected up by one to truncate toward zero,
        matching hardware divider semantics.

        Division by zero saturates to the format extreme with the sign of
        the numerator (hardware-style sticky saturation rather than a trap);
        0/0 yields 0.
        """
        num = np.asarray(a, dtype=np.int64) << self.frac_bits
        den = np.asarray(b, dtype=np.int64)
        num, den = np.broadcast_arrays(num, den)
        zero = den == 0
        safe_den = np.where(zero, 1, den)
        quotient = np.floor_divide(num, safe_den)
        inexact = num - quotient * safe_den != 0
        # asarray re-wraps the 0-d/scalar case so the masked assignments
        # below work; the addition already allocated a fresh array.
        out = np.asarray(quotient + (inexact & ((num < 0) != (safe_den < 0))),
                         dtype=np.int64)
        out[zero & (num > 0)] = self.int_max
        out[zero & (num < 0)] = self.int_min
        out[zero & (num == 0)] = 0
        return self.saturate(out)

    def to_unsigned(self, ints: np.ndarray | int) -> np.ndarray:
        """Reinterpret signed words as unsigned bit patterns (for slicing)."""
        arr = np.asarray(ints, dtype=np.int64)
        return arr & ((1 << self.total_bits) - 1)

    def from_unsigned(self, raw: np.ndarray | int) -> np.ndarray:
        """Reinterpret unsigned bit patterns as signed words."""
        return self.wrap(np.asarray(raw, dtype=np.int64))


DEFAULT_FORMAT = FixedPointFormat()


def to_fixed(values: np.ndarray | float,
             fmt: FixedPointFormat = DEFAULT_FORMAT) -> np.ndarray:
    """Quantize real values using ``fmt`` (module-level convenience)."""
    return fmt.quantize(values)


def to_float(ints: np.ndarray | int,
             fmt: FixedPointFormat = DEFAULT_FORMAT) -> np.ndarray:
    """Dequantize integers using ``fmt`` (module-level convenience)."""
    return fmt.dequantize(ints)


def bit_slices(words: np.ndarray, bits_per_slice: int,
               total_bits: int = TOTAL_BITS) -> list[np.ndarray]:
    """Split unsigned words into little-endian slices of ``bits_per_slice``.

    This is the digital half of the paper's bit-slicing scheme (Fig 2b): a
    16-bit weight is distributed over ``16 / bits_per_slice`` crossbars, each
    holding ``bits_per_slice`` bits per device.

    Args:
        words: unsigned integer array (use :meth:`FixedPointFormat.to_unsigned`).
        bits_per_slice: bits stored per memristor device (paper uses 2).
        total_bits: total word width.

    Returns:
        List of arrays, slice 0 being the least significant.
    """
    if total_bits % bits_per_slice != 0:
        raise ValueError(
            f"total_bits ({total_bits}) must be divisible by "
            f"bits_per_slice ({bits_per_slice})"
        )
    arr = np.asarray(words, dtype=np.int64)
    if np.any(arr < 0):
        raise ValueError("bit_slices expects unsigned words")
    n_slices = total_bits // bits_per_slice
    mask = (1 << bits_per_slice) - 1
    return [(arr >> (i * bits_per_slice)) & mask for i in range(n_slices)]


def combine_slices(slices: list[np.ndarray], bits_per_slice: int,
                   total_bits: int = TOTAL_BITS) -> np.ndarray:
    """Inverse of :func:`bit_slices`: shift-and-add the slices back together."""
    if len(slices) * bits_per_slice != total_bits:
        raise ValueError(
            f"expected {total_bits // bits_per_slice} slices, got {len(slices)}"
        )
    acc = np.zeros_like(np.asarray(slices[0], dtype=np.int64))
    for i, s in enumerate(slices):
        acc = acc + (np.asarray(s, dtype=np.int64) << (i * bits_per_slice))
    return acc
