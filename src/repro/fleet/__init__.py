"""Multi-node serving fleet: N PumaServer workers behind one front door.

The scale-out layer over :mod:`repro.serve` (ROADMAP open item 1):

* :class:`PumaFleet` — the gateway: HTTP front door, consistent-hash
  placement, per-model queues + admission control, dispatch with
  deadline-aware retry-on-another-replica (circuit breakers + seeded
  backoff), health-driven eviction/respawn, queue-depth autoscaling
  (:mod:`repro.fleet.gateway`);
* :class:`FleetModelSpec` / :func:`route_key` / :func:`build_engine` —
  wire-serializable model identity shared by gateway, workers, and the
  networked store (:mod:`repro.fleet.models`);
* :class:`FleetWorker` — the worker process: per-model ``PumaServer``
  micro-batching behind a small HTTP API
  (:mod:`repro.fleet.worker`);
* networked artifact store — warm starts as integrity-verified GET/PUT
  blobs with size-capped LRU eviction (:mod:`repro.fleet.netstore`);
* :func:`bursty_trace` / :func:`run_trace` — deterministic load
  generation and SLO measurement (:mod:`repro.fleet.loadgen`);
* :class:`FaultPlan` / :class:`FaultInjector` /
  :class:`CircuitBreaker` / :func:`backoff_delay` — the deterministic
  chaos harness and the resilience policies it validates
  (:mod:`repro.fleet.resilience`).

See ``docs/fleet.md`` for topology, guarantees, and the resilience
layer's fault taxonomy.
"""

from repro.fleet.gateway import (
    FleetAdmissionError,
    FleetDeadlineError,
    FleetError,
    PumaFleet,
)
from repro.fleet.http import FleetConnectionError, FleetTimeoutError
from repro.fleet.loadgen import (
    Arrival,
    LoadReport,
    bursty_trace,
    default_inputs_builder,
    mixed_priority_trace,
    run_trace,
)
from repro.fleet.manager import (
    WorkerManager,
    WorkerSpawnError,
    autoscale_decision,
)
from repro.fleet.models import (
    MODEL_KINDS,
    FleetModelError,
    FleetModelSpec,
    build_engine,
    route_key,
)
from repro.fleet.netstore import NetworkArtifactError
from repro.fleet.resilience import (
    FAULT_KINDS,
    CircuitBreaker,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    backoff_delay,
)
from repro.fleet.ring import HashRing
from repro.fleet.worker import FleetWorker

__all__ = [
    "Arrival",
    "CircuitBreaker",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FleetAdmissionError",
    "FleetConnectionError",
    "FleetDeadlineError",
    "FleetError",
    "FleetModelError",
    "FleetModelSpec",
    "FleetTimeoutError",
    "FleetWorker",
    "HashRing",
    "LoadReport",
    "MODEL_KINDS",
    "NetworkArtifactError",
    "PumaFleet",
    "WorkerManager",
    "WorkerSpawnError",
    "autoscale_decision",
    "backoff_delay",
    "build_engine",
    "bursty_trace",
    "default_inputs_builder",
    "mixed_priority_trace",
    "route_key",
    "run_trace",
]
