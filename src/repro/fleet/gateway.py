"""The fleet gateway: one HTTP front door over N worker processes.

:class:`PumaFleet` is the subsystem's spine.  It owns:

* the **front door** — ``POST /v1/predict``, ``GET /v1/models``,
  ``GET /healthz``, ``GET /metrics`` on one port (plus the artifact
  plane ``GET/PUT /v1/artifacts/{key}`` backing the networked store);
* **placement** — consistent hashing of each model's route key onto the
  worker ring (:mod:`repro.fleet.ring`), so a model's replicas are a
  stable subset of workers sharing warm artifacts;
* **per-model queues** — every model gets its own queue + dispatcher
  pool, so a burst of heavy CNN traffic queues behind *itself*, never
  in front of MLP requests (head-of-line isolation);
* **dispatch with retry** — a request goes to one replica of its
  model; on a transport failure or 5xx the gateway backs off and
  retries on a *different* replica.  Safe by construction: engines are
  deterministic (seeded weights + seeded crossbar programming), so any
  replica's answer is bitwise the same — the fleet-level invariant
  ``docs/guarantees.md`` pins and ``tests/test_fleet.py`` enforces;
* **health & lifecycle** — periodic ``/healthz`` probes; consecutive
  failures (or a dead process) evict the worker and respawn a fresh one
  that warm-starts its models off the networked store;
* **autoscaling** — per-model replica counts follow observed queue
  depth through the pure policy
  :func:`repro.fleet.manager.autoscale_decision`; new replicas load
  lazily on first dispatch (pulling the artifact blob, not recompiling).

Graceful shutdown mirrors ``PumaServer.stop``: the front door starts
refusing new work (503), queued requests drain to completion, workers
are asked to drain their own micro-batches, and only then do processes
exit — zero dropped requests, which the CI smoke job asserts.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.fleet.http import (
    ConnectionPool,
    FleetConnectionError,
    HttpRequest,
    HttpResponse,
    HttpServer,
    error_response,
    json_response,
)
from repro.fleet.manager import (
    WorkerHandle,
    WorkerManager,
    autoscale_decision,
    probe_health,
)
from repro.fleet.models import FleetModelSpec, route_key
from repro.fleet.netstore import SHA_HEADER, BlobStore, NetworkArtifactError
from repro.fleet.ring import HashRing

PREDICT_TIMEOUT_S = 120.0
LOAD_TIMEOUT_S = 300.0
_ARTIFACT_PREFIX = "/v1/artifacts/"


class FleetError(RuntimeError):
    """A fleet request failed permanently (after retries, or rejected)."""


@dataclass
class _ModelState:
    """Gateway-side state for one deployed model."""

    spec: FleetModelSpec
    key: str
    replicas: int
    queue: asyncio.Queue = field(default_factory=asyncio.Queue)
    dispatchers: list = field(default_factory=list)
    rr: int = 0                     # round-robin cursor over placement
    inflight: int = 0
    served: int = 0
    failed: int = 0
    retries: int = 0


@dataclass
class _Pending:
    """One queued predict: wire-level inputs + the caller's future."""

    inputs: dict[str, Any]
    future: asyncio.Future
    enqueued_at: float


class PumaFleet:
    """N ``PumaServer`` worker processes behind one HTTP front door.

    Example::

        specs = [FleetModelSpec("mlp", "mlp", {"dims": [32, 24, 10]})]
        async with PumaFleet(specs, num_workers=2,
                             work_dir="fleet-scratch") as fleet:
            reply = await fleet.predict("mlp", {"x": x_vector})
            reply["words"]["out"]        # fixed-point words, bitwise ==
                                         # a local engine.run_batch

    Args:
        models: the deployment set (unique names).
        num_workers: worker processes to spawn (restored on eviction).
        work_dir: scratch root (artifact blobs, worker scratch).
        replicas_per_model: initial replicas per model (default:
            ``min(2, num_workers)``); the autoscaler moves it between
            ``min_replicas`` and ``max_replicas`` when enabled.
        max_batch_size / batch_window_s: per-model worker batching.
        dispatch_concurrency: concurrent dispatches per model — kept
            above ``max_batch_size``'s reach so worker-side
            micro-batching still coalesces.
        max_attempts: dispatch attempts per request (distinct replicas
            preferred; transport failures and 5xx retry, 400 never).
        health_interval_s / health_failures: probe cadence and the
            consecutive-failure threshold for eviction + respawn.
        autoscale / autoscale_interval_s / min_replicas / max_replicas /
            high_watermark / low_watermark: queue-depth autoscaling
            policy (see :func:`autoscale_decision`).
        preload: load every model onto its placement when the fleet
            starts (first request fast + deterministic placement).
    """

    def __init__(self, models: list[FleetModelSpec], *,
                 num_workers: int = 2,
                 work_dir: str | Path,
                 replicas_per_model: int | None = None,
                 max_batch_size: int = 16,
                 batch_window_s: float = 0.002,
                 dispatch_concurrency: int = 16,
                 max_attempts: int = 3,
                 health_interval_s: float = 0.5,
                 health_failures: int = 2,
                 autoscale: bool = False,
                 autoscale_interval_s: float = 0.5,
                 min_replicas: int = 1,
                 max_replicas: int | None = None,
                 high_watermark: float = 8.0,
                 low_watermark: float = 1.0,
                 respawn: bool = True,
                 preload: bool = True,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        names = [spec.name for spec in models]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate model names in {sorted(names)}")
        if not models:
            raise ValueError("a fleet needs at least one model")
        self.num_workers = num_workers
        self.work_dir = Path(work_dir)
        self.replicas_per_model = (min(2, num_workers)
                                   if replicas_per_model is None
                                   else min(replicas_per_model, num_workers))
        self.max_batch_size = max_batch_size
        self.batch_window_s = batch_window_s
        self.dispatch_concurrency = dispatch_concurrency
        self.max_attempts = max_attempts
        self.health_interval_s = health_interval_s
        self.health_failures = health_failures
        self.autoscale = autoscale
        self.autoscale_interval_s = autoscale_interval_s
        self.min_replicas = min_replicas
        self.max_replicas = (num_workers if max_replicas is None
                             else min(max_replicas, num_workers))
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.respawn = respawn
        self.preload = preload
        self.host = host
        self._requested_port = port

        self.models: dict[str, _ModelState] = {}
        for spec in models:
            key = route_key(spec)
            self.models[spec.name] = _ModelState(
                spec=spec, key=key, replicas=self.replicas_per_model)

        self.ring = HashRing()
        self.http = HttpServer(self._handle, host=host, port=port)
        self.pool = ConnectionPool()
        self.blobs: BlobStore | None = None
        self.manager: WorkerManager | None = None
        self._load_locks: dict[tuple[str, str], asyncio.Lock] = {}
        self._background: list[asyncio.Task] = []
        self._running = False
        self._closing = False
        self.evictions = 0
        self.respawns = 0
        self.autoscale_events = 0

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> "PumaFleet":
        if self._running:
            return self
        self.work_dir.mkdir(parents=True, exist_ok=True)
        self.blobs = BlobStore(self.work_dir / "store")
        await self.http.start()
        self.manager = WorkerManager(
            str(self.work_dir / "workers"),
            store_address=(self.host, self.http.port),
            max_batch_size=self.max_batch_size,
            batch_window_s=self.batch_window_s, host=self.host)
        await self.manager.spawn_many(self.num_workers)
        for worker_id in self.manager.workers:
            self.ring.add(worker_id)
        for state in self.models.values():
            state.dispatchers = [
                asyncio.create_task(self._dispatch_loop(state))
                for _ in range(self.dispatch_concurrency)]
        self._running = True
        if self.preload:
            for state in self.models.values():
                for handle in self._placement(state):
                    await self._ensure_loaded(state, handle)
        self._background = [
            asyncio.create_task(self._health_loop()),
        ]
        if self.autoscale:
            self._background.append(
                asyncio.create_task(self._autoscale_loop()))
        return self

    async def stop(self, *, drain: bool = True) -> None:
        """Drain, then dismantle — queued work finishes unless told not to."""
        if not self._running:
            return
        self._closing = True
        if drain:
            deadline = time.monotonic() + PREDICT_TIMEOUT_S
            while any(state.queue.qsize() or state.inflight
                      for state in self.models.values()):
                if time.monotonic() > deadline:     # pragma: no cover
                    break
                await asyncio.sleep(0.01)
        for state in self.models.values():
            while not state.queue.empty():
                pending = state.queue.get_nowait()
                if not pending.future.done():
                    pending.future.set_exception(FleetError(
                        "fleet stopped before this request was served"))
        await _cancel_and_wait(
            self._background
            + [t for s in self.models.values() for t in s.dispatchers])
        if self.manager is not None:
            await self.manager.close(drain=drain)
        await self.pool.close()
        await self.http.close()
        self._running = False

    async def __aenter__(self) -> "PumaFleet":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    @property
    def url(self) -> str:
        return self.http.url

    # -- placement ----------------------------------------------------------

    def _placement(self, state: _ModelState) -> list[WorkerHandle]:
        """The model's current replica set, healthiest-first subset."""
        chosen = self.ring.replicas(state.key, state.replicas)
        return [self.manager.workers[w] for w in chosen
                if w in self.manager.workers
                and self.manager.workers[w].healthy]

    async def _ensure_loaded(self, state: _ModelState,
                             handle: WorkerHandle) -> None:
        """Idempotently host the model on one worker (serialized)."""
        if state.key in handle.hosted:
            return
        lock = self._load_locks.setdefault(
            (handle.worker_id, state.key), asyncio.Lock())
        async with lock:
            if state.key in handle.hosted:
                return
            body = json.dumps({"spec": state.spec.to_dict(),
                               "route_key": state.key}).encode()
            response = await self.pool.request(
                handle.host, handle.port, "POST", "/v1/models", body=body,
                headers={"Content-Type": "application/json"},
                timeout=LOAD_TIMEOUT_S)
            if response.status != 200:
                raise FleetError(
                    f"{handle.worker_id} refused to load "
                    f"{state.spec.name}: {response.status} "
                    f"{response.body[:200]!r}")
            handle.hosted.add(state.key)

    # -- dispatch -----------------------------------------------------------

    async def predict(self, model: str, inputs: dict[str, Any],
                      timeout: float = PREDICT_TIMEOUT_S) -> dict:
        """Run one inference through the fleet; the worker's JSON reply.

        ``inputs`` maps input names to 1-D float vectors (lists or
        arrays).  The reply carries ``outputs`` (floats), ``words``
        (fixed-point ints, the bitwise ground truth), ``worker``, and
        ``execution``.  Raises :class:`FleetError` on permanent failure
        and :class:`KeyError` for an unknown model name.
        """
        if not self._running or self._closing:
            raise FleetError("fleet is not accepting requests "
                             "(stopped or draining)")
        state = self.models[model]
        wire_inputs = {name: np.asarray(values, dtype=np.float64).tolist()
                       for name, values in inputs.items()}
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        state.queue.put_nowait(_Pending(
            inputs=wire_inputs, future=future,
            enqueued_at=time.monotonic()))
        return await asyncio.wait_for(future, timeout)

    async def _dispatch_loop(self, state: _ModelState) -> None:
        while True:
            pending = await state.queue.get()
            state.inflight += 1
            try:
                result = await self._dispatch_one(state, pending)
                if not pending.future.done():
                    pending.future.set_result(result)
                state.served += 1
            except asyncio.CancelledError:
                if not pending.future.done():
                    pending.future.set_exception(FleetError(
                        "fleet dispatcher cancelled mid-request"))
                raise
            except Exception as error:  # noqa: BLE001 - fail that request
                state.failed += 1
                if not pending.future.done():
                    pending.future.set_exception(
                        error if isinstance(error, FleetError)
                        else FleetError(f"{type(error).__name__}: {error}"))
            finally:
                state.inflight -= 1

    async def _dispatch_one(self, state: _ModelState,
                            pending: _Pending) -> dict:
        """Route one request; retry transient failures on other replicas."""
        body = json.dumps({"route_key": state.key,
                           "inputs": pending.inputs}).encode()
        tried: set[str] = set()
        last_error: str = "no healthy replica available"
        for attempt in range(self.max_attempts):
            handle = self._pick_replica(state, tried)
            if handle is None:
                # Everything tried or unhealthy: wait for health/respawn
                # to restore a replica, then widen the search again.
                await asyncio.sleep(0.05 * (attempt + 1))
                tried.clear()
                handle = self._pick_replica(state, tried)
                if handle is None:
                    continue
            tried.add(handle.worker_id)
            try:
                await self._ensure_loaded(state, handle)
                response = await self.pool.request(
                    handle.host, handle.port, "POST", "/v1/predict",
                    body=body,
                    headers={"Content-Type": "application/json"},
                    timeout=PREDICT_TIMEOUT_S)
            except (FleetConnectionError, FleetError) as error:
                # Transport failure or failed load: this replica may be
                # dying — flag it for the health loop and go elsewhere.
                handle.consecutive_failures += 1
                await self.pool.forget(handle.host, handle.port)
                last_error = str(error)
                state.retries += 1
                await asyncio.sleep(0.02 * 2 ** attempt)
                continue
            if response.status == 200:
                return response.json()
            if response.status == 400:
                # The request itself is bad; no replica will differ.
                raise FleetError(
                    f"{state.spec.name}: rejected by {handle.worker_id}: "
                    f"{_error_text(response)}")
            if response.status == 409:
                # Placement raced an eviction; reload on next attempt.
                handle.hosted.discard(state.key)
            last_error = f"{response.status} {_error_text(response)}"
            state.retries += 1
            await asyncio.sleep(0.02 * 2 ** attempt)
        raise FleetError(
            f"{state.spec.name}: no replica answered after "
            f"{self.max_attempts} attempts (last error: {last_error})")

    def _pick_replica(self, state: _ModelState,
                      tried: set[str]) -> WorkerHandle | None:
        placement = self._placement(state)
        untried = [h for h in placement if h.worker_id not in tried]
        if not untried:
            return None
        state.rr += 1
        return untried[state.rr % len(untried)]

    # -- background loops ---------------------------------------------------

    async def _health_loop(self) -> None:
        while not self._closing:
            await asyncio.sleep(self.health_interval_s)
            for worker_id, handle in list(self.manager.workers.items()):
                if handle.alive and await probe_health(handle):
                    handle.consecutive_failures = 0
                    handle.healthy = True
                    continue
                handle.consecutive_failures += 1
                if (handle.consecutive_failures >= self.health_failures
                        or not handle.alive):
                    handle.healthy = False
                    await self._evict_and_respawn(worker_id, handle)

    async def _evict_and_respawn(self, worker_id: str,
                                 handle: WorkerHandle) -> None:
        self.evictions += 1
        self.ring.remove(worker_id)
        self.manager.evict(worker_id)
        await self.pool.forget(handle.host, handle.port)
        if self.respawn and not self._closing \
                and len(self.manager.workers) < self.num_workers:
            try:
                replacement = await self.manager.spawn()
            except Exception:       # noqa: BLE001 - retried next tick
                return
            self.ring.add(replacement.worker_id)
            self.respawns += 1

    async def _autoscale_loop(self) -> None:
        while not self._closing:
            await asyncio.sleep(self.autoscale_interval_s)
            for state in self.models.values():
                delta = autoscale_decision(
                    state.queue.qsize(), state.replicas,
                    min_replicas=self.min_replicas,
                    max_replicas=self.max_replicas,
                    high_watermark=self.high_watermark,
                    low_watermark=self.low_watermark)
                if delta:
                    state.replicas += delta
                    self.autoscale_events += 1

    # -- HTTP front door ----------------------------------------------------

    async def _handle(self, request: HttpRequest) -> HttpResponse:
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return json_response({
                "ok": self._running and not self._closing,
                "workers": len(self.manager.workers) if self.manager else 0,
                "models": sorted(self.models)})
        if route == ("GET", "/v1/models"):
            return json_response({"models": [
                {"name": state.spec.name, "kind": state.spec.kind,
                 "route_key": state.key, "replicas": state.replicas,
                 "placement": [h.worker_id
                               for h in self._placement(state)]}
                for state in self.models.values()]})
        if route == ("POST", "/v1/predict"):
            return await self._handle_predict(request)
        if route == ("GET", "/metrics"):
            return json_response(await self.metrics())
        if request.path.startswith(_ARTIFACT_PREFIX):
            return await self._handle_artifact(request)
        return error_response(404, f"no route {request.method} "
                                   f"{request.path} on this gateway")

    async def _handle_predict(self, request: HttpRequest) -> HttpResponse:
        if self._closing or not self._running:
            return error_response(503, "fleet is draining; "
                                       "not accepting new requests")
        payload = request.json()
        model = payload.get("model")
        inputs = payload.get("inputs")
        if model not in self.models:
            return error_response(
                404, f"unknown model {model!r}; deployed: "
                     f"{sorted(self.models)}")
        if not isinstance(inputs, dict):
            return error_response(400, "predict body needs an 'inputs' "
                                       "object of float vectors")
        try:
            reply = await self.predict(model, inputs)
        except FleetError as error:
            return error_response(503, str(error))
        except (TypeError, ValueError) as error:
            return error_response(400, str(error))
        return json_response(reply)

    async def _handle_artifact(self, request: HttpRequest) -> HttpResponse:
        key = request.path[len(_ARTIFACT_PREFIX):]
        if request.method == "GET":
            try:
                found = self.blobs.get(key)
            except NetworkArtifactError as error:
                return error_response(400, str(error))
            if found is None:
                return error_response(404, f"no artifact blob for "
                                           f"route key {key[:16]}…")
            data, digest = found
            return HttpResponse(
                status=200,
                headers={"Content-Type": "application/x-tar",
                         SHA_HEADER: digest},
                body=data)
        if request.method == "PUT":
            declared = request.headers.get(SHA_HEADER.lower())
            if not declared:
                return error_response(400, f"PUT requires the "
                                           f"{SHA_HEADER} header")
            try:
                self.blobs.put(key, request.body, declared)
            except NetworkArtifactError as error:
                return error_response(400, str(error))
            return json_response({"ok": True, "sha256": declared},
                                 status=201)
        return error_response(405, f"artifact plane supports GET/PUT, "
                                   f"not {request.method}")

    # -- observability ------------------------------------------------------

    async def metrics(self) -> dict:
        """Fleet counters + live per-worker ``/metrics`` snapshots."""
        workers: dict[str, Any] = {}
        for worker_id, handle in list(self.manager.workers.items()):
            entry: dict[str, Any] = {
                "port": handle.port, "healthy": handle.healthy,
                "alive": handle.alive,
                "hosted": sorted(handle.hosted)}
            try:
                response = await self.pool.request(
                    handle.host, handle.port, "GET", "/metrics",
                    timeout=5.0)
                if response.status == 200:
                    entry["metrics"] = response.json()
            except FleetConnectionError:
                entry["metrics"] = None
            workers[worker_id] = entry
        return {
            "fleet": {
                "workers": len(self.manager.workers),
                "evictions": self.evictions,
                "respawns": self.respawns,
                "autoscale_events": self.autoscale_events,
                "store_blobs": self.blobs.keys() if self.blobs else [],
                "models": {
                    state.spec.name: {
                        "route_key": state.key,
                        "replicas": state.replicas,
                        "queue_depth": state.queue.qsize(),
                        "inflight": state.inflight,
                        "served": state.served,
                        "failed": state.failed,
                        "retries": state.retries,
                    } for state in self.models.values()},
            },
            "workers": workers,
        }


async def _cancel_and_wait(tasks: list[asyncio.Task],
                           poll_s: float = 0.2) -> None:
    """Cancel tasks and wait until every one has actually finished.

    A plain ``cancel() + gather()`` can hang forever on Python < 3.12:
    ``asyncio.wait_for`` has a race where a cancellation arriving just
    as the inner future completes is swallowed — the task keeps running
    (state "cancelling") and the one-shot CancelledError is spent.  The
    dispatch and health loops sit on ``wait_for``-based HTTP calls, so
    they can lose a cancel this way and park on their next ``await``
    for good.  Re-issuing ``cancel()`` re-delivers the exception, so
    cancelling in a loop until ``asyncio.wait`` reports every task done
    is guaranteed to converge.
    """
    pending = {task for task in tasks if not task.done()}
    while pending:
        for task in pending:
            task.cancel()
        _, pending = await asyncio.wait(pending, timeout=poll_s)


def _error_text(response: HttpResponse) -> str:
    try:
        parsed = response.json()
        if isinstance(parsed, dict) and "error" in parsed:
            return str(parsed["error"])
    except Exception:  # noqa: BLE001 - body may be anything
        pass
    return response.body[:200].decode("utf-8", "replace")
