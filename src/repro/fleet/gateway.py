"""The fleet gateway: one HTTP front door over N worker processes.

:class:`PumaFleet` is the subsystem's spine.  It owns:

* the **front door** — ``POST /v1/predict``, ``GET /v1/models``,
  ``GET /healthz``, ``GET /metrics`` on one port (plus the artifact
  plane ``GET/PUT /v1/artifacts/{key}`` backing the networked store);
* **placement** — consistent hashing of each model's route key onto the
  worker ring (:mod:`repro.fleet.ring`), so a model's replicas are a
  stable subset of workers sharing warm artifacts;
* **per-model queues** — every model gets its own queue + dispatcher
  pool, so a burst of heavy CNN traffic queues behind *itself*, never
  in front of MLP requests (head-of-line isolation);
* **dispatch with retry** — a request goes to one replica of its
  model; on a transport failure or 5xx the gateway backs off and
  retries on a *different* replica.  Safe by construction: engines are
  deterministic (seeded weights + seeded crossbar programming), so any
  replica's answer is bitwise the same — the fleet-level invariant
  ``docs/guarantees.md`` pins and ``tests/test_fleet.py`` enforces;
* **health & lifecycle** — periodic ``/healthz`` probes; consecutive
  failures (or a dead process) evict the worker and respawn a fresh one
  that warm-starts its models off the networked store;
* **autoscaling** — per-model replica counts follow observed queue
  depth through the pure policy
  :func:`repro.fleet.manager.autoscale_decision`; new replicas load
  lazily on first dispatch (pulling the artifact blob, not recompiling).

Graceful shutdown mirrors ``PumaServer.stop``: the front door starts
refusing new work (503), queued requests drain to completion, workers
are asked to drain their own micro-batches, and only then do processes
exit — zero dropped requests, which the CI smoke job asserts.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.serve.clock import Clock, MonotonicClock

from repro.fleet.http import (
    ConnectionPool,
    FleetConnectionError,
    HttpRequest,
    HttpResponse,
    HttpServer,
    ProtocolError,
    error_response,
    json_response,
)
from repro.fleet.manager import (
    WorkerHandle,
    WorkerManager,
    autoscale_decision,
    probe_health,
)
from repro.fleet.models import FleetModelSpec, route_key
from repro.fleet.netstore import SHA_HEADER, BlobStore, NetworkArtifactError
from repro.fleet.resilience import (
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    backoff_delay,
)
from repro.fleet.ring import HashRing

PREDICT_TIMEOUT_S = 120.0
LOAD_TIMEOUT_S = 300.0
_ARTIFACT_PREFIX = "/v1/artifacts/"


class FleetError(RuntimeError):
    """A fleet request failed permanently (after retries, or rejected)."""


class FleetAdmissionError(FleetError):
    """The model's gateway queue is full; the request was refused.

    Maps to HTTP 429 + ``Retry-After`` (:attr:`retry_after_s`): under a
    burst the client learns *immediately* that it should back off,
    instead of queueing toward a timeout.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class FleetDeadlineError(FleetError):
    """The request's end-to-end deadline expired before an answer.

    Maps to HTTP 504 with reason ``deadline_exceeded``.  Raised
    wherever the budget actually ran out — the gateway queue, a
    dispatch attempt, or the worker's batch queue (whose 504 propagates
    up as this).
    """


@dataclass
class _ModelState:
    """Gateway-side state for one deployed model."""

    spec: FleetModelSpec
    key: str
    replicas: int
    # Entries are ((-priority, deadline, seq), _Pending): higher-priority
    # requests dispatch first, earlier deadlines next, arrival order last
    # — the same EDF order the worker-side scheduler uses, so a burst of
    # low-priority traffic cannot sit in front of an urgent request.
    queue: asyncio.PriorityQueue = field(
        default_factory=asyncio.PriorityQueue)
    dispatchers: list = field(default_factory=list)
    rr: int = 0                     # round-robin cursor over placement
    inflight: int = 0
    served: int = 0
    failed: int = 0
    retries: int = 0
    sheds: int = 0                  # deadline-expired, failed with 504
    rejections: int = 0             # admission-refused, failed with 429


@dataclass
class _Pending:
    """One queued predict: wire-level inputs + the caller's future."""

    inputs: dict[str, Any]
    future: asyncio.Future
    enqueued_at: float
    # Absolute monotonic deadline (None = no deadline) and a unique
    # token decorrelating this request's backoff jitter from its peers'.
    deadline_at: float | None = None
    token: int = 0
    priority: int = 0

    def sort_key(self) -> tuple:
        """EDF order for the gateway queue (mirrors the worker scheduler)."""
        deadline = math.inf if self.deadline_at is None else self.deadline_at
        return (-self.priority, deadline, self.token)


class PumaFleet:
    """N ``PumaServer`` worker processes behind one HTTP front door.

    Example::

        specs = [FleetModelSpec("mlp", "mlp", {"dims": [32, 24, 10]})]
        async with PumaFleet(specs, num_workers=2,
                             work_dir="fleet-scratch") as fleet:
            reply = await fleet.predict("mlp", {"x": x_vector})
            reply["words"]["out"]        # fixed-point words, bitwise ==
                                         # a local engine.run_batch

    Args:
        models: the deployment set (unique names).
        num_workers: worker processes to spawn (restored on eviction).
        work_dir: scratch root (artifact blobs, worker scratch).
        replicas_per_model: initial replicas per model (default:
            ``min(2, num_workers)``); the autoscaler moves it between
            ``min_replicas`` and ``max_replicas`` when enabled.
        max_batch_size / batch_window_s: per-model worker batching.
        dispatch_concurrency: concurrent dispatches per model — kept
            above ``max_batch_size``'s reach so worker-side
            micro-batching still coalesces.
        max_attempts: dispatch attempts per request (distinct replicas
            preferred; transport failures and 5xx retry, 400 never).
        health_interval_s / health_failures: probe cadence and the
            consecutive-failure threshold for eviction + respawn.
        autoscale / autoscale_interval_s / min_replicas / max_replicas /
            high_watermark / low_watermark: queue-depth autoscaling
            policy (see :func:`autoscale_decision`).
        preload: load every model onto its placement when the fleet
            starts (first request fast + deterministic placement).
        max_queue_depth: per-model admission bound — when this many
            requests already wait in a model's gateway queue, new ones
            fail fast with :class:`FleetAdmissionError` (HTTP 429 +
            ``Retry-After``).  ``None`` = unbounded.
        default_deadline_ms: end-to-end deadline applied to requests
            that don't carry their own ``deadline_ms`` (``None`` = no
            default; requests without a deadline never shed).
        breaker_threshold / breaker_cooldown_s: per-replica circuit
            breaker policy (consecutive failures to open; cooldown
            before a half-open probe) — the fast path around a sick
            replica while the slower health loop decides on eviction.
        backoff_base_s / backoff_cap_s / backoff_seed: dispatch retry
            backoff (capped exponential, deterministic jitter via
            :func:`repro.fleet.resilience.backoff_delay`).
        blob_store_max_bytes: size cap for the artifact plane's LRU
            (``None`` = unbounded, the pre-resilience behavior).
        scheduler_policy: batch-formation policy each worker's
            ``PumaServer`` runs (``"edf"`` default, ``"fifo"``
            baseline); priorities and deadlines ride end-to-end either
            way, but only EDF orders by them.
        clock: time source for gateway deadline math and retry backoff
            (default wall clock; tests inject
            :class:`~repro.serve.clock.VirtualClock`).
        fault_plan: a chaos schedule armed at startup — worker events
            ride each worker's spawn bootstrap, gateway events
            (``corrupt_blob``) arm on the gateway injector.  More can
            be armed on a live fleet via :meth:`arm_chaos` or
            ``POST /v1/chaos``.
        drain_timeout_s: how long :meth:`stop`'s drain waits for queued
            + in-flight work before giving up and failing the rest.
    """

    def __init__(self, models: list[FleetModelSpec], *,
                 num_workers: int = 2,
                 work_dir: str | Path,
                 replicas_per_model: int | None = None,
                 max_batch_size: int = 16,
                 batch_window_s: float = 0.002,
                 dispatch_concurrency: int = 16,
                 max_attempts: int = 3,
                 health_interval_s: float = 0.5,
                 health_failures: int = 2,
                 autoscale: bool = False,
                 autoscale_interval_s: float = 0.5,
                 min_replicas: int = 1,
                 max_replicas: int | None = None,
                 high_watermark: float = 8.0,
                 low_watermark: float = 1.0,
                 respawn: bool = True,
                 preload: bool = True,
                 max_queue_depth: int | None = None,
                 default_deadline_ms: float | None = None,
                 breaker_threshold: int = 3,
                 breaker_cooldown_s: float = 0.5,
                 backoff_base_s: float = 0.02,
                 backoff_cap_s: float = 0.5,
                 backoff_seed: int = 0,
                 blob_store_max_bytes: int | None = None,
                 fault_plan: FaultPlan | None = None,
                 drain_timeout_s: float = PREDICT_TIMEOUT_S,
                 scheduler_policy: str = "edf",
                 clock: Clock | None = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        names = [spec.name for spec in models]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate model names in {sorted(names)}")
        if not models:
            raise ValueError("a fleet needs at least one model")
        self.num_workers = num_workers
        self.work_dir = Path(work_dir)
        self.replicas_per_model = (min(2, num_workers)
                                   if replicas_per_model is None
                                   else min(replicas_per_model, num_workers))
        self.max_batch_size = max_batch_size
        self.batch_window_s = batch_window_s
        self.dispatch_concurrency = dispatch_concurrency
        self.max_attempts = max_attempts
        self.health_interval_s = health_interval_s
        self.health_failures = health_failures
        self.autoscale = autoscale
        self.autoscale_interval_s = autoscale_interval_s
        self.min_replicas = min_replicas
        self.max_replicas = (num_workers if max_replicas is None
                             else min(max_replicas, num_workers))
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.respawn = respawn
        self.preload = preload
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, "
                             f"got {max_queue_depth}")
        self.max_queue_depth = max_queue_depth
        self.default_deadline_ms = default_deadline_ms
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.backoff_seed = backoff_seed
        self.blob_store_max_bytes = blob_store_max_bytes
        self.fault_plan = fault_plan
        self.drain_timeout_s = drain_timeout_s
        self.scheduler_policy = scheduler_policy
        # Every deadline/backoff decision reads this clock, so tests can
        # inject a VirtualClock and drive gateway time deterministically.
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self.host = host
        self._requested_port = port

        self.models: dict[str, _ModelState] = {}
        for spec in models:
            key = route_key(spec)
            self.models[spec.name] = _ModelState(
                spec=spec, key=key, replicas=self.replicas_per_model)

        self.ring = HashRing()
        self.http = HttpServer(self._handle, host=host, port=port)
        self.pool = ConnectionPool()
        self.blobs: BlobStore | None = None
        self.manager: WorkerManager | None = None
        self.breakers: dict[str, CircuitBreaker] = {}
        self.chaos = FaultInjector(
            seed=fault_plan.seed if fault_plan is not None else 0)
        self._load_locks: dict[tuple[str, str], asyncio.Lock] = {}
        self._background: list[asyncio.Task] = []
        self._tokens = itertools.count()
        self._running = False
        self._closing = False
        self.evictions = 0
        self.respawns = 0
        self.autoscale_events = 0

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> "PumaFleet":
        if self._running:
            return self
        self.work_dir.mkdir(parents=True, exist_ok=True)
        self.blobs = BlobStore(self.work_dir / "store",
                               max_bytes=self.blob_store_max_bytes)
        await self.http.start()
        self.manager = WorkerManager(
            str(self.work_dir / "workers"),
            store_address=(self.host, self.http.port),
            max_batch_size=self.max_batch_size,
            batch_window_s=self.batch_window_s, host=self.host,
            max_queue_depth=self.max_queue_depth,
            scheduler_policy=self.scheduler_policy,
            fault_plan=self.fault_plan)
        await self.manager.spawn_many(self.num_workers)
        for worker_id in self.manager.workers:
            self.ring.add(worker_id)
            self.breakers[worker_id] = self._new_breaker()
        if self.fault_plan is not None:
            self.chaos.arm(self.fault_plan.gateway_events())
        for state in self.models.values():
            state.dispatchers = [
                asyncio.create_task(self._dispatch_loop(state))
                for _ in range(self.dispatch_concurrency)]
        self._running = True
        if self.preload:
            for state in self.models.values():
                for handle in self._placement(state):
                    await self._ensure_loaded(state, handle)
        self._background = [
            asyncio.create_task(self._health_loop()),
        ]
        if self.autoscale:
            self._background.append(
                asyncio.create_task(self._autoscale_loop()))
        return self

    async def stop(self, *, drain: bool = True,
                   drain_timeout_s: float | None = None) -> None:
        """Drain, then dismantle — queued work finishes unless told not to.

        The drain is time-bounded (``drain_timeout_s``, defaulting to
        the constructor's): a worker hung mid-response must not hold
        shutdown hostage.  Work still queued or in flight when the
        bound lapses is failed loudly with :class:`FleetError` — never
        abandoned.
        """
        if not self._running:
            return
        self._closing = True
        if drain:
            limit = (self.drain_timeout_s if drain_timeout_s is None
                     else drain_timeout_s)
            deadline = time.monotonic() + limit
            while any(state.queue.qsize() or state.inflight
                      for state in self.models.values()):
                if time.monotonic() > deadline:
                    break           # hung worker: drain bound lapsed
                await asyncio.sleep(0.01)
        for state in self.models.values():
            while not state.queue.empty():
                _key, pending = state.queue.get_nowait()
                if not pending.future.done():
                    pending.future.set_exception(FleetError(
                        "fleet stopped before this request was served"))
        await _cancel_and_wait(
            self._background
            + [t for s in self.models.values() for t in s.dispatchers])
        if self.manager is not None:
            await self.manager.close(drain=drain)
        await self.pool.close()
        await self.http.close()
        self._running = False

    async def __aenter__(self) -> "PumaFleet":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    @property
    def url(self) -> str:
        return self.http.url

    # -- placement ----------------------------------------------------------

    def _placement(self, state: _ModelState) -> list[WorkerHandle]:
        """The model's current replica set, healthiest-first subset."""
        chosen = self.ring.replicas(state.key, state.replicas)
        return [self.manager.workers[w] for w in chosen
                if w in self.manager.workers
                and self.manager.workers[w].healthy]

    async def _ensure_loaded(self, state: _ModelState,
                             handle: WorkerHandle) -> None:
        """Idempotently host the model on one worker (serialized)."""
        if state.key in handle.hosted:
            return
        lock = self._load_locks.setdefault(
            (handle.worker_id, state.key), asyncio.Lock())
        async with lock:
            if state.key in handle.hosted:
                return
            body = json.dumps({"spec": state.spec.to_dict(),
                               "route_key": state.key}).encode()
            response = await self.pool.request(
                handle.host, handle.port, "POST", "/v1/models", body=body,
                headers={"Content-Type": "application/json"},
                timeout=LOAD_TIMEOUT_S)
            if response.status != 200:
                raise FleetError(
                    f"{handle.worker_id} refused to load "
                    f"{state.spec.name}: {response.status} "
                    f"{response.body[:200]!r}")
            handle.hosted.add(state.key)

    # -- dispatch -----------------------------------------------------------

    async def predict(self, model: str, inputs: dict[str, Any],
                      timeout: float = PREDICT_TIMEOUT_S,
                      deadline_ms: float | None = None,
                      priority: int = 0) -> dict:
        """Run one inference through the fleet; the worker's JSON reply.

        ``inputs`` maps input names to 1-D float vectors (lists or
        arrays).  The reply carries ``outputs`` (floats), ``words``
        (fixed-point ints, the bitwise ground truth), ``worker``, and
        ``execution``.  ``deadline_ms`` is the request's *end-to-end*
        time budget: it bounds the gateway queue wait, every dispatch
        attempt, and the worker's batch queue (the remaining budget
        travels in the request body).  ``priority`` orders the gateway
        queue (higher first) and rides to the worker's batch scheduler;
        it never affects output values, only ordering.  Raises
        :class:`FleetError` on permanent failure —
        :class:`FleetAdmissionError` when the model's queue is full,
        :class:`FleetDeadlineError` when the budget expires — and
        :class:`KeyError` for an unknown model.
        """
        if not self._running or self._closing:
            raise FleetError("fleet is not accepting requests "
                             "(stopped or draining)")
        state = self.models[model]
        priority = int(priority)
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        deadline_at = None
        wait_timeout = timeout
        if deadline_ms is not None:
            if deadline_ms <= 0:
                state.sheds += 1
                raise FleetDeadlineError(
                    f"{model}: deadline_ms={deadline_ms:g} is already "
                    f"expired")
            deadline_at = self.clock.now() + deadline_ms / 1000.0
            # The future resolves with a 504 at the deadline; the extra
            # margin only covers dispatcher scheduling, not more work.
            wait_timeout = min(timeout, deadline_ms / 1000.0 + 1.0)
        if self.max_queue_depth is not None and \
                state.queue.qsize() >= self.max_queue_depth:
            state.rejections += 1
            raise FleetAdmissionError(
                f"{model}: gateway queue is full "
                f"({self.max_queue_depth} requests waiting)",
                retry_after_s=self._retry_after(state))
        wire_inputs = {name: np.asarray(values, dtype=np.float64).tolist()
                       for name, values in inputs.items()}
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        pending = _Pending(
            inputs=wire_inputs, future=future,
            enqueued_at=self.clock.now(), deadline_at=deadline_at,
            token=next(self._tokens), priority=priority)
        state.queue.put_nowait((pending.sort_key(), pending))
        try:
            return await asyncio.wait_for(future, wait_timeout)
        except asyncio.TimeoutError:
            # wait_for cancelled the future, so the dispatcher (which
            # guards every resolve with future.done()) won't also count
            # this request — the shed tally stays single-entry.
            if deadline_at is not None and self.clock.now() >= deadline_at:
                state.sheds += 1
                raise FleetDeadlineError(
                    f"{model}: deadline of {deadline_ms:g}ms expired "
                    f"before a reply arrived") from None
            raise FleetError(
                f"{model}: no reply within {wait_timeout:g}s") from None

    def _retry_after(self, state: _ModelState) -> float:
        """A Retry-After estimate: rough time to drain half the queue."""
        per_request_s = 0.02
        return round(max(0.1, state.queue.qsize() * per_request_s / 2), 2)

    async def _dispatch_loop(self, state: _ModelState) -> None:
        while True:
            _key, pending = await state.queue.get()
            if pending.future.done():
                continue             # caller gave up (timeout/cancel)
            if pending.deadline_at is not None \
                    and self.clock.now() >= pending.deadline_at:
                # Expired while queued: shed now, spend no dispatch.
                state.sheds += 1
                pending.future.set_exception(FleetDeadlineError(
                    f"{state.spec.name}: deadline passed in the gateway "
                    f"queue"))
                continue
            state.inflight += 1
            try:
                result = await self._dispatch_one(state, pending)
                if not pending.future.done():
                    pending.future.set_result(result)
                state.served += 1
            except asyncio.CancelledError:
                if not pending.future.done():
                    pending.future.set_exception(FleetError(
                        "fleet dispatcher cancelled mid-request"))
                raise
            except Exception as error:  # noqa: BLE001 - fail that request
                state.failed += 1
                if not pending.future.done():
                    pending.future.set_exception(
                        error if isinstance(error, FleetError)
                        else FleetError(f"{type(error).__name__}: {error}"))
            finally:
                state.inflight -= 1

    async def _dispatch_one(self, state: _ModelState,
                            pending: _Pending) -> dict:
        """Route one request; retry transient failures on other replicas.

        Retries are bounded (``max_attempts``) and paced by capped
        exponential backoff with deterministic jitter
        (:func:`backoff_delay` keyed on this request's token).  Each
        attempt re-checks the request's remaining deadline budget,
        which also rides to the worker as ``deadline_ms`` and caps the
        HTTP timeout.  Per-replica circuit breakers record the outcome:
        transport failures, garbage replies, and 5xx open them; an
        honest answer (including a worker-side 504) closes them.
        """
        tried: set[str] = set()
        last_error: str = "no healthy replica available"
        for attempt in range(self.max_attempts):
            remaining_s = None
            if pending.deadline_at is not None:
                remaining_s = pending.deadline_at - self.clock.now()
                if remaining_s <= 0:
                    state.sheds += 1
                    raise FleetDeadlineError(
                        f"{state.spec.name}: deadline expired after "
                        f"{attempt} dispatch attempt(s) "
                        f"(last error: {last_error})")
            handle = self._pick_replica(state, tried)
            if handle is None:
                # Everything tried or unhealthy: wait for health/respawn
                # to restore a replica, then widen the search again.
                await self.clock.sleep(0.05 * (attempt + 1))
                tried.clear()
                handle = self._pick_replica(state, tried)
                if handle is None:
                    continue
            tried.add(handle.worker_id)
            breaker = self.breakers.get(handle.worker_id)
            payload: dict[str, Any] = {"route_key": state.key,
                                       "inputs": pending.inputs,
                                       "priority": pending.priority}
            http_timeout = PREDICT_TIMEOUT_S
            if remaining_s is not None:
                # The worker sheds on its own clock; the grace margin
                # lets its 504 beat our transport timeout.
                payload["deadline_ms"] = remaining_s * 1000.0
                http_timeout = min(PREDICT_TIMEOUT_S, remaining_s + 0.5)
            body = json.dumps(payload).encode()
            try:
                await self._ensure_loaded(state, handle)
                response = await self.pool.request(
                    handle.host, handle.port, "POST", "/v1/predict",
                    body=body,
                    headers={"Content-Type": "application/json"},
                    timeout=http_timeout)
            except (FleetConnectionError, FleetError) as error:
                # Transport failure or failed load: this replica may be
                # dying — flag it for the health loop, open its breaker
                # a notch, and go elsewhere.
                handle.consecutive_failures += 1
                if breaker is not None:
                    breaker.record_failure()
                await self.pool.forget(handle.host, handle.port)
                last_error = str(error)
                state.retries += 1
                await self._backoff(attempt, pending.token)
                continue
            if response.status == 200:
                try:
                    reply = response.json()
                except ProtocolError as error:
                    # A 200 with a garbage body: the replica is lying.
                    # Never surface it — retry elsewhere (any replica's
                    # honest answer is bitwise the same).
                    handle.consecutive_failures += 1
                    if breaker is not None:
                        breaker.record_failure()
                    await self.pool.forget(handle.host, handle.port)
                    last_error = (f"garbage 200 body from "
                                  f"{handle.worker_id}: {error}")
                    state.retries += 1
                    await self._backoff(attempt, pending.token)
                    continue
                if breaker is not None:
                    breaker.record_success()
                return reply
            if response.status == 400:
                # The request itself is bad; no replica will differ.
                raise FleetError(
                    f"{state.spec.name}: rejected by {handle.worker_id}: "
                    f"{_error_text(response)}")
            if response.status == 504:
                # The worker shed it: the deadline verdict is final (a
                # healthy answer — close the breaker, don't retry).
                if breaker is not None:
                    breaker.record_success()
                state.sheds += 1
                raise FleetDeadlineError(
                    f"{state.spec.name}: {handle.worker_id} shed the "
                    f"request: {_error_text(response)}")
            if response.status in (409, 429):
                # Placement race (reload next attempt) or a full worker
                # queue — load, not sickness: no breaker penalty.
                if response.status == 409:
                    handle.hosted.discard(state.key)
            elif breaker is not None:
                breaker.record_failure()         # 5xx: count it
            last_error = f"{response.status} {_error_text(response)}"
            state.retries += 1
            await self._backoff(attempt, pending.token)
        raise FleetError(
            f"{state.spec.name}: no replica answered after "
            f"{self.max_attempts} attempts (last error: {last_error})")

    async def _backoff(self, attempt: int, token: int) -> None:
        await self.clock.sleep(backoff_delay(
            attempt, base_s=self.backoff_base_s, cap_s=self.backoff_cap_s,
            seed=self.backoff_seed, token=token))

    def _new_breaker(self) -> CircuitBreaker:
        return CircuitBreaker(failure_threshold=self.breaker_threshold,
                              cooldown_s=self.breaker_cooldown_s)

    def _pick_replica(self, state: _ModelState,
                      tried: set[str]) -> WorkerHandle | None:
        placement = self._placement(state)
        untried = [h for h in placement if h.worker_id not in tried]
        if not untried:
            return None
        # Breaker-open replicas are skipped — the fast path around a
        # sick worker while the health loop decides on eviction.  If
        # *every* candidate's breaker is open, probe anyway: failing
        # the request outright would turn a transient blip into an
        # outage, and a half-open probe is how breakers re-close.
        allowed = [h for h in untried
                   if (breaker := self.breakers.get(h.worker_id)) is None
                   or breaker.allow()]
        candidates = allowed or untried
        state.rr += 1
        return candidates[state.rr % len(candidates)]

    # -- background loops ---------------------------------------------------

    async def _health_loop(self) -> None:
        while not self._closing:
            await asyncio.sleep(self.health_interval_s)
            for worker_id, handle in list(self.manager.workers.items()):
                if handle.alive and await probe_health(handle):
                    handle.consecutive_failures = 0
                    handle.healthy = True
                    continue
                handle.consecutive_failures += 1
                if (handle.consecutive_failures >= self.health_failures
                        or not handle.alive):
                    handle.healthy = False
                    await self._evict_and_respawn(worker_id, handle)

    async def _evict_and_respawn(self, worker_id: str,
                                 handle: WorkerHandle) -> None:
        self.evictions += 1
        self.ring.remove(worker_id)
        self.manager.evict(worker_id)
        self.breakers.pop(worker_id, None)
        await self.pool.forget(handle.host, handle.port)
        if self.respawn and not self._closing \
                and len(self.manager.workers) < self.num_workers:
            try:
                replacement = await self.manager.spawn()
            except Exception:       # noqa: BLE001 - retried next tick
                return
            self.ring.add(replacement.worker_id)
            self.breakers[replacement.worker_id] = self._new_breaker()
            self.respawns += 1

    async def _autoscale_loop(self) -> None:
        while not self._closing:
            await asyncio.sleep(self.autoscale_interval_s)
            for state in self.models.values():
                delta = autoscale_decision(
                    state.queue.qsize(), state.replicas,
                    min_replicas=self.min_replicas,
                    max_replicas=self.max_replicas,
                    high_watermark=self.high_watermark,
                    low_watermark=self.low_watermark)
                if delta:
                    state.replicas += delta
                    self.autoscale_events += 1

    # -- chaos control plane -------------------------------------------------

    async def arm_chaos(self, plan: FaultPlan) -> dict[str, int]:
        """Arm a fault plan across the live fleet.

        Worker-side events go to each worker's ``POST /v1/chaos``
        (filtered to its spawn index); gateway-side events
        (``corrupt_blob``) arm on the gateway's own injector.  Returns
        how many events each party armed.  A worker that cannot be
        reached arms nothing — it is presumably already the fault.
        """
        self.chaos.seed = plan.seed
        armed = {"gateway": self.chaos.arm(plan.gateway_events())}
        for handle in list(self.manager.workers.values()):
            events = plan.for_worker(handle.index)
            if not events:
                armed[handle.worker_id] = 0
                continue
            body = json.dumps({
                "seed": plan.seed,
                "events": [event.to_dict() for event in events]}).encode()
            try:
                response = await self.pool.request(
                    handle.host, handle.port, "POST", "/v1/chaos",
                    body=body,
                    headers={"Content-Type": "application/json"},
                    timeout=5.0)
                armed[handle.worker_id] = (len(events)
                                           if response.status == 200 else 0)
            except FleetConnectionError:
                armed[handle.worker_id] = 0
        return armed

    # -- HTTP front door ----------------------------------------------------

    async def _handle(self, request: HttpRequest) -> HttpResponse:
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return json_response({
                "ok": self._running and not self._closing,
                "workers": len(self.manager.workers) if self.manager else 0,
                "models": sorted(self.models)})
        if route == ("GET", "/v1/models"):
            return json_response({"models": [
                {"name": state.spec.name, "kind": state.spec.kind,
                 "route_key": state.key, "replicas": state.replicas,
                 "placement": [h.worker_id
                               for h in self._placement(state)]}
                for state in self.models.values()]})
        if route == ("POST", "/v1/predict"):
            return await self._handle_predict(request)
        if route == ("POST", "/v1/chaos"):
            try:
                plan = FaultPlan.from_dict(request.json())
            except FaultPlanError as error:
                return error_response(400, str(error),
                                      reason="bad_fault_plan")
            return json_response({"ok": True,
                                  "armed": await self.arm_chaos(plan)})
        if route == ("GET", "/metrics"):
            return json_response(await self.metrics())
        if request.path.startswith(_ARTIFACT_PREFIX):
            return await self._handle_artifact(request)
        return error_response(404, f"no route {request.method} "
                                   f"{request.path} on this gateway")

    async def _handle_predict(self, request: HttpRequest) -> HttpResponse:
        if self._closing or not self._running:
            return error_response(503, "fleet is draining; "
                                       "not accepting new requests",
                                  reason="draining")
        payload = request.json()
        model = payload.get("model")
        inputs = payload.get("inputs")
        if model not in self.models:
            return error_response(
                404, f"unknown model {model!r}; deployed: "
                     f"{sorted(self.models)}", reason="unknown_model")
        if not isinstance(inputs, dict):
            return error_response(400, "predict body needs an 'inputs' "
                                       "object of float vectors")
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None:
            try:
                deadline_ms = float(deadline_ms)
            except (TypeError, ValueError):
                return error_response(
                    400, f"bad deadline_ms {payload['deadline_ms']!r}")
        try:
            priority = int(payload.get("priority", 0))
        except (TypeError, ValueError):
            return error_response(
                400, f"bad priority {payload['priority']!r} "
                     f"(must be an integer)")
        try:
            reply = await self.predict(model, inputs,
                                       deadline_ms=deadline_ms,
                                       priority=priority)
        except FleetAdmissionError as error:
            return error_response(
                429, str(error), reason="queue_full",
                headers={"Retry-After": f"{error.retry_after_s:g}"})
        except FleetDeadlineError as error:
            return error_response(504, str(error),
                                  reason="deadline_exceeded")
        except FleetError as error:
            return error_response(503, str(error),
                                  reason="dispatch_failed")
        except (TypeError, ValueError) as error:
            return error_response(400, str(error))
        return json_response(reply)

    async def _handle_artifact(self, request: HttpRequest) -> HttpResponse:
        key = request.path[len(_ARTIFACT_PREFIX):]
        if request.method == "GET":
            try:
                found = self.blobs.get(key)
            except NetworkArtifactError as error:
                return error_response(400, str(error))
            if found is None:
                return error_response(404, f"no artifact blob for "
                                           f"route key {key[:16]}…")
            data, digest = found
            if self.chaos.take("corrupt_blob") is not None:
                # Seeded bit rot: flip one byte but keep the *declared*
                # digest — exactly what disk/wire corruption looks like.
                # The puller's verify-then-verify-again chain must
                # reject it and fall back to a cold build.
                data = self.chaos.corrupt(data)
            return HttpResponse(
                status=200,
                headers={"Content-Type": "application/x-tar",
                         SHA_HEADER: digest},
                body=data)
        if request.method == "PUT":
            declared = request.headers.get(SHA_HEADER.lower())
            if not declared:
                return error_response(400, f"PUT requires the "
                                           f"{SHA_HEADER} header")
            try:
                self.blobs.put(key, request.body, declared)
            except NetworkArtifactError as error:
                return error_response(400, str(error))
            return json_response({"ok": True, "sha256": declared},
                                 status=201)
        return error_response(405, f"artifact plane supports GET/PUT, "
                                   f"not {request.method}")

    # -- observability ------------------------------------------------------

    async def metrics(self) -> dict:
        """Fleet counters + live per-worker ``/metrics`` snapshots."""
        workers: dict[str, Any] = {}
        for worker_id, handle in list(self.manager.workers.items()):
            entry: dict[str, Any] = {
                "port": handle.port, "healthy": handle.healthy,
                "alive": handle.alive,
                "hosted": sorted(handle.hosted)}
            try:
                response = await self.pool.request(
                    handle.host, handle.port, "GET", "/metrics",
                    timeout=5.0)
                if response.status == 200:
                    entry["metrics"] = response.json()
            except FleetConnectionError:
                entry["metrics"] = None
            workers[worker_id] = entry
        return {
            "fleet": {
                "workers": len(self.manager.workers),
                "evictions": self.evictions,
                "respawns": self.respawns,
                "autoscale_events": self.autoscale_events,
                "store_blobs": self.blobs.keys() if self.blobs else [],
                "store_evictions": (self.blobs.evictions
                                    if self.blobs else 0),
                "breaker_opens": sum(b.opens
                                     for b in self.breakers.values()),
                "breakers": {worker_id: {"state": breaker.state,
                                         "opens": breaker.opens}
                             for worker_id, breaker
                             in sorted(self.breakers.items())},
                "chaos": self.chaos.ledger(),
                "models": {
                    state.spec.name: {
                        "route_key": state.key,
                        "replicas": state.replicas,
                        "queue_depth": state.queue.qsize(),
                        "inflight": state.inflight,
                        "served": state.served,
                        "failed": state.failed,
                        "retries": state.retries,
                        "sheds": state.sheds,
                        "rejections": state.rejections,
                    } for state in self.models.values()},
            },
            "workers": workers,
        }


async def _cancel_and_wait(tasks: list[asyncio.Task],
                           poll_s: float = 0.2) -> None:
    """Cancel tasks and wait until every one has actually finished.

    A plain ``cancel() + gather()`` can hang forever on Python < 3.12:
    ``asyncio.wait_for`` has a race where a cancellation arriving just
    as the inner future completes is swallowed — the task keeps running
    (state "cancelling") and the one-shot CancelledError is spent.  The
    dispatch and health loops sit on ``wait_for``-based HTTP calls, so
    they can lose a cancel this way and park on their next ``await``
    for good.  Re-issuing ``cancel()`` re-delivers the exception, so
    cancelling in a loop until ``asyncio.wait`` reports every task done
    is guaranteed to converge.
    """
    pending = {task for task in tasks if not task.done()}
    while pending:
        for task in pending:
            task.cancel()
        _, pending = await asyncio.wait(pending, timeout=poll_s)


def _error_text(response: HttpResponse) -> str:
    try:
        parsed = response.json()
        if isinstance(parsed, dict) and "error" in parsed:
            return str(parsed["error"])
    except Exception:  # noqa: BLE001 - body may be anything
        pass
    return response.body[:200].decode("utf-8", "replace")
