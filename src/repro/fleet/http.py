"""Minimal HTTP/1.1 over asyncio streams — the fleet's only wire format.

The repo runs offline with no third-party web stack, so the fleet speaks
a deliberately small HTTP/1.1 subset over stdlib ``asyncio`` streams:
request line + headers + ``Content-Length`` body, persistent
(keep-alive) connections, JSON or raw-octet payloads.  No chunked
encoding, no TLS, no multipart — every fleet endpoint fits the subset,
and real HTTP clients (curl, a browser) can still talk to it.

Three layers:

* :func:`read_request` / :func:`read_response` + the ``write_*``
  helpers — parsing and serialization over a stream pair;
* :class:`HttpServer` — accept loop + per-connection keep-alive loop
  dispatching to one async handler (the gateway and the workers each
  wrap one);
* :class:`HttpConnection` / :class:`ConnectionPool` — client side: a
  persistent connection with request/response framing, and a per-address
  pool the router draws from so thousands of requests don't pay a TCP
  handshake each.

Failure model: any framing violation raises :class:`ProtocolError`
(server answers 400 and closes); any transport failure — peer died,
connection reset, EOF mid-response — raises
:class:`FleetConnectionError`, the signal the router's retry-with-backoff
logic keys on.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

# Framing limits: generous for artifact blobs, tight enough that a
# misbehaving peer cannot balloon memory.
MAX_HEADER_BYTES = 64 * 1024
MAX_HEADERS = 100
MAX_BODY_BYTES = 512 * 1024 * 1024

REASONS = {
    200: "OK", 201: "Created", 204: "No Content", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(ValueError):
    """The peer sent bytes that are not the HTTP subset we speak."""


class FleetConnectionError(ConnectionError):
    """The transport failed (peer gone, reset, EOF mid-message).

    The router treats this as "that worker may be dead": the request is
    retried on another replica and the health monitor takes it from
    there.
    """


class FleetTimeoutError(FleetConnectionError):
    """The peer stayed silent past the client's timeout.

    A subclass of :class:`FleetConnectionError` (the connection is torn
    down either way), distinguished so the load generator can tell a
    *hang* (this) from a *drop* (the base class) — the chaos benchmark
    asserts zero of the former.
    """


class DropConnection(Exception):
    """A handler's way to kill the connection without responding.

    Raised by the chaos middleware to simulate a connection drop: the
    server closes the socket mid-request, and the client sees a
    :class:`FleetConnectionError`.  Never raised outside fault
    injection.
    """


@dataclass
class HttpRequest:
    """One parsed request: method, split path/query, headers, raw body."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        """The body parsed as JSON; :class:`ProtocolError` if malformed."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"malformed JSON body: {error}") from error


@dataclass
class HttpResponse:
    """One response: status + headers + raw body, with a JSON view."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"malformed JSON body: {error}") from error


def json_response(payload, status: int = 200,
                  headers: dict[str, str] | None = None) -> HttpResponse:
    """Build a JSON :class:`HttpResponse` (the fleet's default shape)."""
    body = json.dumps(payload).encode("utf-8")
    merged = {"Content-Type": "application/json"}
    if headers:
        merged.update(headers)
    return HttpResponse(status=status, headers=merged, body=body)


def error_response(status: int, message: str, reason: str | None = None,
                   headers: dict[str, str] | None = None) -> HttpResponse:
    """A JSON error body; ``reason`` is the machine-readable failure
    code (``queue_full``, ``deadline_exceeded``, ...) clients switch on
    so they never have to parse prose."""
    payload: dict[str, str] = {"error": message}
    if reason is not None:
        payload["reason"] = reason
    return json_response(payload, status=status, headers=headers)


async def _read_head(reader: asyncio.StreamReader) -> list[str] | None:
    """Read request/status line + header lines; ``None`` on clean EOF."""
    lines: list[str] = []
    total = 0
    while True:
        try:
            raw = await reader.readline()
        except (ConnectionError, asyncio.IncompleteReadError) as error:
            raise FleetConnectionError(str(error)) from error
        if not raw:
            if not lines:
                return None          # clean EOF between messages
            raise FleetConnectionError("peer closed mid-headers")
        total += len(raw)
        if total > MAX_HEADER_BYTES:
            raise ProtocolError("headers exceed the size limit")
        line = raw.decode("latin-1").rstrip("\r\n")
        if not line:
            return lines
        if lines and len(lines) > MAX_HEADERS:
            raise ProtocolError("too many headers")
        lines.append(line)


def _parse_headers(lines: list[str]) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in lines:
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


async def _read_body(reader: asyncio.StreamReader,
                     headers: dict[str, str]) -> bytes:
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(
            f"bad Content-Length {length_text!r}") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(f"Content-Length {length} out of range")
    if length == 0:
        return b""
    try:
        return await reader.readexactly(length)
    except (ConnectionError, asyncio.IncompleteReadError) as error:
        raise FleetConnectionError(str(error)) from error


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request off the stream; ``None`` on clean EOF."""
    lines = await _read_head(reader)
    if lines is None:
        return None
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    headers = _parse_headers(lines[1:])
    body = await _read_body(reader, headers)
    return HttpRequest(method=method.upper(), path=split.path,
                       query=dict(parse_qsl(split.query)),
                       headers=headers, body=body)


async def read_response(reader: asyncio.StreamReader) -> HttpResponse:
    """Parse one response; raises :class:`FleetConnectionError` on EOF."""
    lines = await _read_head(reader)
    if lines is None:
        raise FleetConnectionError("peer closed before responding")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ProtocolError(f"malformed status line {lines[0]!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise ProtocolError(f"malformed status {parts[1]!r}") from None
    headers = _parse_headers(lines[1:])
    body = await _read_body(reader, headers)
    return HttpResponse(status=status, headers=headers, body=body)


def _write_message(writer: asyncio.StreamWriter, first_line: str,
                   headers: dict[str, str], body: bytes) -> None:
    head = [first_line]
    merged = dict(headers)
    merged["Content-Length"] = str(len(body))
    for name, value in merged.items():
        head.append(f"{name}: {value}")
    head.append("")
    head.append("")
    writer.write("\r\n".join(head).encode("latin-1") + body)


async def write_request(writer: asyncio.StreamWriter, method: str,
                        path: str, body: bytes = b"",
                        headers: dict[str, str] | None = None) -> None:
    _write_message(writer, f"{method} {path} HTTP/1.1", headers or {}, body)
    try:
        await writer.drain()
    except ConnectionError as error:
        raise FleetConnectionError(str(error)) from error


async def write_response(writer: asyncio.StreamWriter,
                         response: HttpResponse,
                         keep_alive: bool = True) -> None:
    reason = REASONS.get(response.status, "Unknown")
    headers = dict(response.headers)
    headers.setdefault("Connection",
                       "keep-alive" if keep_alive else "close")
    _write_message(writer, f"HTTP/1.1 {response.status} {reason}",
                   headers, response.body)
    try:
        await writer.drain()
    except ConnectionError as error:
        raise FleetConnectionError(str(error)) from error


class HttpServer:
    """Accept loop + keep-alive connection loops over one async handler.

    The handler is ``async def handle(request) -> HttpResponse``; any
    exception it raises becomes a 500 (the connection survives), any
    :class:`ProtocolError` from parsing becomes a 400 and the connection
    closes.  Binding to port 0 picks a free port — read it back from
    :attr:`port` after :meth:`start` (how workers report their address).
    """

    def __init__(self, handler, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._handler = handler
        self._requested = (host, port)
        self._server: asyncio.AbstractServer | None = None
        self.host = host
        self.port: int | None = None

    async def start(self) -> "HttpServer":
        host, port = self._requested
        self._server = await asyncio.start_server(self._serve_connection,
                                                  host, port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as error:
                    await write_response(
                        writer, error_response(400, str(error)),
                        keep_alive=False)
                    return
                except FleetConnectionError:
                    return
                if request is None:
                    return
                try:
                    response = await self._handler(request)
                except asyncio.CancelledError:
                    raise
                except DropConnection:
                    return           # chaos: die without a response
                except Exception as error:  # noqa: BLE001 - 500, keep going
                    response = error_response(
                        500, f"{type(error).__name__}: {error}")
                keep_alive = request.headers.get(
                    "connection", "keep-alive").lower() != "close"
                try:
                    await write_response(writer, response,
                                         keep_alive=keep_alive)
                except FleetConnectionError:
                    return
                if not keep_alive:
                    return
        except asyncio.CancelledError:
            # Loop or server teardown cancelled this connection task;
            # end it quietly (the finally below closes the socket) so
            # shutdown doesn't spray CancelledError logs per connection.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError here is the event loop tearing the
                # task down while the socket drains; the connection is
                # closing either way, and letting it escape a finally
                # would just log per-connection noise at shutdown.
                pass


class HttpConnection:
    """One persistent client connection with request/response framing."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    @property
    def connected(self) -> bool:
        return self._writer is not None and not self._writer.is_closing()

    async def connect(self) -> None:
        try:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port)
        except (ConnectionError, OSError) as error:
            raise FleetConnectionError(
                f"cannot connect to {self.host}:{self.port}: "
                f"{error}") from error

    async def request(self, method: str, path: str, body: bytes = b"",
                      headers: dict[str, str] | None = None,
                      timeout: float | None = None) -> HttpResponse:
        """Send one request and await its response.

        Raises :class:`FleetConnectionError` on any transport failure
        (including timeout — the connection is closed, since a response
        may still be in flight and would desynchronize the framing).
        """
        if not self.connected:
            await self.connect()
        try:
            await asyncio.wait_for(
                write_request(self._writer, method, path, body, headers),
                timeout)
            return await asyncio.wait_for(read_response(self._reader),
                                          timeout)
        except (asyncio.TimeoutError, FleetConnectionError,
                ConnectionError, OSError) as error:
            await self.close()
            if isinstance(error, asyncio.TimeoutError):
                raise FleetTimeoutError(
                    f"request {method} {path} to {self.host}:{self.port} "
                    f"timed out after {timeout}s") from error
            raise FleetConnectionError(str(error)) from error

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = None
            self._writer = None


class ConnectionPool:
    """Per-address free lists of persistent connections.

    ``request()`` checks a connection out, runs one exchange, and checks
    it back in — so concurrent dispatches to one worker reuse sockets
    without interleaving frames.  ``forget()`` drops every pooled
    connection to an address (called when a worker is evicted).
    """

    def __init__(self, max_per_address: int = 32) -> None:
        self._free: dict[tuple[str, int], list[HttpConnection]] = {}
        self._max = max_per_address

    async def request(self, host: str, port: int, method: str, path: str,
                      body: bytes = b"",
                      headers: dict[str, str] | None = None,
                      timeout: float | None = None) -> HttpResponse:
        address = (host, port)
        free = self._free.setdefault(address, [])
        connection = free.pop() if free else HttpConnection(host, port)
        try:
            response = await connection.request(method, path, body,
                                                headers, timeout)
        except BaseException:
            await connection.close()
            raise
        if connection.connected and len(free) < self._max:
            free.append(connection)
        else:
            await connection.close()
        return response

    async def forget(self, host: str, port: int) -> None:
        for connection in self._free.pop((host, port), []):
            await connection.close()

    async def close(self) -> None:
        for connections in self._free.values():
            for connection in connections:
                await connection.close()
        self._free.clear()
