"""Load generation: deterministic bursty traces + an async replay client.

The fleet's acceptance story is *serving SLOs under realistic traffic*,
and realistic traffic is neither uniform nor single-model: arrivals come
in bursts, and heavy models share the wire with light ones.  This module
provides both halves of the load test:

* :func:`bursty_trace` — a **deterministic** arrival schedule: Poisson
  arrivals at a base rate, periodically multiplied through burst
  windows, with models drawn from a weighted mix.  Seeded
  ``numpy.random.default_rng`` end to end, so two runs (or two fleet
  sizes under comparison, as in ``benchmarks/bench_fleet.py``) replay
  the *identical* request sequence;
* :func:`run_trace` — an open-loop asyncio replay: each request fires at
  its scheduled offset (late if the fleet is saturated — queueing shows
  up as latency, exactly like real overload) against the gateway's
  ``POST /v1/predict``, over pooled keep-alive connections;
* :class:`LoadReport` — per-model and overall p50/p99 latency, achieved
  throughput, and the failure count (which the CI smoke job requires to
  be zero).
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field

import numpy as np

from repro.fleet.http import (
    ConnectionPool,
    FleetConnectionError,
    FleetTimeoutError,
)


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: when, which model, which input seed.

    ``priority`` and ``deadline_ms`` ride to the gateway verbatim
    (defaults mean "no priority, no per-request deadline" — the
    pre-scheduler wire shape, so old traces replay unchanged).
    """

    at_s: float
    model: str
    request_seed: int
    priority: int = 0
    deadline_ms: float | None = None


def bursty_trace(models: list[str], num_requests: int, *,
                 base_rate_rps: float = 50.0,
                 burst_every_s: float = 2.0,
                 burst_len_s: float = 0.5,
                 burst_multiplier: float = 4.0,
                 mix: list[float] | None = None,
                 seed: int = 0) -> list[Arrival]:
    """A deterministic mixed-model arrival schedule.

    Arrivals are exponential inter-arrival times at ``base_rate_rps``,
    except inside periodic burst windows (every ``burst_every_s``, for
    ``burst_len_s``) where the instantaneous rate is multiplied by
    ``burst_multiplier`` — the on/off burst shape that stresses queueing
    far more than its average rate suggests.  ``mix`` weights the model
    draw (uniform when omitted).

    Deterministic: same arguments, same schedule, bit for bit.
    """
    if not models:
        raise ValueError("need at least one model name")
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    if base_rate_rps <= 0:
        raise ValueError("base_rate_rps must be positive")
    weights = np.full(len(models), 1.0 / len(models)) if mix is None \
        else np.asarray(mix, dtype=np.float64)
    if weights.shape != (len(models),) or (weights < 0).any() \
            or weights.sum() == 0:
        raise ValueError(f"mix must be {len(models)} non-negative weights")
    weights = weights / weights.sum()
    rng = np.random.default_rng(seed)
    arrivals: list[Arrival] = []
    now = 0.0
    for index in range(num_requests):
        in_burst = burst_every_s > 0 and \
            (now % burst_every_s) < burst_len_s
        rate = base_rate_rps * (burst_multiplier if in_burst else 1.0)
        now += float(rng.exponential(1.0 / rate))
        model = models[int(rng.choice(len(models), p=weights))]
        arrivals.append(Arrival(at_s=now, model=model,
                                request_seed=seed * 1_000_003 + index))
    return arrivals


def mixed_priority_trace(models: list[str], num_requests: int, *,
                         high_fraction: float = 0.25,
                         high_priority: int = 1,
                         tight_deadline_ms: float | None = 250.0,
                         loose_deadline_ms: float | None = None,
                         seed: int = 0,
                         **bursty_kwargs) -> list[Arrival]:
    """A bursty trace with a high-priority, tight-deadline cohort mixed in.

    Starts from :func:`bursty_trace` (same arrival times, models, and
    request seeds for the same arguments) and marks a seeded
    ``high_fraction`` of arrivals as the urgent cohort: ``priority =
    high_priority`` with ``deadline_ms = tight_deadline_ms``.  The rest
    stay priority 0 with ``loose_deadline_ms`` (``None`` = no deadline).
    This is the workload shape the EDF scheduler exists for — and the
    one ``benchmarks/bench_scheduler.py`` measures p99 on.

    Deterministic: same arguments, same schedule, bit for bit.
    """
    if not 0.0 <= high_fraction <= 1.0:
        raise ValueError(f"high_fraction must be in [0, 1], "
                         f"got {high_fraction}")
    base = bursty_trace(models, num_requests, seed=seed, **bursty_kwargs)
    # A separate stream: adding the priority draw must not perturb the
    # arrival-time/model sequence shared with the plain bursty trace.
    rng = np.random.default_rng(seed ^ 0x5EED_CAFE)
    urgent = rng.random(len(base)) < high_fraction
    return [
        Arrival(at_s=a.at_s, model=a.model, request_seed=a.request_seed,
                priority=high_priority if urgent[i] else 0,
                deadline_ms=(tight_deadline_ms if urgent[i]
                             else loose_deadline_ms))
        for i, a in enumerate(base)]


@dataclass
class LoadReport:
    """What a replay measured: latencies, throughput, failures.

    ``failed`` is the total; it splits exactly into three typed
    buckets, because "failed" hides the distinction the chaos soak
    must assert on:

    * ``timeouts`` — the client-side request timeout lapsed with *no*
      reply: the hang detector.  A resilient fleet keeps this at zero
      even under faults (it answers 5xx/429/504 instead of going
      silent);
    * ``rejections`` — the fleet answered with a non-200 status (shed,
      admission-refused, 5xx): loud, typed failure.  ``statuses``
      histograms them;
    * ``transport_errors`` — the connection dropped/reset mid-exchange.
    """

    num_requests: int
    completed: int
    failed: int
    elapsed_s: float
    timeouts: int = 0
    rejections: int = 0
    transport_errors: int = 0
    statuses: dict[int, int] = field(default_factory=dict)
    latencies_s: dict[str, list[float]] = field(default_factory=dict)
    latencies_by_priority: dict[int, list[float]] = field(
        default_factory=dict)
    failed_by_priority: dict[int, int] = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.elapsed_s if self.elapsed_s > 0 \
            else 0.0

    def priority_percentile(self, q: float, priority: int) -> float:
        """Latency percentile for one priority class (``nan`` if empty)."""
        values = self.latencies_by_priority.get(priority, [])
        if not values:
            return float("nan")
        return float(np.percentile(np.asarray(values), q))

    def percentile(self, q: float, model: str | None = None) -> float:
        """Latency percentile in seconds (pooled, or one model's).

        Linearly interpolated between order statistics (numpy's default
        ``linear`` method), so p99 of 100 samples sits between the two
        largest values instead of snapping to either.  Returns ``nan``
        when no request completed — use :meth:`to_dict` for a
        JSON-safe rendering (``nan`` is not valid JSON).
        """
        if model is None:
            values = [v for per_model in self.latencies_s.values()
                      for v in per_model]
        else:
            values = self.latencies_s.get(model, [])
        if not values:
            return float("nan")
        return float(np.percentile(np.asarray(values), q))

    def _percentile_ms(self, q: float, model: str | None = None
                       ) -> float | None:
        """Millisecond percentile for JSON: ``None`` instead of a
        non-finite value (an all-failed trace used to serialize
        ``NaN``, which ``json.dumps`` emits but no strict parser —
        including the CI dashboard — accepts)."""
        seconds = self.percentile(q, model)
        return seconds * 1e3 if np.isfinite(seconds) else None

    def to_dict(self) -> dict:
        """The JSON shape the ``BENCH_PR*.json`` records embed.

        Strictly JSON-serializable for every report, including one with
        zero completed requests (percentiles become ``null``).
        """
        per_model = {
            model: {
                "requests": len(values),
                "p50_ms": self._percentile_ms(50, model),
                "p99_ms": self._percentile_ms(99, model),
            } for model, values in sorted(self.latencies_s.items())}

        def _priority_ms(q: float, values: list[float]) -> float | None:
            ms = float(np.percentile(np.asarray(values), q)) * 1e3
            return ms if np.isfinite(ms) else None

        per_priority = {
            str(priority): {
                "completed": len(values),
                "failed": self.failed_by_priority.get(priority, 0),
                "p50_ms": _priority_ms(50, values) if values else None,
                "p99_ms": _priority_ms(99, values) if values else None,
            } for priority, values
            in sorted(self.latencies_by_priority.items())}
        for priority, failures in sorted(self.failed_by_priority.items()):
            per_priority.setdefault(str(priority), {
                "completed": 0, "failed": failures,
                "p50_ms": None, "p99_ms": None})
        return {
            "num_requests": self.num_requests,
            "completed": self.completed,
            "failed": self.failed,
            "timeouts": self.timeouts,
            "rejections": self.rejections,
            "transport_errors": self.transport_errors,
            "statuses": {str(status): count for status, count
                         in sorted(self.statuses.items())},
            "elapsed_s": self.elapsed_s,
            "throughput_rps": self.throughput_rps,
            "p50_ms": self._percentile_ms(50),
            "p99_ms": self._percentile_ms(99),
            "per_model": per_model,
            "per_priority": per_priority,
        }

    def summary(self) -> str:
        return (f"{self.completed}/{self.num_requests} ok "
                f"({self.failed} failed: {self.timeouts} timeout, "
                f"{self.rejections} rejected, "
                f"{self.transport_errors} transport) "
                f"in {self.elapsed_s:.2f}s — "
                f"{self.throughput_rps:.1f} req/s, "
                f"p50 {self.percentile(50) * 1e3:.1f} ms, "
                f"p99 {self.percentile(99) * 1e3:.1f} ms")


async def run_trace(host: str, port: int, trace: list[Arrival],
                    inputs_for, *, time_scale: float = 1.0,
                    request_timeout_s: float = 120.0,
                    max_errors_kept: int = 20,
                    deadline_ms: float | None = None,
                    on_reply=None) -> LoadReport:
    """Open-loop replay of a trace against a fleet front door.

    Args:
        host / port: the gateway address.
        trace: the arrival schedule (:func:`bursty_trace`).
        inputs_for: ``inputs_for(arrival) -> dict[str, list[float]]`` —
            the request body builder (seed it from
            ``arrival.request_seed`` for determinism).
        time_scale: multiply every scheduled offset (2.0 = half speed).
        request_timeout_s: per-request ceiling; lapses count as
            ``timeouts`` (the hang bucket).
        deadline_ms: when given, every request carries this end-to-end
            deadline; expired requests come back 504 (a *rejection*,
            not a timeout — the fleet answered).  An arrival's own
            ``deadline_ms`` takes precedence; its ``priority`` always
            rides along (see :func:`mixed_priority_trace`).
        on_reply: optional ``on_reply(arrival, response)`` called for
            every 200 reply before it is counted — the hook the chaos
            benchmark uses to compare each completed response bitwise
            against the single-engine reference.

    Every request is its own task firing at its scheduled offset —
    arrivals never wait for each other, so fleet saturation surfaces as
    queueing latency (and eventually timeouts), not a slower offered
    load.
    """
    pool = ConnectionPool()
    report = LoadReport(num_requests=len(trace), completed=0, failed=0,
                        elapsed_s=0.0)
    start = time.monotonic()

    async def fire(arrival: Arrival) -> None:
        delay = arrival.at_s * time_scale - (time.monotonic() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        payload: dict = {"model": arrival.model,
                         "inputs": inputs_for(arrival)}
        effective_deadline = (arrival.deadline_ms
                              if arrival.deadline_ms is not None
                              else deadline_ms)
        if effective_deadline is not None:
            payload["deadline_ms"] = effective_deadline
        if arrival.priority:
            payload["priority"] = arrival.priority
        body = json.dumps(payload).encode()

        def _count_failure() -> None:
            report.failed += 1
            report.failed_by_priority[arrival.priority] = \
                report.failed_by_priority.get(arrival.priority, 0) + 1

        sent = time.monotonic()
        try:
            response = await pool.request(
                host, port, "POST", "/v1/predict", body=body,
                headers={"Content-Type": "application/json"},
                timeout=request_timeout_s)
        except FleetTimeoutError as error:
            # No reply at all within the client timeout: the one
            # failure mode a resilient fleet must never produce.
            _count_failure()
            report.timeouts += 1
            if len(report.errors) < max_errors_kept:
                report.errors.append(f"{arrival.model}: {error}")
            return
        except FleetConnectionError as error:
            _count_failure()
            report.transport_errors += 1
            if len(report.errors) < max_errors_kept:
                report.errors.append(f"{arrival.model}: {error}")
            return
        latency = time.monotonic() - sent
        if response.status == 200:
            if on_reply is not None:
                on_reply(arrival, response)
            report.completed += 1
            report.latencies_s.setdefault(arrival.model, []).append(latency)
            report.latencies_by_priority.setdefault(
                arrival.priority, []).append(latency)
        else:
            _count_failure()
            report.rejections += 1
            report.statuses[response.status] = \
                report.statuses.get(response.status, 0) + 1
            if len(report.errors) < max_errors_kept:
                report.errors.append(
                    f"{arrival.model}: {response.status} "
                    f"{response.body[:120]!r}")

    try:
        await asyncio.gather(*(fire(arrival) for arrival in trace))
    finally:
        await pool.close()
    report.elapsed_s = time.monotonic() - start
    return report


def default_inputs_builder(input_layouts: dict[str, dict[str, int]]):
    """A deterministic request builder over known input layouts.

    ``input_layouts`` maps model name -> {input name: length}.  Returns
    a callable for :func:`run_trace` that draws each request's vectors
    from ``default_rng(arrival.request_seed)`` in sorted input order —
    so the same trace produces the same request bodies everywhere (the
    property the bitwise fleet-vs-engine comparisons rely on).
    """
    def inputs_for(arrival: Arrival) -> dict[str, list[float]]:
        layout = input_layouts[arrival.model]
        rng = np.random.default_rng(arrival.request_seed)
        return {name: rng.uniform(-1.0, 1.0, size=length).tolist()
                for name, length in sorted(layout.items())}
    return inputs_for
