"""Worker lifecycle: spawn, readiness, eviction, respawn, autoscaling.

The manager owns the boring-but-critical half of a fleet — processes:

* **Spawn** — workers start via the multiprocessing ``spawn`` method
  (never ``fork``: a forked worker inherits the parent's warm
  compile/state/tape caches copy-on-write, which would silently defeat
  the networked warm-start path and its tests).  The child binds port 0
  and reports its OS-assigned port back over a pipe.
* **Readiness** — a worker is not *ready* until its ``/healthz`` answers
  over real HTTP; the manager polls with a deadline so a wedged child
  becomes a spawn failure, not a hung fleet.
* **Eviction & respawn** — the gateway's health loop calls
  :meth:`evict` after consecutive probe failures; the process is
  terminated (then killed) and a replacement with a fresh id is spawned,
  warm-starting its models off the networked store.
* **Autoscaling** — :func:`autoscale_decision` is a pure function of
  observed queue pressure, so the policy is unit-testable without
  processes: scale up when the backlog per replica crosses the high
  watermark, down below the low watermark, with hysteresis coming from
  the gap between the two.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing as mp
import time
from dataclasses import dataclass, field

from repro.fleet.http import FleetConnectionError, HttpConnection
from repro.fleet.resilience import FaultPlan
from repro.fleet.worker import run_worker, worker_bootstrap

READY_TIMEOUT_S = 60.0
HEALTH_TIMEOUT_S = 5.0


class WorkerSpawnError(RuntimeError):
    """A worker process failed to start or report readiness in time."""


@dataclass
class WorkerHandle:
    """One live worker process as the gateway sees it."""

    worker_id: str
    process: mp.process.BaseProcess
    host: str
    port: int
    index: int = 0                    # spawn order; fault plans target it
    healthy: bool = True
    consecutive_failures: int = 0
    hosted: set[str] = field(default_factory=set)   # route keys loaded

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


async def probe_health(handle: WorkerHandle,
                       timeout: float = HEALTH_TIMEOUT_S) -> bool:
    """One ``/healthz`` round-trip; ``False`` on any failure."""
    connection = HttpConnection(handle.host, handle.port)
    try:
        response = await connection.request("GET", "/healthz",
                                            timeout=timeout)
        return response.status == 200 and bool(response.json().get("ok"))
    except (FleetConnectionError, ValueError):
        return False
    finally:
        await connection.close()


class WorkerManager:
    """Spawns and reaps fleet worker processes.

    Args:
        work_dir: per-fleet scratch root; each worker gets a
            subdirectory for its unpacked/saved artifacts.
        store_address: the gateway's artifact plane, passed to workers.
        max_batch_size / batch_window_s: per-model server tuning,
            uniform across the fleet.
        max_queue_depth: per-model admission bound, uniform across the
            fleet (``None`` = unbounded).
        fault_plan: chaos schedule; each spawned worker receives the
            plan's events targeting its spawn index
            (:meth:`FaultPlan.for_worker`) and arms them at startup.
    """

    def __init__(self, work_dir: str, *,
                 store_address: tuple[str, int] | None = None,
                 max_batch_size: int = 16,
                 batch_window_s: float = 0.002,
                 host: str = "127.0.0.1",
                 max_queue_depth: int | None = None,
                 scheduler_policy: str = "edf",
                 fault_plan: FaultPlan | None = None) -> None:
        self.work_dir = work_dir
        self.store_address = store_address
        self.max_batch_size = max_batch_size
        self.batch_window_s = batch_window_s
        self.host = host
        self.max_queue_depth = max_queue_depth
        self.scheduler_policy = scheduler_policy
        self.fault_plan = fault_plan
        self.workers: dict[str, WorkerHandle] = {}
        self._ids = itertools.count()
        self._context = mp.get_context("spawn")

    async def spawn(self, ready_timeout: float = READY_TIMEOUT_S
                    ) -> WorkerHandle:
        """Start one worker and wait until it serves ``/healthz``."""
        index = next(self._ids)
        worker_id = f"w{index}"
        fault_events = (self.fault_plan.for_worker(index)
                        if self.fault_plan is not None else ())
        chaos_seed = (self.fault_plan.seed
                      if self.fault_plan is not None else 0)
        bootstrap = worker_bootstrap(
            worker_id, f"{self.work_dir}/{worker_id}",
            store_address=self.store_address,
            max_batch_size=self.max_batch_size,
            batch_window_s=self.batch_window_s, host=self.host,
            max_queue_depth=self.max_queue_depth,
            scheduler_policy=self.scheduler_policy,
            fault_events=fault_events, chaos_seed=chaos_seed)
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=run_worker, args=(bootstrap, child_conn),
            name=f"fleet-{worker_id}", daemon=True)
        process.start()
        child_conn.close()
        deadline = time.monotonic() + ready_timeout
        try:
            hello = await asyncio.to_thread(
                _recv_with_deadline, parent_conn, process, deadline)
        except WorkerSpawnError:
            _terminate(process)
            raise
        finally:
            parent_conn.close()
        handle = WorkerHandle(worker_id=worker_id, process=process,
                              host=self.host, port=int(hello["port"]),
                              index=index)
        while not await probe_health(handle):
            if time.monotonic() > deadline or not process.is_alive():
                _terminate(process)
                raise WorkerSpawnError(
                    f"{worker_id} (pid {process.pid}) reported port "
                    f"{handle.port} but never became healthy")
            await asyncio.sleep(0.05)
        self.workers[worker_id] = handle
        return handle

    async def spawn_many(self, count: int) -> list[WorkerHandle]:
        return [await self.spawn() for _ in range(count)]

    def evict(self, worker_id: str) -> WorkerHandle | None:
        """Forget and terminate one worker (health loop, shutdown)."""
        handle = self.workers.pop(worker_id, None)
        if handle is not None:
            _terminate(handle.process)
        return handle

    async def shutdown_worker(self, handle: WorkerHandle, *,
                              drain: bool = True,
                              timeout: float = 30.0) -> bool:
        """Graceful stop: ``/v1/shutdown`` then join; terminate on lapse."""
        connection = HttpConnection(handle.host, handle.port)
        try:
            await connection.request(
                "POST", "/v1/shutdown",
                body=b'{"drain": %s}' % (b"true" if drain else b"false"),
                headers={"Content-Type": "application/json"},
                timeout=HEALTH_TIMEOUT_S)
        except FleetConnectionError:
            pass                      # already dead is fine for shutdown
        finally:
            await connection.close()
        deadline = time.monotonic() + timeout
        while handle.process.is_alive():
            if time.monotonic() > deadline:
                _terminate(handle.process)
                return False
            await asyncio.sleep(0.02)
        self.workers.pop(handle.worker_id, None)
        return True

    async def close(self, *, drain: bool = True) -> None:
        for handle in list(self.workers.values()):
            await self.shutdown_worker(handle, drain=drain)
        for handle in list(self.workers.values()):
            _terminate(handle.process)
        self.workers.clear()


def _recv_with_deadline(conn, process, deadline: float) -> dict:
    """Blocking pipe read with a deadline (runs in a thread)."""
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise WorkerSpawnError(
                f"worker pid {process.pid} did not report its port within "
                f"the readiness deadline")
        if conn.poll(min(remaining, 0.1)):
            try:
                return conn.recv()
            except (EOFError, OSError) as error:
                raise WorkerSpawnError(
                    f"worker pid {process.pid} died before reporting its "
                    f"port: {error}") from error
        if not process.is_alive():
            raise WorkerSpawnError(
                f"worker pid {process.pid} exited with code "
                f"{process.exitcode} before reporting its port")


def _terminate(process) -> None:
    if process.is_alive():
        process.terminate()
        process.join(timeout=5.0)
    if process.is_alive():           # pragma: no cover - last resort
        process.kill()
        process.join(timeout=5.0)


def autoscale_decision(queue_depth: int, replicas: int, *,
                       min_replicas: int = 1, max_replicas: int = 4,
                       high_watermark: float = 8.0,
                       low_watermark: float = 1.0) -> int:
    """How many replicas to add (+1), shed (-1), or keep (0).

    Pure policy over observed state: ``queue_depth`` is the model's
    waiting requests, ``replicas`` its current replica count.  The
    watermarks are *per replica*: scale up when the backlog per replica
    exceeds ``high_watermark`` (queueing is growing faster than the
    replicas drain it), down when it falls below ``low_watermark`` (the
    marginal replica is idle).  The gap between watermarks provides the
    hysteresis that stops flapping on bursty arrivals; the caller adds
    time-based damping (cooldown between applications).

    >>> autoscale_decision(40, 2)
    1
    >>> autoscale_decision(1, 3)
    -1
    >>> autoscale_decision(6, 2)
    0
    """
    if replicas < 1:
        return 1 if min_replicas >= 1 else 0
    if low_watermark >= high_watermark:
        raise ValueError("low_watermark must be below high_watermark")
    per_replica = queue_depth / replicas
    if per_replica > high_watermark and replicas < max_replicas:
        return 1
    if per_replica < low_watermark and replicas > min_replicas:
        return -1
    return 0
