"""Wire-serializable model specs: what a fleet deploys and routes on.

A fleet is a *distributed* system: the gateway decides placement, worker
processes build engines, and cold workers fetch warm artifacts over the
network — three parties that must agree on *which model* they are
talking about without shipping numpy arrays around.
:class:`FleetModelSpec` is that agreement: a small, JSON-round-trippable
value (builder kind + parameters + engine seed + crossbar model) from
which any process can deterministically rebuild the exact same
:class:`~repro.engine.InferenceEngine` — same weights (seeded builders),
same compilation, same programmed crossbars.

:func:`route_key` collapses a spec (plus the fleet-wide
:class:`~repro.config.PumaConfig`) into one stable digest.  That single
key is used three ways, which is the point — agreeing parties:

* the gateway's consistent-hash **placement** key (replicas of one model
  land on the same workers and share warm artifacts);
* the per-model **queue** identity (heavy CNN traffic waits in its own
  queue, not in front of MLP requests);
* the networked artifact store's **blob name** (a cold worker GETs the
  blob for its route key and warm-starts bitwise-identically).

Supported kinds mirror the paper's workload classes: ``mlp``, ``lstm``,
``rnn`` (seeded builders from :mod:`repro.workloads`), ``cnn_small``
(the compilable conv/pool/dense stack), and ``graph`` (an embedded
importer description, so user models deploy the same way).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.store import fingerprint_digest, fingerprint_value

MODEL_KINDS = ("mlp", "lstm", "rnn", "cnn_small", "graph")


class FleetModelError(ValueError):
    """A model spec is malformed or names an unknown builder kind."""


@dataclass(frozen=True)
class FleetModelSpec:
    """One deployable model, as a value any fleet process can rebuild.

    Attributes:
        name: the client-facing model name (unique within a fleet).
        kind: builder kind, one of :data:`MODEL_KINDS`.
        params: builder parameters (JSON-representable; e.g.
            ``{"dims": [32, 24, 10]}`` for an MLP, or
            ``{"graph": {...}}`` embedding an importer description).
        seed: engine seed — fixes weight init (for seeded builders),
            crossbar programming, and therefore the exact output bits.
        crossbar: optional :class:`~repro.arch.crossbar.CrossbarModel`
            keyword overrides (e.g. ``{"write_noise_sigma": 0.05}``);
            ``None`` derives the ideal model from the configuration.

    Example::

        spec = FleetModelSpec("mlp-small", "mlp", {"dims": [32, 24, 10]})
        spec == FleetModelSpec.from_dict(spec.to_dict())   # wire round-trip
    """

    name: str
    kind: str
    params: dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    crossbar: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.kind not in MODEL_KINDS:
            raise FleetModelError(
                f"unknown model kind {self.kind!r}; expected one of "
                f"{MODEL_KINDS}")
        if not self.name:
            raise FleetModelError("model name must be non-empty")

    def to_dict(self) -> dict[str, Any]:
        """The JSON-representable wire form (``from_dict`` inverts it)."""
        return {"name": self.name, "kind": self.kind,
                "params": dict(self.params), "seed": self.seed,
                "crossbar": dict(self.crossbar)
                if self.crossbar is not None else None}

    @classmethod
    def from_dict(cls, data: Any) -> "FleetModelSpec":
        if not isinstance(data, dict):
            raise FleetModelError(f"model spec must be an object, "
                                  f"got {type(data).__name__}")
        try:
            return cls(name=data["name"], kind=data["kind"],
                       params=dict(data.get("params") or {}),
                       seed=int(data.get("seed", 0)),
                       crossbar=dict(data["crossbar"])
                       if data.get("crossbar") else None)
        except (KeyError, TypeError, ValueError) as error:
            raise FleetModelError(f"malformed model spec: {error}") from error

    def crossbar_model(self):
        """The :class:`CrossbarModel` this spec's engines program with."""
        if self.crossbar is None:
            return None
        from repro.arch.crossbar import CrossbarModel

        try:
            return CrossbarModel(**self.crossbar)
        except (TypeError, ValueError) as error:
            raise FleetModelError(
                f"{self.name}: bad crossbar parameters: {error}") from error


def route_key(spec: FleetModelSpec, config: Any = None) -> str:
    """The fleet-wide identity digest of (spec, config).

    Value-based and process-independent (built on the artifact store's
    :func:`~repro.store.fingerprint_digest`), so the gateway, every
    worker, and the networked store all derive the same key without
    building the model.  Any change that changes the served bits —
    weights seed, builder params, crossbar noise, core config — changes
    the key, so stale placements or blobs can never alias.
    """
    if config is None:
        from repro import default_config

        config = default_config()
    return fingerprint_digest((
        "fleet-route", spec.name, spec.kind,
        fingerprint_value(spec.params), spec.seed,
        fingerprint_value(spec.crossbar),
        fingerprint_value(config)))


def build_engine(spec: FleetModelSpec, config: Any = None, *,
                 execution_mode: str = "auto",
                 artifact_dir: str | None = None):
    """Deterministically build the engine a spec describes.

    The same spec + config yields bitwise-identical engines in any
    process — the property every fleet guarantee (retry on another
    replica, warm-start from the network) rests on.
    """
    from repro import default_config
    from repro.engine import InferenceEngine

    if config is None:
        config = default_config()
    crossbar = spec.crossbar_model()
    kw = dict(crossbar_model=crossbar, seed=spec.seed,
              execution_mode=execution_mode, artifact_dir=artifact_dir)
    try:
        if spec.kind == "mlp":
            from repro.workloads import build_mlp_model

            model = build_mlp_model(list(spec.params["dims"]),
                                    name=spec.name,
                                    activation=spec.params.get(
                                        "activation", "sigmoid"),
                                    seed=spec.seed)
        elif spec.kind == "lstm":
            from repro.workloads import build_lstm_model

            model = build_lstm_model(
                int(spec.params["input_size"]),
                int(spec.params["hidden_size"]),
                int(spec.params["output_size"]),
                seq_len=int(spec.params.get("seq_len", 2)),
                name=spec.name, seed=spec.seed)
        elif spec.kind == "rnn":
            from repro.workloads import build_rnn_model

            model = build_rnn_model(
                int(spec.params["input_size"]),
                int(spec.params["hidden_size"]),
                int(spec.params["output_size"]),
                seq_len=int(spec.params.get("seq_len", 2)),
                name=spec.name, seed=spec.seed)
        elif spec.kind == "graph":
            from repro.compiler.importer import import_graph

            model = import_graph(spec.params["graph"])
        else:  # cnn_small — pre-compiled, no frontend model
            from repro.compiler.cnn import compile_cnn
            from repro.workloads.cnn import small_cnn_spec

            compiled = compile_cnn(small_cnn_spec(seed=spec.seed), config)
            return InferenceEngine.from_compiled(compiled, config, **kw)
    except KeyError as error:
        raise FleetModelError(
            f"{spec.name}: spec kind {spec.kind!r} is missing required "
            f"parameter {error.args[0]!r}") from error
    return InferenceEngine(model, config, **kw)
