"""Networked artifact store: warm starts as GET/PUT of verified blobs.

:mod:`repro.store` made *pay once, serve many* work across processes on
one machine; this module extends it across the network, the PR 5
follow-up the roadmap names.  The unit of exchange is a **blob**: one
artifact directory (``manifest.json`` + ``payload.pkl.gz`` +
``programmed_state.npz``) packed into a single deterministic tar,
addressed by the model's route key and accompanied everywhere by its
SHA-256.

Protocol (over the fleet's HTTP plane, served by the gateway):

* ``GET /v1/artifacts/{route_key}`` — 200 with the tar bytes and an
  ``X-Artifact-SHA256`` header (the digest recorded *at PUT time*, not
  recomputed from disk — so on-disk corruption is detectable end to
  end), or 404 when no blob exists for the key.
* ``PUT /v1/artifacts/{route_key}`` — body is the tar,
  ``X-Artifact-SHA256`` its digest.  The receiver re-hashes the body
  and answers 400 on mismatch; on success the blob + digest sidecar
  land atomically under the gateway's store directory.

**Trust policy — verify, then verify again.**  A worker that pulls a
blob (1) re-hashes the bytes against the transported digest, (2)
refuses tar members with unsafe names, and (3) hands the unpacked
directory to :func:`repro.store.load_artifact`, which re-verifies the
manifest's own integrity hashes and fingerprint digests.  Any failure
raises :class:`NetworkArtifactError` and the worker falls back to a
cold compile — exactly the local store's *never a wrong answer, only a
slower start* policy, now with a network in the middle.  (Like the
local store, blobs are trusted caches within one deployment, not an
interchange format: the payload is pickle.)
"""

from __future__ import annotations

import hashlib
import io
import os
import tarfile
import tempfile
from pathlib import Path

from repro.store import MANIFEST_NAME

# Only these files may travel in an artifact blob (tar is a container
# format with room for mischief; allow exactly the artifact's contents).
_MEMBER_NAMES = (MANIFEST_NAME, "payload.pkl.gz", "programmed_state.npz")
BLOB_SUFFIX = ".tar"
DIGEST_SUFFIX = ".sha256"
SHA_HEADER = "X-Artifact-SHA256"


class NetworkArtifactError(RuntimeError):
    """A networked artifact failed verification or unpacking.

    The network-transport analogue of :class:`repro.store.ArtifactError`:
    raised for digest mismatches, malformed tars, unsafe member names,
    or missing artifact files.  Receivers treat it as a cache miss.
    """


def blob_digest(data: bytes) -> str:
    """The SHA-256 hex digest that accompanies a blob everywhere."""
    return hashlib.sha256(data).hexdigest()


def pack_artifact_dir(path: str | Path) -> bytes:
    """Pack one artifact directory into a deterministic tar blob.

    Deterministic means byte-stable for identical file contents: fixed
    member order, zeroed timestamps/ownership, no compression (the
    payload inside is already gzipped).  Two workers that built the same
    artifact produce the same blob — so concurrent PUTs for one route
    key are idempotent.
    """
    root = Path(path)
    if not (root / MANIFEST_NAME).is_file():
        raise NetworkArtifactError(
            f"{root}: not an artifact directory (no {MANIFEST_NAME})")
    buffer = io.BytesIO()
    with tarfile.open(fileobj=buffer, mode="w") as tar:
        for name in _MEMBER_NAMES:
            member_path = root / name
            if not member_path.is_file():
                raise NetworkArtifactError(
                    f"{root}: artifact file {name} is missing")
            info = tarfile.TarInfo(name=name)
            info.size = member_path.stat().st_size
            info.mtime = 0
            info.uid = info.gid = 0
            info.uname = info.gname = ""
            info.mode = 0o644
            with open(member_path, "rb") as handle:
                tar.addfile(info, handle)
    return buffer.getvalue()


def unpack_artifact_blob(data: bytes, dest: str | Path,
                         expected_sha256: str | None = None) -> Path:
    """Verify and unpack a blob into ``dest`` (the artifact directory).

    Args:
        data: the tar bytes as received.
        dest: target directory; written atomically (a temporary sibling
            renamed into place), so a crashed unpack never leaves a
            half-artifact for :func:`~repro.store.load_artifact` to
            trip over.
        expected_sha256: the transported digest; verified against the
            actual bytes before anything is unpacked.

    Raises:
        NetworkArtifactError: digest mismatch, malformed tar, unexpected
            or unsafe member names, or missing artifact files.
    """
    if expected_sha256 is not None:
        actual = blob_digest(data)
        if actual != expected_sha256:
            raise NetworkArtifactError(
                f"artifact blob fails its integrity hash (got {actual[:16]}…, "
                f"expected {expected_sha256[:16]}…)")
    target = Path(dest)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = Path(tempfile.mkdtemp(prefix=".netstore-", dir=target.parent))
    try:
        try:
            with tarfile.open(fileobj=io.BytesIO(data), mode="r") as tar:
                members = tar.getmembers()
                names = [m.name for m in members]
                if sorted(names) != sorted(_MEMBER_NAMES):
                    raise NetworkArtifactError(
                        f"artifact blob holds unexpected members {names!r} "
                        f"(expected exactly {list(_MEMBER_NAMES)})")
                for member in members:
                    if not member.isfile():
                        raise NetworkArtifactError(
                            f"artifact member {member.name!r} is not a "
                            f"regular file")
                    with tar.extractfile(member) as source, \
                            open(tmp / member.name, "wb") as sink:
                        sink.write(source.read())
        except tarfile.TarError as error:
            raise NetworkArtifactError(
                f"malformed artifact blob: {error}") from error
        if target.exists():
            import shutil

            shutil.rmtree(target, ignore_errors=True)
        os.replace(tmp, target)
    except BaseException:
        import shutil

        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return target


class BlobStore:
    """The gateway's on-disk blob shelf: route key -> (tar, digest).

    Each blob is two files under ``root``: ``{key}.tar`` (the bytes) and
    ``{key}.sha256`` (the digest recorded when the blob was accepted).
    The sidecar is the source of truth for :meth:`get`'s digest — serving
    the digest of whatever is on disk would mask disk corruption, which
    the fleet's failure-path tests deliberately exercise.

    ``max_bytes`` turns the shelf into a size-capped LRU (the PR 7
    follow-up: without it the artifact plane only grows).  ``get``
    refreshes recency; ``put`` evicts least-recently-used blobs —
    digest sidecar together with its tar, so no key is ever left
    half-present — until the new blob fits.  Eviction only loses a
    *cache*: a worker whose warm pull 404s falls back to a cold build.
    All access happens on the gateway's single event loop, so a GET
    that is in flight when its key is evicted already holds the bytes —
    eviction can never hand a reader half a blob.
    """

    def __init__(self, root: str | Path,
                 max_bytes: int | None = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.evictions = 0
        # Recency order, oldest first.  Rebuilt from mtimes so a
        # restarted gateway inherits a sensible order from disk.
        self._recency: list[str] = [
            p.name[:-len(BLOB_SUFFIX)] for p in sorted(
                self.root.glob(f"*{BLOB_SUFFIX}"),
                key=lambda p: (p.stat().st_mtime, p.name))]

    def _touch(self, key: str) -> None:
        try:
            self._recency.remove(key)
        except ValueError:
            pass
        self._recency.append(key)

    def total_bytes(self) -> int:
        """Bytes currently held (tars only; sidecars are ~64 B noise)."""
        return sum(p.stat().st_size
                   for p in self.root.glob(f"*{BLOB_SUFFIX}"))

    def _evict_until_fits(self, incoming: int, keep: str) -> None:
        if self.max_bytes is None:
            return
        used = self.total_bytes()
        while used + incoming > self.max_bytes and self._recency:
            victim = next((k for k in self._recency if k != keep), None)
            if victim is None:
                break                # only the incoming key remains
            self._recency.remove(victim)
            blob_path, digest_path = self._paths(victim)
            try:
                size = blob_path.stat().st_size
            except OSError:
                size = 0
            # Blob first, then sidecar: a crash between the two leaves
            # a sidecar-only key, which has() and get() treat as absent.
            blob_path.unlink(missing_ok=True)
            digest_path.unlink(missing_ok=True)
            self.evictions += 1
            used -= size

    def _paths(self, key: str) -> tuple[Path, Path]:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise NetworkArtifactError(
                f"invalid artifact key {key!r} (route keys are lowercase "
                f"hex digests)")
        return (self.root / f"{key}{BLOB_SUFFIX}",
                self.root / f"{key}{DIGEST_SUFFIX}")

    def has(self, key: str) -> bool:
        blob_path, digest_path = self._paths(key)
        return blob_path.is_file() and digest_path.is_file()

    def put(self, key: str, data: bytes, expected_sha256: str) -> str:
        """Accept a blob after re-hashing it; returns the digest."""
        actual = blob_digest(data)
        if actual != expected_sha256:
            raise NetworkArtifactError(
                f"refusing artifact {key[:16]}…: body hash {actual[:16]}… "
                f"does not match declared {expected_sha256[:16]}…")
        blob_path, digest_path = self._paths(key)
        self._evict_until_fits(len(data), keep=key)
        tmp = blob_path.with_name(blob_path.name + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, blob_path)
        tmp = digest_path.with_name(digest_path.name + ".tmp")
        tmp.write_text(actual)
        os.replace(tmp, digest_path)
        self._touch(key)
        return actual

    def get(self, key: str) -> tuple[bytes, str] | None:
        """The blob bytes + their *recorded* digest, or ``None``.

        Deliberately does **not** re-verify here: the recorded digest
        travels with the bytes so the *receiver* catches corruption —
        whether it happened on this disk or on the wire.
        """
        blob_path, digest_path = self._paths(key)
        if not blob_path.is_file() or not digest_path.is_file():
            return None
        data = blob_path.read_bytes()
        digest = digest_path.read_text().strip()
        self._touch(key)
        return data, digest

    def keys(self) -> list[str]:
        return sorted(p.name[:-len(BLOB_SUFFIX)]
                      for p in self.root.glob(f"*{BLOB_SUFFIX}"))
