"""Fleet resilience primitives: chaos injection, breakers, backoff.

PR 7 gave the fleet a health loop that survives the failures the tests
hand-script; real deployments degrade *continuously* — memristor nodes
drift, links flap, replicas stall.  This module is the software
analogue of designing for that steady state, in two halves:

* the **deterministic fault-injection harness** — a :class:`FaultPlan`
  is a seeded schedule of :class:`FaultEvent` windows (connection
  drops, response delays, 5xx/garbage bodies, worker hang, worker
  crash, slow replica, blob corruption-on-read).  Workers and the
  gateway honor an armed plan through a :class:`FaultInjector`, so a
  test or the chaos benchmark can *prove* behavior under failure
  instead of hoping;
* the **resilience policies** the harness validates —
  :class:`CircuitBreaker` (consecutive-failure threshold opens, a
  half-open probe closes) and :func:`backoff_delay` (capped
  exponential backoff with *deterministic* jitter, so retry storms are
  bounded and tests replay bit-for-bit).

Everything here is seeded and clock-injectable: two runs of the same
plan fire the same faults, and a unit test can drive windows with a
fake clock.  The invariant the chaos benchmark
(``benchmarks/bench_chaos.py``) asserts on top: under *any* injected
fault, every completed response stays bitwise identical to the
single-engine reference, and every non-completed request fails loudly
with a typed status — zero wrong answers, zero hangs.
"""

from __future__ import annotations

import asyncio
import hashlib
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

#: The seven fault kinds the harness injects (``docs/fleet.md`` has the
#: taxonomy table).  ``error`` covers both clean 5xx replies and
#: garbage bodies (``garbage=True``).
FAULT_KINDS = ("drop", "delay", "error", "hang", "crash", "slow",
               "corrupt_blob")

#: Kinds a worker process honors (everything request/process-level).
WORKER_FAULT_KINDS = ("drop", "delay", "error", "hang", "crash", "slow")

#: Kinds the gateway honors (the artifact plane).
GATEWAY_FAULT_KINDS = ("corrupt_blob",)

# The chaos control plane and graceful shutdown must stay reachable
# even on a fully faulted worker, or tests could not disarm anything.
_PROTECTED_PATHS = ("/v1/chaos", "/v1/shutdown")


class FaultPlanError(ValueError):
    """A fault plan or fault event is malformed."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault window.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        at_s: window start, in seconds after the plan is armed.
        duration_s: window length; ``0`` means the window stays open
            until its ``count`` is exhausted (or forever).
        worker: spawn-order worker index the fault targets; ``None``
            targets every worker (ignored for ``corrupt_blob``, which
            is gateway-side).
        path: only fault requests on this exact path (``None`` = any
            path except the chaos/shutdown control endpoints).
        delay_s: added response latency for ``delay`` / ``slow``.
        garbage: for ``error``: answer 200 with a garbage (non-JSON)
            body instead of a clean 500.
        count: at most this many requests are faulted (``None`` =
            every matching request inside the window).
    """

    kind: str
    at_s: float = 0.0
    duration_s: float = 0.0
    worker: int | None = None
    path: str | None = None
    delay_s: float = 0.0
    garbage: bool = False
    count: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}")
        if self.at_s < 0 or self.duration_s < 0 or self.delay_s < 0:
            raise FaultPlanError(
                f"{self.kind}: at_s/duration_s/delay_s must be >= 0")
        if self.count is not None and self.count < 1:
            raise FaultPlanError(
                f"{self.kind}: count must be >= 1 when given, "
                f"got {self.count}")
        if self.kind in ("delay", "slow") and self.delay_s <= 0:
            raise FaultPlanError(
                f"{self.kind}: needs a positive delay_s")
        if self.kind == "hang" and self.duration_s <= 0:
            raise FaultPlanError("hang: needs a positive duration_s "
                                 "(how long health goes unanswered)")

    def to_dict(self) -> dict[str, Any]:
        """The JSON wire form (:meth:`from_dict` inverts it)."""
        return {"kind": self.kind, "at_s": self.at_s,
                "duration_s": self.duration_s, "worker": self.worker,
                "path": self.path, "delay_s": self.delay_s,
                "garbage": self.garbage, "count": self.count}

    @classmethod
    def from_dict(cls, data: Any) -> "FaultEvent":
        if not isinstance(data, dict) or "kind" not in data:
            raise FaultPlanError(
                f"fault event must be an object with a 'kind', "
                f"got {data!r}")
        try:
            return cls(
                kind=data["kind"],
                at_s=float(data.get("at_s", 0.0)),
                duration_s=float(data.get("duration_s", 0.0)),
                worker=(None if data.get("worker") is None
                        else int(data["worker"])),
                path=data.get("path"),
                delay_s=float(data.get("delay_s", 0.0)),
                garbage=bool(data.get("garbage", False)),
                count=(None if data.get("count") is None
                       else int(data["count"])))
        except (TypeError, ValueError) as error:
            if isinstance(error, FaultPlanError):
                raise
            raise FaultPlanError(
                f"malformed fault event {data!r}: {error}") from error


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of fault events — the chaos harness's input.

    The plan is a *value*: JSON round-trippable (``to_dict`` /
    ``from_dict``, ``save`` / ``load`` for the ``--chaos PLAN.json``
    CLI flag) and deterministic — the ``seed`` fixes every derived
    random choice (which byte a ``corrupt_blob`` flips, the sampled
    offsets of :meth:`sample`), so two runs of one plan inject the
    identical fault sequence.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def to_dict(self) -> dict[str, Any]:
        return {"seed": self.seed,
                "events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: Any) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError(
                f"fault plan must be an object, got {type(data).__name__}")
        events = data.get("events", [])
        if not isinstance(events, list):
            raise FaultPlanError("fault plan 'events' must be a list")
        try:
            seed = int(data.get("seed", 0))
        except (TypeError, ValueError) as error:
            raise FaultPlanError(
                f"fault plan seed must be an int: {error}") from error
        return cls(events=tuple(FaultEvent.from_dict(e) for e in events),
                   seed=seed)

    def save(self, path: str | Path) -> Path:
        import json

        target = Path(path)
        target.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return target

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        import json

        try:
            with open(path, encoding="utf-8") as handle:
                return cls.from_dict(json.load(handle))
        except (OSError, ValueError) as error:
            if isinstance(error, FaultPlanError):
                raise
            raise FaultPlanError(f"{path}: {error}") from error

    def for_worker(self, index: int) -> tuple[FaultEvent, ...]:
        """The worker-side events targeting spawn-order ``index``."""
        return tuple(event for event in self.events
                     if event.kind in WORKER_FAULT_KINDS
                     and event.worker in (None, index))

    def gateway_events(self) -> tuple[FaultEvent, ...]:
        """The gateway-side events (the artifact plane's faults)."""
        return tuple(event for event in self.events
                     if event.kind in GATEWAY_FAULT_KINDS)

    @classmethod
    def sample(cls, seed: int = 0, *, workers: int = 2,
               start_s: float = 0.0, window_s: float = 2.0,
               delay_s: float = 0.1) -> "FaultPlan":
        """A seeded plan touching all seven fault kinds.

        Offsets are drawn deterministically from ``seed`` inside
        ``[start_s, start_s + window_s)``; faults are spread round-robin
        over ``workers`` so no single worker absorbs everything.  The
        crash targets the last worker index (its replacement gets a
        fresh index the plan never mentions, so recovery is clean).
        """
        if workers < 1:
            raise FaultPlanError(f"workers must be >= 1, got {workers}")

        def offset(token: str) -> float:
            digest = hashlib.sha256(
                f"faultplan:{seed}:{token}".encode()).digest()
            frac = int.from_bytes(digest[:8], "big") / 2.0 ** 64
            return start_s + frac * window_s

        span = max(window_s / 2.0, 0.1)
        events = [
            FaultEvent("drop", at_s=offset("drop"), duration_s=span,
                       worker=0 % workers, count=2),
            FaultEvent("delay", at_s=offset("delay"), duration_s=span,
                       worker=1 % workers, delay_s=delay_s, count=3),
            FaultEvent("error", at_s=offset("5xx"), duration_s=span,
                       worker=0 % workers, count=2),
            FaultEvent("error", at_s=offset("garbage"), duration_s=span,
                       worker=1 % workers, garbage=True, count=2),
            FaultEvent("slow", at_s=start_s, duration_s=window_s,
                       worker=0 % workers, delay_s=delay_s / 2.0),
            FaultEvent("hang", at_s=offset("hang"), duration_s=span,
                       worker=1 % workers),
            FaultEvent("crash", at_s=offset("crash"),
                       worker=workers - 1),
            FaultEvent("corrupt_blob", at_s=start_s,
                       duration_s=window_s * 4.0, count=1),
        ]
        return cls(events=tuple(events), seed=seed)


@dataclass
class FaultDecision:
    """What the injector wants done to one request, right now."""

    sleep_s: float = 0.0
    drop: bool = False
    error: bool = False
    garbage: bool = False

    @property
    def faulted(self) -> bool:
        return bool(self.sleep_s or self.drop or self.error)


class _Armed:
    """One armed event: absolute window + remaining fire budget."""

    __slots__ = ("event", "start", "end", "remaining")

    def __init__(self, event: FaultEvent, start: float) -> None:
        self.event = event
        self.start = start
        # duration 0 = open-ended: bounded by count, or deliberate.
        self.end = (start + event.duration_s if event.duration_s > 0
                    else float("inf"))
        self.remaining = event.count        # None = unlimited

    def active(self, now: float) -> bool:
        if self.remaining is not None and self.remaining <= 0:
            return False
        return self.start <= now < self.end


class FaultInjector:
    """Executes an armed fault schedule against live traffic.

    One injector lives in each worker process (wrapping its HTTP
    handler) and one in the gateway (wrapping the artifact plane).
    Deterministic and test-friendly: the clock is injectable, crash
    behavior is a replaceable callable, and :meth:`ledger` reports
    exactly which faults fired how often.

    Args:
        seed: drives derived randomness (corruption byte positions).
        clock: monotonic time source (fake-able in unit tests).
        on_crash: what a ``crash`` event does (default: hard
            ``os._exit(1)``, the honest simulation of a dying process).
    """

    def __init__(self, *, seed: int = 0,
                 clock: Callable[[], float] = time.monotonic,
                 on_crash: Callable[[], None] | None = None) -> None:
        self.seed = seed
        self.clock = clock
        self.on_crash = on_crash or (lambda: os._exit(1))
        self._armed: list[_Armed] = []
        self._crash_tasks: list[asyncio.Task] = []
        self.fired: dict[str, int] = {}

    # -- arming --------------------------------------------------------------

    def arm(self, events, *, now: float | None = None) -> int:
        """Arm ``events`` with windows relative to ``now`` (default:
        the clock's current reading).  Crash events get a timer task
        when an event loop is running; otherwise :meth:`crash_due`
        lets a synchronous caller poll.  Returns how many events were
        armed."""
        t0 = self.clock() if now is None else now
        count = 0
        for event in events:
            armed = _Armed(event, t0 + event.at_s)
            self._armed.append(armed)
            count += 1
            if event.kind == "crash":
                self._spawn_crash_timer(armed)
        return count

    def _spawn_crash_timer(self, armed: _Armed) -> None:
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return                       # sync context: poll crash_due()

        async def die_later() -> None:
            delay = max(0.0, armed.start - self.clock())
            await asyncio.sleep(delay)
            self._count(armed)
            self.on_crash()

        self._crash_tasks.append(loop.create_task(die_later()))

    def disarm(self) -> None:
        """Drop every armed event and cancel pending crash timers."""
        self._armed.clear()
        for task in self._crash_tasks:
            task.cancel()
        self._crash_tasks.clear()

    # -- firing --------------------------------------------------------------

    def _count(self, armed: _Armed) -> None:
        if armed.remaining is not None:
            armed.remaining -= 1
        kind = armed.event.kind
        self.fired[kind] = self.fired.get(kind, 0) + 1

    def decide(self, path: str) -> FaultDecision:
        """Worker-side: the combined fault action for a request on
        ``path`` at the current clock reading.  Consumes fire budget
        for every matching event."""
        decision = FaultDecision()
        if path in _PROTECTED_PATHS:
            return decision
        now = self.clock()
        for armed in self._armed:
            event = armed.event
            if event.kind not in ("drop", "delay", "error", "hang",
                                  "slow"):
                continue
            if not armed.active(now):
                continue
            if event.path is not None and event.path != path:
                continue
            if event.kind == "drop":
                decision.drop = True
            elif event.kind == "error":
                decision.error = True
                decision.garbage = decision.garbage or event.garbage
            elif event.kind == "hang":
                # Answer nothing until the window has fully passed.
                decision.sleep_s = max(decision.sleep_s,
                                       armed.end - now)
            else:                        # delay / slow
                decision.sleep_s += event.delay_s
            self._count(armed)
        return decision

    def take(self, kind: str) -> FaultEvent | None:
        """Gateway-side: consume one active event of ``kind`` (or
        ``None``).  Used for ``corrupt_blob`` on artifact reads."""
        now = self.clock()
        for armed in self._armed:
            if armed.event.kind == kind and armed.active(now):
                self._count(armed)
                return armed.event
        return None

    def crash_due(self) -> bool:
        """Synchronous crash poll (when no event loop armed a timer)."""
        now = self.clock()
        for armed in self._armed:
            if armed.event.kind == "crash" and armed.active(now):
                self._count(armed)
                return True
        return False

    def corrupt(self, data: bytes) -> bytes:
        """Deterministically flip one byte of ``data``.

        The position derives from (seed, how many corruptions fired
        before this one), so a replayed plan corrupts the same byte —
        and the flip keeps the *declared* digest untouched, which is
        exactly what disk/wire corruption looks like to a verifying
        receiver."""
        if not data:
            return data
        token = self.fired.get("corrupt_blob", 0)
        digest = hashlib.sha256(
            f"corrupt:{self.seed}:{token}".encode()).digest()
        position = int.from_bytes(digest[:8], "big") % len(data)
        corrupted = bytearray(data)
        corrupted[position] ^= 0xFF
        return bytes(corrupted)

    # -- observability -------------------------------------------------------

    def active_kinds(self) -> list[str]:
        now = self.clock()
        return sorted({armed.event.kind for armed in self._armed
                       if armed.active(now)})

    def ledger(self) -> dict[str, Any]:
        """The fault ledger: what was armed, what fired, what's live."""
        return {"armed": len(self._armed),
                "fired": dict(sorted(self.fired.items())),
                "active": self.active_kinds()}


class CircuitBreaker:
    """Per-replica circuit breaker: fail fast, probe, recover.

    State machine (``docs/fleet.md`` draws it):

    * **closed** — traffic flows; ``failure_threshold`` *consecutive*
      failures trip it open;
    * **open** — the replica is skipped entirely (the fast path that
      replaces waiting for the health loop to evict) until
      ``cooldown_s`` elapses;
    * **half-open** — probe traffic is admitted again; the first
      success closes the breaker, the first failure re-opens it with a
      fresh cooldown.

    Deterministic and clock-injectable, like everything in this module.

    >>> clock = iter([0.0, 0.0, 0.0, 0.1, 0.9, 0.9, 1.0]).__next__
    >>> breaker = CircuitBreaker(failure_threshold=2, cooldown_s=0.5,
    ...                          clock=clock)
    >>> breaker.record_failure(); breaker.record_failure()
    >>> breaker.state, breaker.allow()          # tripped at t=0.1
    ('open', False)
    >>> breaker.state                           # cooled down at t=0.9
    'half-open'
    >>> breaker.record_success(); breaker.state
    'closed'
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, *, failure_threshold: int = 3,
                 cooldown_s: float = 0.5,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, "
                             f"got {failure_threshold}")
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.clock = clock
        self.opens = 0                  # cumulative open transitions
        self._failures = 0
        self._state = self.CLOSED
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """Current state; lazily moves open -> half-open on cooldown."""
        if self._state == self.OPEN and \
                self.clock() - self._opened_at >= self.cooldown_s:
            self._state = self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May a request be dispatched to this replica right now?"""
        return self.state != self.OPEN

    def record_success(self) -> None:
        self._failures = 0
        self._state = self.CLOSED

    def record_failure(self) -> None:
        state = self.state
        if state == self.HALF_OPEN:
            self._trip()                # failed probe: straight back open
            return
        self._failures += 1
        if state == self.CLOSED and \
                self._failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = self.OPEN
        self._opened_at = self.clock()
        self.opens += 1
        self._failures = 0


def backoff_delay(attempt: int, *, base_s: float = 0.02,
                  cap_s: float = 0.5, seed: int = 0,
                  token: int = 0) -> float:
    """Capped exponential backoff with *deterministic* jitter.

    The raw delay doubles per attempt (``base_s * 2**attempt``) and
    caps at ``cap_s``; jitter scales it into ``[raw/2, raw]`` using a
    hash of ``(seed, token, attempt)`` — no global RNG, so concurrent
    requests (distinct tokens) decorrelate *and* a replayed test run
    sleeps the identical schedule.

    >>> backoff_delay(0) == backoff_delay(0)
    True
    >>> backoff_delay(9, base_s=0.02, cap_s=0.5) <= 0.5
    True
    """
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt}")
    if base_s <= 0 or cap_s <= 0:
        raise ValueError("base_s and cap_s must be positive")
    raw = min(cap_s, base_s * (2.0 ** attempt))
    digest = hashlib.sha256(
        f"backoff:{seed}:{token}:{attempt}".encode()).digest()
    fraction = int.from_bytes(digest[:8], "big") / 2.0 ** 64
    return raw * (0.5 + 0.5 * fraction)
