"""Consistent-hash ring: which workers host which model.

Placement is by consistent hashing on the model's route key (the
compilation-identity digest from :func:`repro.fleet.models.route_key`),
the classic trick for cache-affine routing: each worker owns many
pseudo-random points on a hash circle, and a key is served by the first
``count`` *distinct* workers clockwise from the key's own point.

Why this shape for a PUMA fleet specifically: a model's replicas should
**share warm artifacts**.  Programming crossbars and recording execution
tapes is the expensive, pay-once part (Section 3.2.5 of the paper); the
ring keeps a model pinned to a stable subset of workers so that cost is
paid ``replicas`` times, not ``workers`` times — and when a worker joins
or leaves, only the keys adjacent to its points move (``~K/N`` of them),
so an autoscaling event doesn't cold-start the whole fleet.

Deterministic by construction (SHA-256 over ``worker_id:vnode`` /
route-key strings, no process salt), so the gateway can be restarted —
or a second gateway consulted — and compute identical placements.
"""

from __future__ import annotations

import bisect
import hashlib

DEFAULT_VNODES = 64


def _point(label: str) -> int:
    """A stable 64-bit position on the circle for one label."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent-hash placement of route keys onto worker ids.

    Example::

        ring = HashRing(["w0", "w1", "w2"])
        primary, backup = ring.replicas("abc123", 2)
        ring.replicas("abc123", 2) == [primary, backup]   # stable
    """

    def __init__(self, workers: list[str] | None = None,
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self._vnodes = vnodes
        self._points: list[int] = []       # sorted circle positions
        self._owner: dict[int, str] = {}   # position -> worker id
        self._workers: set[str] = set()
        for worker in workers or []:
            self.add(worker)

    @property
    def workers(self) -> set[str]:
        return set(self._workers)

    def __len__(self) -> int:
        return len(self._workers)

    def add(self, worker: str) -> None:
        """Add a worker's virtual nodes; no-op if already present."""
        if worker in self._workers:
            return
        self._workers.add(worker)
        for vnode in range(self._vnodes):
            point = _point(f"{worker}:{vnode}")
            # SHA-256 collisions across distinct labels are not a
            # realistic concern; keep first owner if one ever happened.
            if point not in self._owner:
                self._owner[point] = worker
                bisect.insort(self._points, point)

    def remove(self, worker: str) -> None:
        """Remove a worker's virtual nodes; no-op if absent."""
        if worker not in self._workers:
            return
        self._workers.discard(worker)
        keep = [p for p in self._points if self._owner[p] != worker]
        for point in self._points:
            if self._owner[point] == worker:
                del self._owner[point]
        self._points = keep

    def replicas(self, key: str, count: int = 1) -> list[str]:
        """The first ``count`` distinct workers clockwise from ``key``.

        Returns fewer than ``count`` when the ring holds fewer workers,
        and ``[]`` on an empty ring.  Order matters: index 0 is the
        primary (dispatch prefers it), later entries are the failover
        order — stable for a given ring membership.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if not self._points:
            return []
        start = bisect.bisect(self._points, _point(key))
        chosen: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._points)):
            point = self._points[(start + offset) % len(self._points)]
            worker = self._owner[point]
            if worker not in seen:
                seen.add(worker)
                chosen.append(worker)
                if len(chosen) == count:
                    break
        return chosen
