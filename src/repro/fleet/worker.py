"""The fleet worker: one process, one HTTP plane, N hosted models.

A worker is a separate OS process (spawned by
:class:`repro.fleet.manager.WorkerManager`) running one asyncio loop
that serves a small HTTP API on an OS-assigned port:

* ``GET /healthz`` — liveness + which route keys are hosted;
* ``GET /metrics`` — per-model :meth:`PumaServer.stats` (batching
  counters plus the tape/compile/artifact cache counters) and the
  worker's network-store pull/push/rejection counters;
* ``POST /v1/models`` — host a model: **warm path** first (GET the
  artifact blob for the route key from the gateway's networked store,
  verify, unpack, :meth:`InferenceEngine.from_artifacts`), falling back
  to a **cold build** (compile + program + record, then PUT the packed
  artifact back so the *next* cold worker warm-starts);
* ``POST /v1/predict`` — submit one inference to the hosted model's
  :class:`~repro.serve.PumaServer` (micro-batching happens here, per
  worker, exactly as in single-process serving);
* ``POST /v1/shutdown`` — graceful drain: every hosted server finishes
  its queue, then the process exits.

Every hosted model is a full ``PumaServer`` over a deterministic
:func:`~repro.fleet.models.build_engine` engine, so a worker's answers
are bitwise-identical to any other replica's — the property that makes
the gateway's retry-on-another-replica safe.

Engine construction (compile, crossbar programming, tape recording) runs
in a thread so ``/healthz`` stays responsive while a model loads.
Workers are started with the ``spawn`` method, **not** ``fork``: a
forked worker would inherit the parent's in-process compile/state/tape
caches copy-on-write, silently turning every "cold" start warm and
masking exactly the networked-store behavior the fleet exists to
provide (and that its tests verify).
"""

from __future__ import annotations

import asyncio
import os

import numpy as np

from repro.fleet.http import (
    DropConnection,
    FleetConnectionError,
    HttpConnection,
    HttpRequest,
    HttpResponse,
    HttpServer,
    error_response,
    json_response,
)
from repro.fleet.models import FleetModelError, FleetModelSpec, build_engine
from repro.fleet.netstore import (
    SHA_HEADER,
    NetworkArtifactError,
    blob_digest,
    pack_artifact_dir,
    unpack_artifact_blob,
)
from repro.fleet.resilience import FaultEvent, FaultInjector, FaultPlanError
from repro.serve.server import AdmissionError, DeadlineExceeded
from repro.store import ArtifactError

# Artifact blobs are multi-MB; give transfers more room than a health
# ping but still bounded (a wedged gateway must not wedge model loads).
STORE_TIMEOUT_S = 60.0


class _HostedModel:
    """One model this worker serves: spec + engine + its PumaServer."""

    def __init__(self, spec: FleetModelSpec, server,
                 warm_start: bool, source: str) -> None:
        self.spec = spec
        self.server = server
        self.warm_start = warm_start      # True: loaded from the network
        self.source = source              # "network" | "cold"


class FleetWorker:
    """The in-process half of a worker (testable without multiprocessing).

    Args:
        worker_id: the gateway-assigned id (``w0``, ``w1``, …).
        store_address: ``(host, port)`` of the gateway's artifact plane,
            or ``None`` to always cold-build (standalone/testing).
        work_dir: scratch directory for unpacked/saved artifacts.
        max_batch_size / batch_window_s: per-model ``PumaServer`` tuning.
        max_queue_depth: per-model admission bound handed to each hosted
            :class:`~repro.serve.PumaServer` (``None`` = unbounded).
        scheduler_policy: batch-formation policy for each hosted
            ``PumaServer`` (``"edf"`` default, ``"fifo"`` baseline).
        fault_events: chaos events to arm once serving starts (the
            worker-side slice of a :class:`~repro.fleet.resilience
            .FaultPlan`); more can be armed at runtime via
            ``POST /v1/chaos``.
        chaos_seed: seed for the worker's :class:`FaultInjector`.
    """

    def __init__(self, worker_id: str,
                 store_address: tuple[str, int] | None,
                 work_dir: str, *, max_batch_size: int = 16,
                 batch_window_s: float = 0.002,
                 host: str = "127.0.0.1",
                 max_queue_depth: int | None = None,
                 scheduler_policy: str = "edf",
                 fault_events: tuple[FaultEvent, ...] = (),
                 chaos_seed: int = 0) -> None:
        self.worker_id = worker_id
        self.store_address = store_address
        self.work_dir = work_dir
        self.max_batch_size = max_batch_size
        self.batch_window_s = batch_window_s
        self.max_queue_depth = max_queue_depth
        self.scheduler_policy = scheduler_policy
        self.hosted: dict[str, _HostedModel] = {}
        self.shutdown = asyncio.Event()
        self.drain_on_shutdown = True
        self.http = HttpServer(self.handle, host=host)
        self._load_locks: dict[str, asyncio.Lock] = {}
        self.store_pulls = 0
        self.store_pushes = 0
        self.store_rejections = 0
        self.deadline_rejections = 0
        self.injector = FaultInjector(seed=chaos_seed)
        # Armed in start(): crash timers need the running event loop,
        # and at_s offsets should count from "serving", not "built".
        self._initial_fault_events = tuple(fault_events)

    # -- request routing ----------------------------------------------------

    async def handle(self, request: HttpRequest) -> HttpResponse:
        # Chaos middleware: an armed fault plan intercepts traffic here,
        # ahead of routing, exactly where a real failure would strike.
        # decide() never faults the chaos/shutdown control endpoints.
        decision = self.injector.decide(request.path)
        if decision.sleep_s > 0:
            await asyncio.sleep(decision.sleep_s)     # delay / slow / hang
        if decision.drop:
            raise DropConnection()
        if decision.error:
            if decision.garbage:
                # Framing-valid HTTP, garbage payload: what a corrupted
                # proxy or a half-dead process actually emits.
                return HttpResponse(
                    status=200,
                    headers={"Content-Type": "application/json"},
                    body=b"\x00chaos{{this is not json")
            return error_response(500, "injected fault (chaos plan)",
                                  reason="chaos_error")
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return json_response({"ok": True, "worker": self.worker_id,
                                  "pid": os.getpid(),
                                  "models": sorted(self.hosted)})
        if route == ("GET", "/metrics"):
            return json_response(self.metrics())
        if route == ("POST", "/v1/models"):
            return await self.handle_load(request)
        if route == ("POST", "/v1/predict"):
            return await self.handle_predict(request)
        if route == ("POST", "/v1/chaos"):
            return self.handle_chaos(request)
        if route == ("POST", "/v1/shutdown"):
            return self.handle_shutdown(request)
        return error_response(404, f"no route {request.method} "
                                   f"{request.path} on this worker")

    def handle_chaos(self, request: HttpRequest) -> HttpResponse:
        """Arm (or disarm) fault events on a live worker.

        Body: ``{"events": [...], "seed": int}`` to arm, or
        ``{"disarm": true}`` to clear everything armed so far.
        """
        payload = request.json()
        if payload.get("disarm"):
            self.injector.disarm()
            return json_response({"ok": True, "chaos": self.injector.ledger()})
        try:
            events = tuple(FaultEvent.from_dict(item)
                           for item in payload.get("events", []))
        except FaultPlanError as error:
            return error_response(400, str(error), reason="bad_fault_plan")
        if "seed" in payload:
            self.injector.seed = int(payload["seed"])
        self.injector.arm(events)
        return json_response({"ok": True, "chaos": self.injector.ledger()})

    def metrics(self) -> dict:
        return {
            "worker": self.worker_id,
            "pid": os.getpid(),
            "chaos": self.injector.ledger(),
            "deadline_rejections": self.deadline_rejections,
            "network_store": {"pulls": self.store_pulls,
                              "pushes": self.store_pushes,
                              "rejections": self.store_rejections},
            "models": {
                key: {"name": hosted.spec.name,
                      "warm_start": hosted.warm_start,
                      "source": hosted.source,
                      "server": hosted.server.stats()}
                for key, hosted in self.hosted.items()},
        }

    # -- model loading (network warm start, cold fallback) ------------------

    async def _pull_blob(self, key: str) -> tuple[bytes, str] | None:
        """Fetch the blob for ``key`` from the gateway store, or ``None``."""
        if self.store_address is None:
            return None
        connection = HttpConnection(*self.store_address)
        try:
            response = await connection.request(
                "GET", f"/v1/artifacts/{key}", timeout=STORE_TIMEOUT_S)
        except FleetConnectionError:
            return None
        finally:
            await connection.close()
        if response.status != 200:
            return None
        self.store_pulls += 1
        return response.body, response.headers.get(SHA_HEADER.lower(), "")

    async def _push_blob(self, key: str, data: bytes) -> None:
        if self.store_address is None:
            return
        connection = HttpConnection(*self.store_address)
        try:
            response = await connection.request(
                "PUT", f"/v1/artifacts/{key}", body=data,
                headers={SHA_HEADER: blob_digest(data)},
                timeout=STORE_TIMEOUT_S)
            if response.status in (200, 201):
                self.store_pushes += 1
        except FleetConnectionError:
            pass          # best-effort: the artifact still exists locally
        finally:
            await connection.close()

    async def load_model(self, key: str, spec: FleetModelSpec) -> dict:
        """Host ``spec`` under route key ``key`` (idempotent).

        Warm path: pull the blob, verify its transport hash, unpack, and
        re-validate through :func:`repro.store.load_artifact` inside
        ``from_artifacts``.  *Any* failure along that chain — missing
        blob, hash mismatch, corrupt tar, manifest rejection — counts a
        rejection (when a blob existed) and falls back to the cold
        build, which then publishes a fresh blob for later workers.
        """
        lock = self._load_locks.setdefault(key, asyncio.Lock())
        async with lock:
            if key in self.hosted:
                hosted = self.hosted[key]
                return {"ok": True, "already_loaded": True,
                        "warm_start": hosted.warm_start,
                        "source": hosted.source}
            engine = None
            source = "cold"
            pulled = await self._pull_blob(key)
            if pulled is not None:
                data, sha = pulled
                unpack_dir = os.path.join(self.work_dir, f"pulled-{key[:16]}")
                try:
                    unpack_artifact_blob(data, unpack_dir,
                                         expected_sha256=sha or None)
                    engine = await asyncio.to_thread(
                        _engine_from_artifact, unpack_dir)
                    source = "network"
                except (NetworkArtifactError, ArtifactError):
                    self.store_rejections += 1
                    engine = None
            if engine is None:
                engine, artifact_path = await asyncio.to_thread(
                    _engine_cold_build, spec,
                    os.path.join(self.work_dir, "artifacts"),
                    self.max_batch_size)
                if artifact_path is not None:
                    await self._push_blob(
                        key, await asyncio.to_thread(
                            pack_artifact_dir, artifact_path))
            from repro.serve import PumaServer

            server = PumaServer(engine,
                                max_batch_size=self.max_batch_size,
                                batch_window_s=self.batch_window_s,
                                max_queue_depth=self.max_queue_depth,
                                scheduler=self.scheduler_policy)
            await server.start()
            self.hosted[key] = _HostedModel(
                spec, server, warm_start=(source == "network"),
                source=source)
            return {"ok": True, "already_loaded": False,
                    "warm_start": source == "network", "source": source}

    async def handle_load(self, request: HttpRequest) -> HttpResponse:
        payload = request.json()
        try:
            spec = FleetModelSpec.from_dict(payload.get("spec"))
            key = payload.get("route_key")
            if not isinstance(key, str) or not key:
                raise FleetModelError("missing route_key")
        except FleetModelError as error:
            return error_response(400, str(error))
        return json_response(await self.load_model(key, spec))

    # -- inference ----------------------------------------------------------

    async def handle_predict(self, request: HttpRequest) -> HttpResponse:
        payload = request.json()
        key = payload.get("route_key")
        hosted = self.hosted.get(key) if isinstance(key, str) else None
        if hosted is None:
            # The gateway loads before dispatching; reaching here means a
            # placement raced an eviction.  409 is retryable fleet-side.
            return error_response(
                409, f"model {key!r} is not hosted on {self.worker_id}")
        inputs = payload.get("inputs")
        if not isinstance(inputs, dict):
            return error_response(400, "predict body needs an 'inputs' "
                                       "object of float vectors")
        try:
            arrays = {name: np.asarray(values, dtype=np.float64)
                      for name, values in inputs.items()}
        except (TypeError, ValueError) as error:
            return error_response(400, f"bad input vectors: {error}")
        deadline_s = None
        if payload.get("deadline_ms") is not None:
            try:
                deadline_s = float(payload["deadline_ms"]) / 1000.0
            except (TypeError, ValueError):
                return error_response(
                    400, f"bad deadline_ms {payload['deadline_ms']!r}")
            if deadline_s <= 0:
                # The budget was spent in flight (gateway queue + wire);
                # don't even enqueue.
                self.deadline_rejections += 1
                return error_response(
                    504, "deadline expired before the request reached "
                         "the model server", reason="deadline_exceeded")
        try:
            priority = int(payload.get("priority", 0))
        except (TypeError, ValueError):
            return error_response(
                400, f"bad priority {payload['priority']!r} "
                     f"(must be an integer)")
        try:
            result = await hosted.server.submit(arrays,
                                                deadline_s=deadline_s,
                                                priority=priority)
        except ValueError as error:
            return error_response(400, str(error))
        except DeadlineExceeded as error:
            self.deadline_rejections += 1
            return error_response(504, str(error),
                                  reason="deadline_exceeded")
        except AdmissionError as error:
            return error_response(
                429, str(error), reason="queue_full",
                headers={"Retry-After": "1"})
        except RuntimeError as error:
            return error_response(503, str(error),    # draining/stopped
                                  reason="not_serving")
        return json_response({
            "model": hosted.spec.name,
            "worker": self.worker_id,
            "execution": result.execution,
            "outputs": {name: np.asarray(values).tolist()
                        for name, values in result.outputs.items()},
            "words": {name: np.asarray(words).tolist()
                      for name, words in result.words.items()},
        })

    # -- lifecycle ----------------------------------------------------------

    def handle_shutdown(self, request: HttpRequest) -> HttpResponse:
        drain = True
        if request.body:
            try:
                drain = bool(request.json().get("drain", True))
            except Exception:
                drain = True
        self.drain_on_shutdown = drain
        self.shutdown.set()
        return json_response({"ok": True, "draining": drain})

    async def start(self) -> "FleetWorker":
        os.makedirs(self.work_dir, exist_ok=True)
        await self.http.start()
        if self._initial_fault_events:
            self.injector.arm(self._initial_fault_events)
        return self

    async def run_until_shutdown(self) -> None:
        await self.shutdown.wait()
        for hosted in self.hosted.values():
            await hosted.server.stop(drain=self.drain_on_shutdown)
        await self.http.close()

    async def close(self) -> None:
        """Immediate teardown (tests); prefer the shutdown endpoint."""
        for hosted in self.hosted.values():
            await hosted.server.stop(drain=False)
        self.hosted.clear()
        await self.http.close()


def _engine_from_artifact(path: str):
    """Thread-side warm start (blocking: hash, inflate, re-program)."""
    from repro.engine import InferenceEngine

    return InferenceEngine.from_artifacts(path)


def _engine_cold_build(spec: FleetModelSpec, artifact_base: str,
                       batch: int):
    """Thread-side cold build: compile + program + record + save."""
    engine = build_engine(spec, artifact_dir=artifact_base)
    try:
        artifact_path = engine.ensure_artifacts(batch=batch)
    except ArtifactError:
        artifact_path = None        # seed=None etc.: serve without a blob
    return engine, artifact_path


async def _worker_main(bootstrap: dict, conn) -> None:
    worker = FleetWorker(
        worker_id=bootstrap["worker_id"],
        store_address=tuple(bootstrap["store_address"])
        if bootstrap.get("store_address") else None,
        work_dir=bootstrap["work_dir"],
        max_batch_size=bootstrap.get("max_batch_size", 16),
        batch_window_s=bootstrap.get("batch_window_s", 0.002),
        host=bootstrap.get("host", "127.0.0.1"),
        max_queue_depth=bootstrap.get("max_queue_depth"),
        scheduler_policy=bootstrap.get("scheduler_policy", "edf"),
        fault_events=tuple(
            FaultEvent.from_dict(item)
            for item in bootstrap.get("fault_events", [])),
        chaos_seed=bootstrap.get("chaos_seed", 0))
    await worker.start()
    conn.send({"ok": True, "port": worker.http.port, "pid": os.getpid()})
    conn.close()
    await worker.run_until_shutdown()


def run_worker(bootstrap: dict, conn) -> None:
    """Process entry point (must stay module-level picklable for spawn)."""
    try:
        asyncio.run(_worker_main(bootstrap, conn))
    except KeyboardInterrupt:
        pass


def worker_bootstrap(worker_id: str, work_dir: str, *,
                     store_address: tuple[str, int] | None = None,
                     max_batch_size: int = 16,
                     batch_window_s: float = 0.002,
                     host: str = "127.0.0.1",
                     max_queue_depth: int | None = None,
                     scheduler_policy: str = "edf",
                     fault_events: tuple[FaultEvent, ...] = (),
                     chaos_seed: int = 0) -> dict:
    """The picklable config dict :func:`run_worker` consumes."""
    return {"worker_id": worker_id, "work_dir": work_dir,
            "store_address": list(store_address) if store_address else None,
            "max_batch_size": max_batch_size,
            "batch_window_s": batch_window_s, "host": host,
            "max_queue_depth": max_queue_depth,
            "scheduler_policy": scheduler_policy,
            "fault_events": [event.to_dict() for event in fault_events],
            "chaos_seed": chaos_seed}
