"""PUMA Instruction Set Architecture (paper Table 2).

The ISA has five instruction categories:

* compute: ``mvm``, ``alu``, ``alui``, ``alu-int``
* intra-core data movement: ``set``, ``copy``
* intra-tile data movement: ``load``, ``store``
* intra-node data movement: ``send``, ``receive``
* control: ``jmp``, ``brn`` (plus ``hlt`` to terminate a stream)

Instructions are seven bytes wide (Section 3.1); the wide format carries the
``vec-width`` operand needed by temporal SIMD (Section 3.3) and the long
register operands needed to address a register file sized to match the
crossbars (Section 3.4.3).
"""

from repro.isa.opcodes import AluOp, BrnOp, Opcode, RegisterClass
from repro.isa.instruction import (
    Instruction,
    alu,
    alu_int,
    alui,
    brn,
    copy,
    hlt,
    jmp,
    load,
    mvm,
    receive,
    send,
    set_,
    store,
)
from repro.isa.encoding import INSTRUCTION_BYTES, decode, encode
from repro.isa.assembler import assemble, disassemble
from repro.isa.program import CoreProgram, NodeProgram, TileProgram

__all__ = [
    "AluOp",
    "BrnOp",
    "Opcode",
    "RegisterClass",
    "Instruction",
    "INSTRUCTION_BYTES",
    "encode",
    "decode",
    "assemble",
    "disassemble",
    "CoreProgram",
    "TileProgram",
    "NodeProgram",
    "mvm",
    "alu",
    "alui",
    "alu_int",
    "set_",
    "copy",
    "load",
    "store",
    "send",
    "receive",
    "jmp",
    "brn",
    "hlt",
]
