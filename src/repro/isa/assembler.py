"""Textual assembly for the PUMA ISA.

The assembler exists for debuggability: compiled programs can be dumped to a
readable listing and reassembled, and tests can author small kernels by
hand.  The syntax is one instruction per line::

    mvm mask=0b11 filter=5 stride=1
    alu tanh r520, r256 w128
    alui add r520, r520, #16 w128
    copy r0, r520 w128
    load r0, @42 w16
    load r0, @[r600+4] w16
    store r520, @42 count=2 w16
    send @42 fifo=3 tile=7 w128
    receive @42 fifo=3 count=1 w128
    set r600, #0
    alu-int add r600, r600, #1
    brn lt r600, r601, 4
    jmp 0
    hlt

Registers are written ``rN`` (flat index); ``@N`` is a shared-memory word
address; ``#N`` an immediate; ``wN`` a vector width.  ``;`` starts a comment.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.isa.instruction import (
    Instruction,
    alu,
    alu_int,
    alui,
    brn,
    copy,
    hlt,
    jmp,
    load,
    mvm,
    receive,
    send,
    set_,
    store,
)
from repro.isa.opcodes import AluOp, BrnOp, Opcode

_ALU_NAMES = {op.name.lower().replace("_", "-"): op for op in AluOp}
_BRN_NAMES = {op.name.lower(): op for op in BrnOp}

_REG_RE = re.compile(r"^r(\d+)$")
_ADDR_RE = re.compile(r"^@(\d+)$")
_IND_RE = re.compile(r"^@\[r(\d+)(?:\+(\d+))?\]$")
_IMM_RE = re.compile(r"^#(-?\d+)$")
_WIDTH_RE = re.compile(r"^w(\d+)$")
_INT_RE = re.compile(r"^(-?\d+)$")
_KV_RE = re.compile(r"^([a-z_]+)=(0b[01]+|0x[0-9a-fA-F]+|-?\d+)$")


class AssemblyError(ValueError):
    """Raised when a line cannot be assembled."""


def _parse_int(text: str) -> int:
    if text.startswith("0b"):
        return int(text, 2)
    if text.startswith("0x"):
        return int(text, 16)
    return int(text)


def _tokenize(line: str) -> list[str]:
    body = line.split(";", 1)[0].strip()
    if not body:
        return []
    return body.replace(",", " ").split()


def _reg(token: str, line: str) -> int:
    m = _REG_RE.match(token)
    if not m:
        raise AssemblyError(f"expected register, got {token!r} in: {line}")
    return int(m.group(1))


def _split_extras(tokens: list[str]) -> tuple[list[str], dict[str, int], int]:
    """Split positional tokens from key=value pairs and a wN width."""
    positional: list[str] = []
    kv: dict[str, int] = {}
    width = 1
    for tok in tokens:
        m = _KV_RE.match(tok)
        if m:
            kv[m.group(1)] = _parse_int(m.group(2))
            continue
        m = _WIDTH_RE.match(tok)
        if m:
            width = int(m.group(1))
            continue
        positional.append(tok)
    return positional, kv, width


def assemble_line(line: str) -> Instruction | None:
    """Assemble one line; returns None for blank/comment lines."""
    tokens = _tokenize(line)
    if not tokens:
        return None
    mnemonic, rest = tokens[0].lower(), tokens[1:]
    positional, kv, width = _split_extras(rest)

    try:
        return _assemble_tokens(mnemonic, positional, kv, width, line)
    except AssemblyError:
        raise
    except (ValueError, IndexError) as exc:
        raise AssemblyError(f"{exc} in: {line}") from exc


def _assemble_tokens(mnemonic: str, positional: list[str], kv: dict[str, int],
                     width: int, line: str) -> Instruction:
    if mnemonic == "mvm":
        return mvm(kv.get("mask", 1), kv.get("filter", 0), kv.get("stride", 0))
    if mnemonic == "alu":
        op = _ALU_NAMES[positional[0].lower()]
        dest = _reg(positional[1], line)
        src1 = _reg(positional[2], line)
        src2 = _reg(positional[3], line) if len(positional) > 3 else 0
        return alu(op, dest, src1, src2, vec_width=width)
    if mnemonic == "alui":
        op = _ALU_NAMES[positional[0].lower()]
        dest = _reg(positional[1], line)
        src1 = _reg(positional[2], line)
        m = _IMM_RE.match(positional[3])
        if not m:
            raise AssemblyError(f"alui needs #imm in: {line}")
        return alui(op, dest, src1, int(m.group(1)), vec_width=width)
    if mnemonic == "alu-int":
        op = _ALU_NAMES[positional[0].lower()]
        dest = _reg(positional[1], line)
        src1 = _reg(positional[2], line)
        m = _IMM_RE.match(positional[3])
        if m:
            return alu_int(op, dest, src1, imm=int(m.group(1)), imm_mode=True)
        return alu_int(op, dest, src1, _reg(positional[3], line))
    if mnemonic == "set":
        dest = _reg(positional[0], line)
        m = _IMM_RE.match(positional[1])
        if not m:
            raise AssemblyError(f"set needs #imm in: {line}")
        return set_(dest, int(m.group(1)), vec_width=width)
    if mnemonic == "copy":
        return copy(_reg(positional[0], line), _reg(positional[1], line),
                    vec_width=width)
    if mnemonic == "load":
        dest = _reg(positional[0], line)
        m = _ADDR_RE.match(positional[1])
        if m:
            return load(dest, int(m.group(1)), vec_width=width)
        m = _IND_RE.match(positional[1])
        if m:
            return load(dest, int(m.group(2) or 0), vec_width=width,
                        addr_reg=int(m.group(1)), reg_indirect=True)
        raise AssemblyError(f"load needs @addr or @[rN+k] in: {line}")
    if mnemonic == "store":
        src = _reg(positional[0], line)
        count = kv.get("count", 1)
        m = _ADDR_RE.match(positional[1])
        if m:
            return store(src, int(m.group(1)), count=count, vec_width=width)
        m = _IND_RE.match(positional[1])
        if m:
            return store(src, int(m.group(2) or 0), count=count,
                         vec_width=width, addr_reg=int(m.group(1)),
                         reg_indirect=True)
        raise AssemblyError(f"store needs @addr or @[rN+k] in: {line}")
    if mnemonic == "send":
        m = _ADDR_RE.match(positional[0])
        if not m:
            raise AssemblyError(f"send needs @addr in: {line}")
        return send(int(m.group(1)), kv["fifo"], kv["tile"], vec_width=width)
    if mnemonic == "receive":
        m = _ADDR_RE.match(positional[0])
        if not m:
            raise AssemblyError(f"receive needs @addr in: {line}")
        return receive(int(m.group(1)), kv["fifo"], count=kv.get("count", 1),
                       vec_width=width)
    if mnemonic == "jmp":
        return jmp(int(positional[0]))
    if mnemonic == "brn":
        op = _BRN_NAMES[positional[0].lower()]
        return brn(op, _reg(positional[1], line), _reg(positional[2], line),
                   int(positional[3]))
    if mnemonic == "hlt":
        return hlt()
    raise AssemblyError(f"unknown mnemonic {mnemonic!r} in: {line}")


def assemble(text: str) -> list[Instruction]:
    """Assemble a multi-line program."""
    program = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        try:
            instr = assemble_line(line)
        except AssemblyError as exc:
            raise AssemblyError(f"line {lineno}: {exc}") from exc
        if instr is not None:
            program.append(instr)
    return program


def disassemble_one(instr: Instruction) -> str:
    """Render one instruction in assembler syntax."""
    op = instr.opcode
    w = f" w{instr.vec_width}" if instr.is_vector and instr.vec_width != 1 else ""
    if op == Opcode.MVM:
        text = f"mvm mask=0b{instr.mask:b}"
        if instr.filter:
            text += f" filter={instr.filter} stride={instr.stride}"
        return text
    if op == Opcode.ALU:
        name = instr.alu_op.name.lower().replace("_", "-")
        if instr.alu_op.num_sources == 1:
            return f"alu {name} r{instr.dest}, r{instr.src1}{w}"
        return f"alu {name} r{instr.dest}, r{instr.src1}, r{instr.src2}{w}"
    if op == Opcode.ALUI:
        name = instr.alu_op.name.lower()
        return f"alui {name} r{instr.dest}, r{instr.src1}, #{instr.imm}{w}"
    if op == Opcode.ALU_INT:
        name = instr.alu_op.name.lower()
        rhs = f"#{instr.imm}" if instr.imm_mode else f"r{instr.src2}"
        return f"alu-int {name} r{instr.dest}, r{instr.src1}, {rhs}"
    if op == Opcode.SET:
        return f"set r{instr.dest}, #{instr.imm}{w}"
    if op == Opcode.COPY:
        return f"copy r{instr.dest}, r{instr.src1}{w}"
    if op == Opcode.LOAD:
        addr = (f"@[r{instr.addr_reg}+{instr.mem_addr}]" if instr.reg_indirect
                else f"@{instr.mem_addr}")
        return f"load r{instr.dest}, {addr}{w}"
    if op == Opcode.STORE:
        addr = (f"@[r{instr.addr_reg}+{instr.mem_addr}]" if instr.reg_indirect
                else f"@{instr.mem_addr}")
        return f"store r{instr.src1}, {addr} count={instr.count}{w}"
    if op == Opcode.SEND:
        return (f"send @{instr.mem_addr} fifo={instr.fifo_id} "
                f"tile={instr.target}{w}")
    if op == Opcode.RECEIVE:
        return (f"receive @{instr.mem_addr} fifo={instr.fifo_id} "
                f"count={instr.count}{w}")
    if op == Opcode.JMP:
        return f"jmp {instr.pc}"
    if op == Opcode.BRN:
        return (f"brn {instr.brn_op.name.lower()} r{instr.src1}, "
                f"r{instr.src2}, {instr.pc}")
    if op == Opcode.HLT:
        return "hlt"
    raise ValueError(f"cannot disassemble opcode {op!r}")


def disassemble(instructions: Iterable[Instruction], numbered: bool = False) -> str:
    """Render a program listing; ``numbered`` adds instruction indices."""
    lines = []
    for idx, instr in enumerate(instructions):
        text = disassemble_one(instr)
        if instr.comment:
            text = f"{text:<48}; {instr.comment}"
        if numbered:
            text = f"{idx:5d}: {text}"
        lines.append(text)
    return "\n".join(lines)
