"""Binary encoding of PUMA instructions.

Instructions encode to exactly seven bytes (56 bits), matching the paper's
"Instructions are seven bytes wide" (Section 3.1).  The wide format exists to
carry the long register operands (Section 3.4.3) and the ``vec-width``
operand required by temporal SIMD (Section 3.3).

Each opcode has its own field layout; a four-bit opcode tag leads, followed
by opcode-specific fields packed most-significant-first.  ``vec_width`` is
stored biased by -1 (1..512 in nine bits).
"""

from __future__ import annotations

from typing import Sequence

from repro.isa.instruction import Instruction
from repro.isa.opcodes import AluOp, BrnOp, Opcode

INSTRUCTION_BYTES = 7
_TOTAL_BITS = INSTRUCTION_BYTES * 8
_OPCODE_BITS = 4

# Per-opcode layouts: ordered (field, bits).  Special pseudo-fields:
#   vec_width_m1  -> instruction.vec_width - 1
#   imm_s16       -> instruction.imm as 16-bit two's complement
#   int_operand   -> ALU_INT's union field: imm (imm_mode) or src2
_LAYOUTS: dict[Opcode, Sequence[tuple[str, int]]] = {
    Opcode.MVM: (("mask", 8), ("filter", 10), ("stride", 10)),
    Opcode.ALU: (("alu_op", 6), ("dest", 10), ("src1", 10), ("src2", 10),
                 ("vec_width_m1", 9)),
    # ALUI only encodes add/sub/mul/div (values 0-3), so 5 bits suffice and
    # keep the layout within the 56-bit budget.
    Opcode.ALUI: (("alu_op", 5), ("dest", 10), ("src1", 10), ("imm_s16", 16),
                  ("vec_width_m1", 9)),
    Opcode.ALU_INT: (("alu_op", 6), ("dest", 10), ("src1", 10),
                     ("imm_mode", 1), ("int_operand", 16)),
    Opcode.SET: (("dest", 10), ("imm_s16", 16), ("vec_width_m1", 9)),
    Opcode.COPY: (("dest", 10), ("src1", 10), ("vec_width_m1", 9)),
    Opcode.LOAD: (("dest", 10), ("mem_addr", 15), ("addr_reg", 10),
                  ("reg_indirect", 1), ("vec_width_m1", 9)),
    Opcode.STORE: (("src1", 10), ("mem_addr", 15), ("addr_reg", 10),
                   ("reg_indirect", 1), ("count", 7), ("vec_width_m1", 9)),
    Opcode.SEND: (("mem_addr", 15), ("fifo_id", 4), ("target", 10),
                  ("vec_width_m1", 9)),
    Opcode.RECEIVE: (("mem_addr", 15), ("fifo_id", 4), ("count", 7),
                     ("vec_width_m1", 9)),
    Opcode.JMP: (("pc", 16),),
    Opcode.BRN: (("brn_op", 3), ("src1", 10), ("src2", 10), ("pc", 16)),
    Opcode.HLT: (),
}


def _field_value(instr: Instruction, name: str, bits: int) -> int:
    if name == "vec_width_m1":
        value = instr.vec_width - 1
    elif name == "imm_s16":
        value = instr.imm & 0xFFFF
    elif name == "int_operand":
        value = (instr.imm & 0xFFFF) if instr.imm_mode else instr.src2
    elif name in ("reg_indirect", "imm_mode"):
        value = int(getattr(instr, name))
    elif name == "alu_op":
        value = int(instr.alu_op) if instr.alu_op is not None else 0
    elif name == "brn_op":
        value = int(instr.brn_op) if instr.brn_op is not None else 0
    else:
        value = int(getattr(instr, name))
    if not 0 <= value < (1 << bits):
        raise ValueError(
            f"field {name}={value} does not fit in {bits} bits "
            f"for opcode {instr.opcode.name}"
        )
    return value


def encode(instr: Instruction) -> bytes:
    """Encode an instruction into its seven-byte binary form."""
    layout = _LAYOUTS[instr.opcode]
    word = int(instr.opcode)
    used = _OPCODE_BITS
    for name, bits in layout:
        word = (word << bits) | _field_value(instr, name, bits)
        used += bits
    if used > _TOTAL_BITS:
        raise AssertionError(
            f"layout for {instr.opcode.name} uses {used} bits > {_TOTAL_BITS}"
        )
    word <<= _TOTAL_BITS - used
    return word.to_bytes(INSTRUCTION_BYTES, byteorder="big")


def decode(data: bytes) -> Instruction:
    """Decode seven bytes back into an :class:`Instruction`.

    Raises:
        ValueError: if the byte count is wrong or the opcode tag is invalid.
    """
    if len(data) != INSTRUCTION_BYTES:
        raise ValueError(f"expected {INSTRUCTION_BYTES} bytes, got {len(data)}")
    word = int.from_bytes(data, byteorder="big")
    opcode_val = word >> (_TOTAL_BITS - _OPCODE_BITS)
    try:
        opcode = Opcode(opcode_val)
    except ValueError as exc:
        raise ValueError(f"invalid opcode tag {opcode_val}") from exc

    layout = _LAYOUTS[opcode]
    shift = _TOTAL_BITS - _OPCODE_BITS
    fields: dict[str, int] = {}
    for name, bits in layout:
        shift -= bits
        fields[name] = (word >> shift) & ((1 << bits) - 1)

    kwargs: dict[str, object] = {}
    int_operand = None
    for name, value in fields.items():
        if name == "vec_width_m1":
            kwargs["vec_width"] = value + 1
        elif name == "imm_s16":
            kwargs["imm"] = value - 0x10000 if value >= 0x8000 else value
        elif name == "int_operand":
            int_operand = value
        elif name in ("reg_indirect", "imm_mode"):
            kwargs[name] = bool(value)
        elif name == "alu_op":
            kwargs["alu_op"] = AluOp(value)
        elif name == "brn_op":
            kwargs["brn_op"] = BrnOp(value)
        else:
            kwargs[name] = value
    if int_operand is not None:
        if kwargs.get("imm_mode"):
            kwargs["imm"] = (int_operand - 0x10000
                             if int_operand >= 0x8000 else int_operand)
        else:
            kwargs["src2"] = int_operand
    return Instruction(opcode, **kwargs)  # type: ignore[arg-type]


def encode_program(instructions: Sequence[Instruction]) -> bytes:
    """Encode an instruction sequence into a contiguous binary image."""
    return b"".join(encode(i) for i in instructions)


def decode_program(image: bytes) -> list[Instruction]:
    """Decode a binary image produced by :func:`encode_program`."""
    if len(image) % INSTRUCTION_BYTES != 0:
        raise ValueError("image length is not a multiple of the instruction size")
    return [decode(image[i:i + INSTRUCTION_BYTES])
            for i in range(0, len(image), INSTRUCTION_BYTES)]
