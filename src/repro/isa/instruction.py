"""Instruction representation and helper constructors for the PUMA ISA.

An :class:`Instruction` is a flat record of every operand field used by any
opcode (Table 2).  Per-opcode constructor functions validate the operand
combinations so that the compiler and hand-written tests cannot build
malformed instructions.

Register operands index a flat per-core register space laid out as::

    [0, xbar_in_size)                          XbarIn registers
    [xbar_in_size, xbar_in_size+xbar_out_size) XbarOut registers
    [.., .. + num_general)                     general-purpose registers

The layout itself is owned by :class:`repro.arch.config.CoreConfig`; the ISA
only carries the flat indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.isa.opcodes import AluOp, BrnOp, Opcode

# Field budgets chosen to fit every layout in 56 bits (7 bytes):
# 10-bit register operands exactly cover the default core's 1024 registers
# (2x128 XbarIn + 2x128 XbarOut + 512 general purpose); 15-bit addresses
# exactly cover the 32K-word tile data memory.
MAX_REGISTER_INDEX = (1 << 10) - 1
MAX_VEC_WIDTH = 512
MAX_MEM_ADDR = (1 << 15) - 1
MAX_IMMEDIATE = (1 << 15) - 1
MIN_IMMEDIATE = -(1 << 15)
MAX_FIFO_ID = 15
MAX_COUNT = (1 << 7) - 1
MAX_PC = (1 << 16) - 1
MAX_MVMU_MASK = (1 << 8) - 1


@dataclass(frozen=True)
class Instruction:
    """A single PUMA instruction (seven bytes when encoded).

    Only the fields relevant to ``opcode`` are meaningful; the helper
    constructors in this module guarantee consistent field usage.
    """

    opcode: Opcode
    alu_op: Optional[AluOp] = None
    brn_op: Optional[BrnOp] = None
    dest: int = 0
    src1: int = 0
    src2: int = 0
    imm: int = 0
    vec_width: int = 1
    # MVM-specific
    mask: int = 0
    filter: int = 0
    stride: int = 0
    # Memory / network
    mem_addr: int = 0
    addr_reg: int = 0
    reg_indirect: bool = False
    imm_mode: bool = False
    count: int = 0
    fifo_id: int = 0
    target: int = 0
    # Control
    pc: int = 0
    # Compiler-attached annotation (not encoded; used by traces and tests)
    comment: str = field(default="", compare=False)

    def with_comment(self, comment: str) -> "Instruction":
        """Return a copy annotated with a human-readable comment."""
        return replace(self, comment=comment)

    @property
    def is_vector(self) -> bool:
        """True if the instruction operates on a vector of words."""
        return self.opcode in (Opcode.ALU, Opcode.ALUI, Opcode.COPY,
                               Opcode.LOAD, Opcode.STORE, Opcode.SEND,
                               Opcode.RECEIVE, Opcode.SET)

    def __str__(self) -> str:
        from repro.isa.assembler import disassemble_one

        return disassemble_one(self)


def _check_reg(name: str, value: int) -> None:
    if not 0 <= value <= MAX_REGISTER_INDEX:
        raise ValueError(f"{name} register index {value} out of range "
                         f"[0, {MAX_REGISTER_INDEX}]")


def _check_vec_width(vec_width: int) -> None:
    if not 1 <= vec_width <= MAX_VEC_WIDTH:
        raise ValueError(f"vec_width {vec_width} out of range [1, {MAX_VEC_WIDTH}]")


def _check_mem_addr(mem_addr: int) -> None:
    if not 0 <= mem_addr <= MAX_MEM_ADDR:
        raise ValueError(f"memory address {mem_addr} out of range "
                         f"[0, {MAX_MEM_ADDR}]")


def _check_imm(imm: int) -> None:
    if not MIN_IMMEDIATE <= imm <= MAX_IMMEDIATE:
        raise ValueError(f"immediate {imm} out of range "
                         f"[{MIN_IMMEDIATE}, {MAX_IMMEDIATE}]")


def mvm(mask: int, filter: int = 0, stride: int = 0) -> Instruction:
    """Matrix-vector multiply on the MVMUs selected by ``mask``.

    ``mask`` bit *i* activates MVMU *i* of the core; a multi-bit mask is a
    *coalesced* MVM (Section 3.2.4).  ``filter``/``stride`` implement logical
    input shuffling (Section 3.2.3): before the multiply, XbarIn registers
    are logically rotated so that register ``stride * k`` feeds DAC row ``k``
    for the first ``filter`` rows.  ``filter == 0`` disables shuffling.
    """
    if not 0 < mask <= MAX_MVMU_MASK:
        raise ValueError(f"MVM mask must be a non-zero 8-bit value, got {mask}")
    if filter < 0 or stride < 0:
        raise ValueError("filter and stride must be non-negative")
    if filter == 0:
        stride = 0  # shuffling disabled; normalize for a canonical encoding
    return Instruction(Opcode.MVM, mask=mask, filter=filter, stride=stride)


def alu(op: AluOp, dest: int, src1: int, src2: int = 0,
        vec_width: int = 1) -> Instruction:
    """Vector ALU operation ``dest[0:w] = op(src1[0:w], src2[0:w])``."""
    if op.is_compare:
        raise ValueError(f"{op.name} is a scalar compare; use alu_int()")
    _check_reg("dest", dest)
    _check_reg("src1", src1)
    _check_reg("src2", src2)
    _check_vec_width(vec_width)
    if op.num_sources == 1:
        src2 = 0  # unused operand; normalize for a canonical encoding
    return Instruction(Opcode.ALU, alu_op=op, dest=dest, src1=src1, src2=src2,
                       vec_width=vec_width)


def alui(op: AluOp, dest: int, src1: int, imm: int, vec_width: int = 1) -> Instruction:
    """Vector ALU with a 16-bit immediate second operand."""
    if op not in (AluOp.ADD, AluOp.SUB, AluOp.MUL, AluOp.DIV):
        raise ValueError(f"ALUimm supports add/sub/mul/div only, got {op.name}")
    _check_reg("dest", dest)
    _check_reg("src1", src1)
    _check_imm(imm)
    _check_vec_width(vec_width)
    return Instruction(Opcode.ALUI, alu_op=op, dest=dest, src1=src1, imm=imm,
                       vec_width=vec_width)


def alu_int(op: AluOp, dest: int, src1: int, src2: int = 0,
            imm: int = 0, imm_mode: bool = False) -> Instruction:
    """Scalar integer operation on the SFU (add/sub/compares)."""
    if op not in (AluOp.ADD, AluOp.SUB, AluOp.EQ, AluOp.GT, AluOp.NEQ):
        raise ValueError(f"ALUint supports add/sub/eq/gt/neq, got {op.name}")
    _check_reg("dest", dest)
    _check_reg("src1", src1)
    if imm_mode:
        _check_imm(imm)
    else:
        _check_reg("src2", src2)
    return Instruction(Opcode.ALU_INT, alu_op=op, dest=dest, src1=src1,
                       src2=src2, imm=imm, imm_mode=imm_mode)


def set_(dest: int, imm: int, vec_width: int = 1) -> Instruction:
    """Initialize ``vec_width`` registers starting at ``dest`` to ``imm``."""
    _check_reg("dest", dest)
    _check_imm(imm)
    _check_vec_width(vec_width)
    return Instruction(Opcode.SET, dest=dest, imm=imm, vec_width=vec_width)


def copy(dest: int, src1: int, vec_width: int = 1) -> Instruction:
    """Copy ``vec_width`` words between register classes (Section 3.4.3)."""
    _check_reg("dest", dest)
    _check_reg("src1", src1)
    _check_vec_width(vec_width)
    return Instruction(Opcode.COPY, dest=dest, src1=src1, vec_width=vec_width)


def load(dest: int, mem_addr: int = 0, vec_width: int = 1,
         addr_reg: int = 0, reg_indirect: bool = False) -> Instruction:
    """Load ``vec_width`` words from tile shared memory into registers.

    With ``reg_indirect`` the effective address is ``R[addr_reg] + mem_addr``,
    supporting the computed addresses CNN layers need (Section 2.3.2).
    """
    _check_reg("dest", dest)
    _check_mem_addr(mem_addr)
    _check_vec_width(vec_width)
    if reg_indirect:
        _check_reg("addr_reg", addr_reg)
    return Instruction(Opcode.LOAD, dest=dest, mem_addr=mem_addr,
                       vec_width=vec_width, addr_reg=addr_reg,
                       reg_indirect=reg_indirect)


def store(src1: int, mem_addr: int = 0, count: int = 1, vec_width: int = 1,
          addr_reg: int = 0, reg_indirect: bool = False) -> Instruction:
    """Store registers to tile shared memory, tagging each word's reader count.

    ``count`` initializes the attribute-buffer consumer count (Figure 6);
    the data becomes invalid again after ``count`` reads.
    """
    _check_reg("src1", src1)
    _check_mem_addr(mem_addr)
    _check_vec_width(vec_width)
    if not 1 <= count <= MAX_COUNT:
        raise ValueError(f"store count {count} out of range [1, {MAX_COUNT}]")
    if reg_indirect:
        _check_reg("addr_reg", addr_reg)
    return Instruction(Opcode.STORE, src1=src1, mem_addr=mem_addr, count=count,
                       vec_width=vec_width, addr_reg=addr_reg,
                       reg_indirect=reg_indirect)


def send(mem_addr: int, fifo_id: int, target: int, vec_width: int = 1) -> Instruction:
    """Send ``vec_width`` words from shared memory to tile ``target``.

    ``fifo_id`` names the receive-buffer FIFO at the destination; FIFO IDs
    are virtualized by the compiler (Section 4.2).
    """
    _check_mem_addr(mem_addr)
    _check_vec_width(vec_width)
    if not 0 <= fifo_id <= MAX_FIFO_ID:
        raise ValueError(f"fifo_id {fifo_id} out of range [0, {MAX_FIFO_ID}]")
    if not 0 <= target < (1 << 10):
        raise ValueError(f"target tile {target} out of range")
    return Instruction(Opcode.SEND, mem_addr=mem_addr, fifo_id=fifo_id,
                       target=target, vec_width=vec_width)


def receive(mem_addr: int, fifo_id: int, count: int = 1,
            vec_width: int = 1) -> Instruction:
    """Receive ``vec_width`` words from FIFO ``fifo_id`` into shared memory.

    ``count`` initializes the attribute-buffer consumer count for the
    received words, exactly as a local ``store`` would.
    """
    _check_mem_addr(mem_addr)
    _check_vec_width(vec_width)
    if not 0 <= fifo_id <= MAX_FIFO_ID:
        raise ValueError(f"fifo_id {fifo_id} out of range [0, {MAX_FIFO_ID}]")
    if not 1 <= count <= MAX_COUNT:
        raise ValueError(f"receive count {count} out of range [1, {MAX_COUNT}]")
    return Instruction(Opcode.RECEIVE, mem_addr=mem_addr, fifo_id=fifo_id,
                       count=count, vec_width=vec_width)


def jmp(pc: int) -> Instruction:
    """Unconditional jump to instruction index ``pc``."""
    if not 0 <= pc <= MAX_PC:
        raise ValueError(f"jump target {pc} out of range [0, {MAX_PC}]")
    return Instruction(Opcode.JMP, pc=pc)


def brn(op: BrnOp, src1: int, src2: int, pc: int) -> Instruction:
    """Branch to ``pc`` when ``op(R[src1], R[src2])`` holds."""
    _check_reg("src1", src1)
    _check_reg("src2", src2)
    if not 0 <= pc <= MAX_PC:
        raise ValueError(f"branch target {pc} out of range [0, {MAX_PC}]")
    return Instruction(Opcode.BRN, brn_op=op, src1=src1, src2=src2, pc=pc)


def hlt() -> Instruction:
    """Terminate the instruction stream."""
    return Instruction(Opcode.HLT)
