"""Opcode and sub-operation enumerations for the PUMA ISA (Table 2)."""

from __future__ import annotations

import enum


class Opcode(enum.IntEnum):
    """Primary instruction opcodes.

    The categories follow Table 2 of the paper.  ``HLT`` is an addition that
    terminates a core/tile instruction stream; the paper's code generator
    needs an equivalent marker to stop the fetch unit.
    """

    MVM = 0x01        # matrix-vector multiplication (possibly coalesced)
    ALU = 0x02        # vector arithmetic / logical / nonlinear
    ALUI = 0x03       # vector arithmetic with immediate
    ALU_INT = 0x04    # scalar integer arithmetic / compare (SFU)
    SET = 0x05        # register initialization with immediate
    COPY = 0x06       # move between register classes
    LOAD = 0x07       # load from tile shared memory
    STORE = 0x08      # store to tile shared memory
    SEND = 0x09       # send to another tile (tile instruction)
    RECEIVE = 0x0A    # receive from another tile (tile instruction)
    JMP = 0x0B        # unconditional jump
    BRN = 0x0C        # conditional branch
    HLT = 0x0D        # halt the instruction stream

    @property
    def is_compute(self) -> bool:
        return self in (Opcode.MVM, Opcode.ALU, Opcode.ALUI, Opcode.ALU_INT)

    @property
    def is_control(self) -> bool:
        return self in (Opcode.JMP, Opcode.BRN)

    @property
    def is_memory(self) -> bool:
        return self in (Opcode.LOAD, Opcode.STORE)

    @property
    def is_network(self) -> bool:
        return self in (Opcode.SEND, Opcode.RECEIVE)


class AluOp(enum.IntEnum):
    """Sub-operations for ALU / ALUI / ALU_INT instructions.

    Covers the paper's three ALU groups: arithmetic/logical, nonlinear
    (including the transcendentals evaluated via ROM-Embedded RAM), and
    "other" (random vector, subsampling, min/max).
    """

    # Vector arithmetic / logical
    ADD = 0x00
    SUB = 0x01
    MUL = 0x02
    DIV = 0x03
    SHL = 0x04
    SHR = 0x05
    AND = 0x06
    OR = 0x07
    NOT = 0x08
    # Vector nonlinear (RELU in VFU; transcendentals via ROM-Embedded RAM)
    RELU = 0x10
    SIGMOID = 0x11
    TANH = 0x12
    LOG = 0x13
    EXP = 0x14
    LOG_SOFTMAX = 0x15
    # Other
    RANDOM = 0x20
    SUBSAMPLE = 0x21
    MIN = 0x22
    MAX = 0x23
    # Scalar compare group (ALU_INT)
    EQ = 0x30
    GT = 0x31
    NEQ = 0x32

    @property
    def is_transcendental(self) -> bool:
        """True for operations evaluated via the ROM-Embedded RAM LUTs."""
        return self in (AluOp.SIGMOID, AluOp.TANH, AluOp.LOG, AluOp.EXP,
                        AluOp.LOG_SOFTMAX)

    @property
    def is_nonlinear(self) -> bool:
        return self in (AluOp.RELU, AluOp.SIGMOID, AluOp.TANH, AluOp.LOG,
                        AluOp.EXP, AluOp.LOG_SOFTMAX)

    @property
    def is_compare(self) -> bool:
        return self in (AluOp.EQ, AluOp.GT, AluOp.NEQ)

    @property
    def num_sources(self) -> int:
        """How many register source operands the operation consumes.

        SUBSAMPLE counts two: the vector plus a scalar register holding the
        subsampling factor.
        """
        if self in (AluOp.NOT, AluOp.RANDOM) or self.is_nonlinear:
            return 1
        return 2


class BrnOp(enum.IntEnum):
    """Branch conditions for the ``brn`` instruction."""

    EQ = 0x00
    NEQ = 0x01
    LT = 0x02
    LE = 0x03
    GT = 0x04
    GE = 0x05


class RegisterClass(enum.IntEnum):
    """The three register classes of a core (Section 5.4).

    XbarIn registers feed the DAC array; XbarOut registers capture ADC
    output; general-purpose registers live in the ROM-Embedded RAM register
    file.  The compiler's register allocator performs liveness analysis on
    each class separately.
    """

    XBAR_IN = 0
    XBAR_OUT = 1
    GENERAL = 2
