"""Program containers: per-core and per-tile instruction streams.

PUMA is a spatial architecture — each core and each tile runs its own
instruction stream (Section 5).  A :class:`NodeProgram` is the unit the
compiler emits and the simulator consumes: one :class:`TileProgram` per tile,
each holding one :class:`CoreProgram` per core plus the tile-level
send/receive stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.isa.encoding import INSTRUCTION_BYTES, decode_program, encode_program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


@dataclass
class CoreProgram:
    """The instruction stream of one core."""

    core_id: int
    instructions: list[Instruction] = field(default_factory=list)

    def append(self, instr: Instruction) -> None:
        self.instructions.append(instr)

    def extend(self, instrs: list[Instruction]) -> None:
        self.instructions.extend(instrs)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    @property
    def size_bytes(self) -> int:
        """Footprint in the core instruction memory."""
        return len(self.instructions) * INSTRUCTION_BYTES

    def opcode_histogram(self) -> dict[Opcode, int]:
        """Static instruction counts by opcode (input to Figure 4)."""
        hist: dict[Opcode, int] = {}
        for instr in self.instructions:
            hist[instr.opcode] = hist.get(instr.opcode, 0) + 1
        return hist

    def to_binary(self) -> bytes:
        return encode_program(self.instructions)

    @classmethod
    def from_binary(cls, core_id: int, image: bytes) -> "CoreProgram":
        return cls(core_id, decode_program(image))


@dataclass
class TileProgram:
    """The instruction streams of one tile: its cores plus the tile stream.

    The tile stream holds the ``send``/``receive`` instructions executed by
    the tile control unit (Section 4); core streams hold everything else.
    """

    tile_id: int
    cores: dict[int, CoreProgram] = field(default_factory=dict)
    tile_instructions: list[Instruction] = field(default_factory=list)

    def core(self, core_id: int) -> CoreProgram:
        """Get (creating on first use) the program of core ``core_id``."""
        if core_id not in self.cores:
            self.cores[core_id] = CoreProgram(core_id)
        return self.cores[core_id]

    def append_tile(self, instr: Instruction) -> None:
        if instr.opcode not in (Opcode.SEND, Opcode.RECEIVE, Opcode.HLT,
                                Opcode.JMP, Opcode.BRN, Opcode.SET,
                                Opcode.ALU_INT):
            raise ValueError(
                f"{instr.opcode.name} is not a tile-level instruction"
            )
        self.tile_instructions.append(instr)

    @property
    def size_bytes(self) -> int:
        """Footprint in the tile instruction memory (tile stream only)."""
        return len(self.tile_instructions) * INSTRUCTION_BYTES

    def opcode_histogram(self) -> dict[Opcode, int]:
        """Static counts across the tile stream and all core streams."""
        hist: dict[Opcode, int] = {}
        for instr in self.tile_instructions:
            hist[instr.opcode] = hist.get(instr.opcode, 0) + 1
        for core in self.cores.values():
            for opcode, n in core.opcode_histogram().items():
                hist[opcode] = hist.get(opcode, 0) + n
        return hist


@dataclass
class NodeProgram:
    """A compiled model: one :class:`TileProgram` per tile, plus metadata.

    Attributes:
        tiles: tile programs keyed by tile id.
        weights: crossbar weight assignments produced by the compiler;
            maps ``(tile, core, mvmu)`` to a 2-D integer matrix.
        const_memory: constant data images preloaded into tile shared
            memories at configuration time: tile id -> list of
            ``(address, fixed-point words)``.
        input_layout / output_layout: where model inputs must be written
            and outputs will appear, as ``(tile, address, length)`` tuples
            keyed by vector name.
        name: model name.
    """

    name: str = "model"
    tiles: dict[int, TileProgram] = field(default_factory=dict)
    weights: dict[tuple[int, int, int], object] = field(default_factory=dict)
    const_memory: dict[int, list[tuple[int, object]]] = field(default_factory=dict)
    input_layout: dict[str, tuple[int, int, int]] = field(default_factory=dict)
    output_layout: dict[str, tuple[int, int, int]] = field(default_factory=dict)

    def tile(self, tile_id: int) -> TileProgram:
        """Get (creating on first use) the program of tile ``tile_id``."""
        if tile_id not in self.tiles:
            self.tiles[tile_id] = TileProgram(tile_id)
        return self.tiles[tile_id]

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    @property
    def num_cores(self) -> int:
        return sum(len(t.cores) for t in self.tiles.values())

    def total_instructions(self) -> int:
        return sum(
            len(t.tile_instructions) + sum(len(c) for c in t.cores.values())
            for t in self.tiles.values()
        )

    def opcode_histogram(self) -> dict[Opcode, int]:
        """Static instruction counts across the whole node (Figure 4)."""
        hist: dict[Opcode, int] = {}
        for tile in self.tiles.values():
            for opcode, n in tile.opcode_histogram().items():
                hist[opcode] = hist.get(opcode, 0) + n
        return hist

    def usage_breakdown(self) -> dict[str, int]:
        """Static instruction usage by execution unit, as in Figure 4.

        Categories: inter-tile data transfer (send/receive), inter-core data
        transfer (load/store/copy/set), control flow (jmp/brn), scalar
        functional unit (alu-int), vector functional unit (alu/alui), and
        the MVM unit.
        """
        hist = self.opcode_histogram()

        def take(*ops: Opcode) -> int:
            return sum(hist.get(op, 0) for op in ops)

        return {
            "inter_tile": take(Opcode.SEND, Opcode.RECEIVE),
            "inter_core": take(Opcode.LOAD, Opcode.STORE, Opcode.COPY,
                               Opcode.SET),
            "control_flow": take(Opcode.JMP, Opcode.BRN),
            "sfu": take(Opcode.ALU_INT),
            "vfu": take(Opcode.ALU, Opcode.ALUI),
            "mvm": take(Opcode.MVM),
        }
