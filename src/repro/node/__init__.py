"""PUMA node tier: tiles connected by an on-chip network."""

from repro.node.noc import NetworkOnChip
from repro.node.node import Node

__all__ = ["NetworkOnChip", "Node"]
