"""On-chip network model (Table 3: 32-bit flits, 4 ports, concentration 4).

The paper models its NoC with Booksim (cycle level) and Orion (energy).
PUMA traffic is statically-routed producer/consumer streams, so a per-hop
latency plus per-flit-hop energy model captures the figure-level costs; the
energy constants are calibrated against the Table 3 NoC power budget in
:mod:`repro.energy.components`.

Topology: tiles are concentrated ``concentration`` per router; routers form
a 2-D mesh with dimension-order (XY) routing.  Per-(destination, FIFO)
ordering is preserved: a delivery that finds the receive FIFO full parks and
retries head-first, so packets never overtake within a flow.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.arch.config import PumaConfig
from repro.tile.receive_buffer import Packet, ReceiveBuffer

# schedule(delay_cycles, callback): provided by the simulator's event loop.
ScheduleFunction = Callable[[int, Callable[[], None]], None]

ROUTER_PIPELINE_CYCLES = 3   # per-hop router traversal
LINK_CYCLES = 1              # per-hop link traversal
WORD_BITS = 16
# Chip-to-chip (HyperTransport-class) link: fixed traversal latency plus
# serialization at the Table 3 bandwidth (6.4 GB/s).
OFFCHIP_BASE_CYCLES = 250


@dataclass(frozen=True)
class MeshGeometry:
    """Router-mesh geometry derived from tile count and concentration."""

    num_tiles: int
    concentration: int

    @property
    def num_routers(self) -> int:
        return math.ceil(self.num_tiles / self.concentration)

    @property
    def mesh_width(self) -> int:
        return max(1, math.ceil(math.sqrt(self.num_routers)))

    def router_of(self, tile_id: int) -> tuple[int, int]:
        """(x, y) coordinates of the router serving ``tile_id``."""
        router = tile_id // self.concentration
        return router % self.mesh_width, router // self.mesh_width

    def hops(self, src_tile: int, dst_tile: int) -> int:
        """XY-routing hop count between two tiles' routers."""
        sx, sy = self.router_of(src_tile)
        dx, dy = self.router_of(dst_tile)
        return abs(sx - dx) + abs(sy - dy)


class NetworkOnChip:
    """Delivers packets between tiles with modelled latency and ordering.

    Args:
        config: node configuration (flit size, concentration).
        receive_buffers: destination receive buffers keyed by tile id.
        schedule: event-loop scheduling hook from the simulator.
    """

    def __init__(self, config: PumaConfig,
                 receive_buffers: dict[int, ReceiveBuffer],
                 schedule: ScheduleFunction) -> None:
        self.config = config
        node = config.node
        self.geometry = MeshGeometry(node.num_tiles, node.noc_concentration)
        self._buffers = receive_buffers
        self._schedule = schedule
        # In-order delivery queues per (destination tile, fifo), ordered by
        # *injection* time: a short packet must not overtake a long one
        # within the same flow just because it serializes faster.
        self._pending: dict[tuple[int, int], deque[list]] = {}
        self.packets_in_flight = 0
        self.flit_hops = 0
        self.packets_delivered = 0
        self.offchip_words = 0
        self.offchip_packets = 0

    def flits_for(self, packet: Packet) -> int:
        """Flit count for a packet's payload."""
        bits = packet.total_words * WORD_BITS
        return max(1, math.ceil(bits / self.config.node.noc_flit_size_bits))

    def _local(self, tile_id: int) -> int:
        return tile_id % self.config.node.num_tiles

    def is_offchip(self, src_tile: int, dst_tile: int) -> bool:
        """True when the route crosses the chip-to-chip interconnect."""
        return (self.config.node_of_tile(src_tile)
                != self.config.node_of_tile(dst_tile))

    def latency_cycles(self, src_tile: int, dst_tile: int, packet: Packet) -> int:
        """Head latency plus serialization for the whole packet.

        Inter-node routes add the off-chip link: a fixed traversal plus
        serialization at the HyperTransport bandwidth, with each side's
        mesh traversal to/from the chip edge.
        """
        if self.is_offchip(src_tile, dst_tile):
            edge_hops = self.geometry.mesh_width  # to and from the edge
            head = (edge_hops * (ROUTER_PIPELINE_CYCLES + LINK_CYCLES)
                    + OFFCHIP_BASE_CYCLES)
            bytes_ = packet.total_words * WORD_BITS / 8
            link = math.ceil(
                bytes_ * self.config.clock_ghz
                / self.config.node.offchip_link_bandwidth_gbps)
            return max(1, head + link)
        hops = self.geometry.hops(self._local(src_tile),
                                  self._local(dst_tile))
        head = hops * (ROUTER_PIPELINE_CYCLES + LINK_CYCLES)
        serialization = self.flits_for(packet)
        return max(1, head + serialization)

    def send(self, src_tile: int, dst_tile: int, fifo_id: int,
             packet: Packet) -> None:
        """Inject a packet; it arrives after the modelled latency."""
        if dst_tile not in self._buffers:
            raise KeyError(f"destination tile {dst_tile} has no receive buffer")
        if self.is_offchip(src_tile, dst_tile):
            self.offchip_words += packet.total_words
            self.offchip_packets += 1
            hops = self.geometry.mesh_width
        else:
            hops = self.geometry.hops(self._local(src_tile),
                                      self._local(dst_tile))
        self.flit_hops += self.flits_for(packet) * max(1, hops)
        self.packets_in_flight += 1
        key = (dst_tile, fifo_id)
        entry = [packet, False]  # [payload, arrived]
        self._pending.setdefault(key, deque()).append(entry)
        latency = self.latency_cycles(src_tile, dst_tile, packet)
        self._schedule(latency, lambda: self._arrive(key, entry))

    def _arrive(self, key: tuple[int, int], entry: list) -> None:
        entry[1] = True
        self._drain(key)

    def _drain(self, key: tuple[int, int]) -> None:
        """Deliver arrived packets head-first while the FIFO has space."""
        dst_tile, fifo_id = key
        queue = self._pending.get(key)
        buffer = self._buffers[dst_tile]
        while queue and queue[0][1] and buffer.push(fifo_id, queue[0][0]):
            queue.popleft()
            self.packets_in_flight -= 1
            self.packets_delivered += 1
        if queue and queue[0][1]:
            # Head has arrived but the FIFO is full: retry on a pop.
            buffer.wait_for_space(lambda: self._drain(key))

    @property
    def idle(self) -> bool:
        """True when no packets are queued or in flight."""
        return self.packets_in_flight == 0
