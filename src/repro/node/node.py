"""Node: the instantiated accelerator — tiles plus the network fabric.

A :class:`Node` instantiates only the tiles a compiled program actually
uses (a 138-tile node with all tiles built would waste simulation memory
for small models), wires their receive buffers into the NoC, and loads
crossbar weights from the program's weight map.  With
``config.num_nodes > 1`` the same object represents the whole multi-node
system: tile ids are global, and the network routes inter-node flows over
the chip-to-chip interconnect.
"""

from __future__ import annotations

import copy
import re
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.arch.config import PumaConfig
from repro.arch.crossbar import CrossbarModel
from repro.isa.program import NodeProgram
from repro.node.noc import NetworkOnChip, ScheduleFunction
from repro.tile.tile import Tile


@dataclass(frozen=True)
class NodeProgrammedState:
    """The configuration-time state of a programmed node.

    Harvested right after :meth:`Node.load_weights` and installed into
    later nodes built for the *same* (program, config, crossbar model,
    seed) so they skip crossbar programming while staying bitwise
    identical to a freshly-programmed node:

    Attributes:
        mvmus: per-``(tile, core, mvmu)`` programmed-state tuples from
            :meth:`repro.arch.mvmu.MVMU.export_programmed_state` (live
            arrays, shared — crossbars are read-only after configuration).
        rng_state: the node RNG's bit-generator state *after* the
            (write-noise-consuming) programming pass, so runtime draws
            (the RANDOM op) continue from exactly where a fresh
            programming pass would have left them.
    """

    mvmus: dict[tuple[int, int, int], tuple]
    rng_state: dict

    def to_flat_arrays(self) -> dict[str, np.ndarray]:
        """Flatten into named numpy arrays for on-disk persistence.

        Each MVMU at ``(tile, core, mvmu)`` contributes its programmed
        matrix (``m{t}_{c}_{u}_matrix``), column offset sums
        (``..._colsums``), and the bit slices' device levels and
        conductances stacked along a leading slice axis (``..._lv`` /
        ``..._cd``, shape ``(num_slices, dim, dim)`` — one array per
        unit, not per slice: large models have thousands of slices and
        per-member archive overhead would dominate load time) — the
        layout :meth:`from_flat_arrays` reverses.  The RNG state is
        JSON-safe and travels separately (in the artifact manifest).
        """
        arrays: dict[str, np.ndarray] = {}
        for (tile_id, core_id, mvmu_id), state in sorted(self.mvmus.items()):
            matrix, column_offset_sums, xbar_states = state
            prefix = f"m{tile_id}_{core_id}_{mvmu_id}"
            arrays[f"{prefix}_matrix"] = matrix
            arrays[f"{prefix}_colsums"] = column_offset_sums
            arrays[f"{prefix}_lv"] = np.stack(
                [levels for levels, _cond in xbar_states])
            arrays[f"{prefix}_cd"] = np.stack(
                [cond for _levels, cond in xbar_states])
        return arrays

    @classmethod
    def from_flat_arrays(cls, arrays: dict[str, np.ndarray],
                         rng_state: dict) -> "NodeProgrammedState":
        """Rebuild from :meth:`to_flat_arrays` output.

        Validates structural completeness — every unit must carry a
        matrix, column sums, and level/conductance stacks of matching
        shape — and raises ``ValueError`` otherwise (the artifact store
        surfaces that as a load rejection).  The per-slice arrays are
        views into the stacks, so no data is copied.
        """
        if not isinstance(rng_state, dict) or "bit_generator" not in rng_state:
            raise ValueError("programmed-state RNG snapshot is malformed")
        pattern = re.compile(r"^m(\d+)_(\d+)_(\d+)_(matrix|colsums|lv|cd)$")
        units: dict[tuple[int, int, int], dict[str, np.ndarray]] = {}
        for name, array in arrays.items():
            match = pattern.match(name)
            if match is None:
                raise ValueError(f"unrecognized state array {name!r}")
            key = tuple(int(g) for g in match.groups()[:3])
            units.setdefault(key, {})[match.group(4)] = array
        if not units:
            raise ValueError("programmed state holds no MVMU entries")
        mvmus: dict[tuple[int, int, int], tuple] = {}
        for key, parts in units.items():
            missing = {"matrix", "colsums", "lv", "cd"} - set(parts)
            if missing:
                raise ValueError(
                    f"MVMU {key} state is missing {sorted(missing)}")
            levels, conductance = parts["lv"], parts["cd"]
            if levels.ndim != 3 or levels.shape != conductance.shape:
                raise ValueError(
                    f"MVMU {key} level/conductance stacks disagree: "
                    f"{levels.shape} vs {conductance.shape}")
            mvmus[key] = (parts["matrix"], parts["colsums"],
                          tuple((levels[k], conductance[k])
                                for k in range(levels.shape[0])))
        # JSON round-trips the RNG snapshot's ints losslessly but may
        # arrive with list-typed values; numpy's bit-generator setter
        # validates the rest.
        return cls(mvmus=mvmus, rng_state=copy.deepcopy(rng_state))


class Node:
    """The instantiated hardware for one compiled program.

    Args:
        config: accelerator configuration.
        tile_ids: which tiles to build.
        schedule: event-loop hook handed to the NoC.
        crossbar_model: device model (noise studies override the default).
        seed: RNG seed for write noise and the RANDOM op.
        batch: SIMD batch lanes carried by every tile datapath.
    """

    def __init__(self, config: PumaConfig, tile_ids: Iterable[int],
                 schedule: ScheduleFunction,
                 crossbar_model: CrossbarModel | None = None,
                 seed: int | None = None,
                 batch: int = 1) -> None:
        self.config = config
        self.batch = batch
        rng = np.random.default_rng(seed)
        self.rng = rng
        if crossbar_model is None:
            core = config.core
            crossbar_model = CrossbarModel(
                dim=core.mvmu_dim,
                bits_per_cell=core.bits_per_cell,
                bits_per_input=core.bits_per_input,
            )
        self.crossbar_model = crossbar_model
        self.tiles: dict[int, Tile] = {}
        for tile_id in sorted(set(tile_ids)):
            if not 0 <= tile_id < config.total_tiles:
                raise ValueError(
                    f"tile id {tile_id} outside the {config.num_nodes}-node "
                    f"system's {config.total_tiles} tiles")
            self.tiles[tile_id] = Tile(
                tile_id, config.tile, send_fn=None,
                crossbar_model=crossbar_model, rng=rng, batch=batch)
        buffers = {tid: t.receive_buffer for tid, t in self.tiles.items()}
        self.noc = NetworkOnChip(config, buffers, schedule)
        for tile in self.tiles.values():
            tile.attach_network(self.noc.send)

    @classmethod
    def for_program(cls, config: PumaConfig, program: NodeProgram,
                    schedule: ScheduleFunction,
                    crossbar_model: CrossbarModel | None = None,
                    seed: int | None = None,
                    batch: int = 1,
                    programmed_state: NodeProgrammedState | None = None
                    ) -> "Node":
        """Build a node sized for ``program`` and load its weights.

        ``programmed_state`` (harvested from an identically-configured
        node via :meth:`export_programmed_state`) installs the crossbar
        conductances directly instead of re-running the programming pass.
        """
        node = cls(config, program.tiles.keys(), schedule,
                   crossbar_model=crossbar_model, seed=seed, batch=batch)
        node.load_weights(program, programmed_state=programmed_state)
        return node

    def load_weights(self, program: NodeProgram,
                     programmed_state: NodeProgrammedState | None = None
                     ) -> None:
        """Program every crossbar listed in the compiled weight map.

        With ``programmed_state`` the (possibly noisy, RNG-consuming)
        device writes are skipped: each MVMU adopts the already-programmed
        arrays and the node RNG is advanced to the exact post-programming
        state, so subsequent runtime draws match a fresh programming pass
        bit for bit.
        """
        if programmed_state is not None:
            for (tile_id, core_id, mvmu_id), state in \
                    programmed_state.mvmus.items():
                tile = self.tiles.get(tile_id)
                if tile is None:
                    raise KeyError(
                        f"programmed state references missing tile {tile_id}")
                tile.cores[core_id].mvmus[mvmu_id] \
                    .restore_programmed_state(state)
            self.rng.bit_generator.state = copy.deepcopy(
                programmed_state.rng_state)
            return
        for (tile_id, core_id, mvmu_id), matrix in program.weights.items():
            tile = self.tiles.get(tile_id)
            if tile is None:
                raise KeyError(f"program references missing tile {tile_id}")
            tile.cores[core_id].program_mvmu(
                mvmu_id, np.asarray(matrix, dtype=np.int64))

    def export_programmed_state(self, program: NodeProgram
                                ) -> NodeProgrammedState:
        """Harvest the configuration-time state for replica construction.

        Must be called before the node runs (the RNG snapshot is the
        *post-programming* position; runtime RANDOM draws would move it).
        """
        mvmus = {
            key: self.tiles[key[0]].cores[key[1]].mvmus[key[2]]
            .export_programmed_state()
            for key in program.weights
        }
        return NodeProgrammedState(
            mvmus=mvmus,
            rng_state=copy.deepcopy(self.rng.bit_generator.state))

    def tile(self, tile_id: int) -> Tile:
        return self.tiles[tile_id]

    def reset(self) -> None:
        for tile in self.tiles.values():
            tile.reset()
