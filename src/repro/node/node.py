"""Node: the instantiated accelerator — tiles plus the network fabric.

A :class:`Node` instantiates only the tiles a compiled program actually
uses (a 138-tile node with all tiles built would waste simulation memory
for small models), wires their receive buffers into the NoC, and loads
crossbar weights from the program's weight map.  With
``config.num_nodes > 1`` the same object represents the whole multi-node
system: tile ids are global, and the network routes inter-node flows over
the chip-to-chip interconnect.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.arch.config import PumaConfig
from repro.arch.crossbar import CrossbarModel
from repro.isa.program import NodeProgram
from repro.node.noc import NetworkOnChip, ScheduleFunction
from repro.tile.tile import Tile


class Node:
    """The instantiated hardware for one compiled program.

    Args:
        config: accelerator configuration.
        tile_ids: which tiles to build.
        schedule: event-loop hook handed to the NoC.
        crossbar_model: device model (noise studies override the default).
        seed: RNG seed for write noise and the RANDOM op.
        batch: SIMD batch lanes carried by every tile datapath.
    """

    def __init__(self, config: PumaConfig, tile_ids: Iterable[int],
                 schedule: ScheduleFunction,
                 crossbar_model: CrossbarModel | None = None,
                 seed: int | None = None,
                 batch: int = 1) -> None:
        self.config = config
        self.batch = batch
        rng = np.random.default_rng(seed)
        if crossbar_model is None:
            core = config.core
            crossbar_model = CrossbarModel(
                dim=core.mvmu_dim,
                bits_per_cell=core.bits_per_cell,
                bits_per_input=core.bits_per_input,
            )
        self.crossbar_model = crossbar_model
        self.tiles: dict[int, Tile] = {}
        for tile_id in sorted(set(tile_ids)):
            if not 0 <= tile_id < config.total_tiles:
                raise ValueError(
                    f"tile id {tile_id} outside the {config.num_nodes}-node "
                    f"system's {config.total_tiles} tiles")
            self.tiles[tile_id] = Tile(
                tile_id, config.tile, send_fn=None,
                crossbar_model=crossbar_model, rng=rng, batch=batch)
        buffers = {tid: t.receive_buffer for tid, t in self.tiles.items()}
        self.noc = NetworkOnChip(config, buffers, schedule)
        for tile in self.tiles.values():
            tile.attach_network(self.noc.send)

    @classmethod
    def for_program(cls, config: PumaConfig, program: NodeProgram,
                    schedule: ScheduleFunction,
                    crossbar_model: CrossbarModel | None = None,
                    seed: int | None = None,
                    batch: int = 1) -> "Node":
        """Build a node sized for ``program`` and load its weights."""
        node = cls(config, program.tiles.keys(), schedule,
                   crossbar_model=crossbar_model, seed=seed, batch=batch)
        node.load_weights(program)
        return node

    def load_weights(self, program: NodeProgram) -> None:
        """Program every crossbar listed in the compiled weight map."""
        for (tile_id, core_id, mvmu_id), matrix in program.weights.items():
            tile = self.tiles.get(tile_id)
            if tile is None:
                raise KeyError(f"program references missing tile {tile_id}")
            tile.cores[core_id].program_mvmu(
                mvmu_id, np.asarray(matrix, dtype=np.int64))

    def tile(self, tile_id: int) -> Tile:
        return self.tiles[tile_id]

    def reset(self) -> None:
        for tile in self.tiles.values():
            tile.reset()
