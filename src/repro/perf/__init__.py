"""Analytic PUMA performance model for paper-scale workloads.

The detailed simulator (:mod:`repro.sim`) is exact but instruction-level;
100M+-parameter networks (Table 5) are evaluated with this layer-level
model instead.  It uses the *same* cost constants as the simulator's
timing/energy models (:mod:`repro.energy.model`) and is validated against
the detailed simulator on small networks in
``tests/test_perf_validation.py``.
"""

from repro.perf.layer_model import LayerCost, StageCost, layer_cost
from repro.perf.pipeline_model import PumaEstimate, estimate_puma

__all__ = [
    "StageCost",
    "LayerCost",
    "layer_cost",
    "PumaEstimate",
    "estimate_puma",
]
