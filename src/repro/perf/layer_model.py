"""Per-layer PUMA stage costs.

A *stage* is one layer processing one input vector (one time step for
recurrent layers, one window position for convolutions).  Its latency
follows the code the compiler generates:

1. distribute the input vector into the XbarIn registers of every core
   holding row tiles (parallel across cores; a load per MVMU);
2. fire the (coalesced) MVMs — all row/column tiles in parallel, the
   2304 ns crossbar latency (Section 7.4.3);
3. reduce the ``R`` row-tile partials of each output segment: a local add
   per core, then a serial chain of load+add on the aggregator core
   (cross-tile partials add network hops);
4. run the layer's vector work (bias, activations; gate arithmetic for
   LSTM cells) under temporal SIMD;
5. store the result.

Output segments reduce on different aggregator cores, so stage latency
scales with row tiles but not with output width.  Energy counts every MVM
activation at the calibrated 43.97 nJ plus VFU/register/memory/network
contributions at the Table 3 component rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import PumaConfig
from repro.energy.components import MW, TABLE3, mvmu_power_mw
from repro.energy.model import (
    BUS_WORDS_PER_CYCLE,
    MEMORY_ACCESS_CYCLES,
    NOC_FLIT_HOP_ENERGY_J,
    mvm_latency_cycles,
)

# Average NoC hops for intra-layer traffic (layers span neighbouring tiles).
AVG_HOPS = 3
_ROUTER_CYCLES_PER_HOP = 4
# Elementwise work whose operands live in *different* tiles (the LSTM
# gate/cell chain of wide cells: i/f/o/c~ segments sit in different column
# tiles) is serialized through shared memory and tile streams — roughly one
# load + op + store round per word, as the generated code does.  This is
# the "higher intra-layer data movement overhead" of wide LSTMs (Sec 7.2).
CROSS_TILE_EWISE_CYCLES_PER_WORD = 8


@dataclass(frozen=True)
class StageCost:
    """Latency and operation counts of one layer stage."""

    latency_cycles: float
    mvm_activations: int
    vfu_ops: int
    memory_words: int
    network_words: int
    instructions: int

    def merge(self, other: "StageCost") -> "StageCost":
        return StageCost(
            self.latency_cycles + other.latency_cycles,
            self.mvm_activations + other.mvm_activations,
            self.vfu_ops + other.vfu_ops,
            self.memory_words + other.memory_words,
            self.network_words + other.network_words,
            self.instructions + other.instructions,
        )


@dataclass(frozen=True)
class LayerCost:
    """Stage cost plus layer occupancy."""

    stage: StageCost
    mvmus: int          # crossbars storing this layer's weights
    stages: int         # stage invocations per inference (steps/positions)


def _matvec_stage(config: PumaConfig, in_features: int, out_features: int,
                  vector_ops_per_out: float = 2.0) -> StageCost:
    """Stage cost of a tiled matrix-vector product plus its vector tail."""
    core = config.core
    dim = core.mvmu_dim
    row_tiles = max(1, math.ceil(in_features / dim))
    col_tiles = max(1, math.ceil(out_features / dim))
    mvmus = row_tiles * col_tiles
    cores_per_reduce = math.ceil(row_tiles / core.num_mvmus)
    tiles_spanned = math.ceil(mvmus / (core.num_mvmus
                                       * config.tile.num_cores))

    seg = min(dim, out_features)
    load_cycles = MEMORY_ACCESS_CYCLES + math.ceil(dim / BUS_WORDS_PER_CYCLE)
    add_cycles = math.ceil(seg / core.vfu_width)

    # 1. input distribution (parallel loads; network if layer spans tiles)
    t = load_cycles
    if tiles_spanned > 1:
        t += AVG_HOPS * _ROUTER_CYCLES_PER_HOP + math.ceil(dim / 2)
    # 2. crossbar MVM (row/col tiles all fire in parallel)
    t += mvm_latency_cycles(dim, core.fixed_point.total_bits
                            // core.bits_per_input)
    # 3. partial reduction: local pair-add, then a serial aggregation chain
    t += add_cycles  # local coalesced-pair add
    remote_partials = max(0, cores_per_reduce - 1)
    per_partial = load_cycles + add_cycles
    if tiles_spanned > 1:
        per_partial += AVG_HOPS * _ROUTER_CYCLES_PER_HOP + math.ceil(seg / 2)
    t += remote_partials * per_partial
    # 4. vector tail (bias + activation, or the LSTM gate arithmetic)
    t += math.ceil(vector_ops_per_out * seg / core.vfu_width)
    # 5. store the result segment
    t += MEMORY_ACCESS_CYCLES + math.ceil(seg / BUS_WORDS_PER_CYCLE)

    vfu_ops = int(vector_ops_per_out * out_features) \
        + row_tiles * min(dim, out_features)  # reduction adds
    memory_words = (row_tiles * dim                       # XbarIn loads
                    + 2 * max(0, row_tiles - 1) * out_features  # partials
                    + out_features)                        # result store
    network_words = 0
    if tiles_spanned > 1:
        network_words = in_features + max(0, row_tiles - 1) * out_features
    instructions = mvmus * 2 + row_tiles * col_tiles + 4 * col_tiles

    return StageCost(
        latency_cycles=float(t),
        mvm_activations=mvmus,
        vfu_ops=vfu_ops,
        memory_words=memory_words,
        network_words=network_words,
        instructions=instructions,
    )


def dense_layer_cost(config: PumaConfig, in_features: int,
                     out_features: int, activation: bool = True) -> LayerCost:
    stage = _matvec_stage(config, in_features, out_features,
                          vector_ops_per_out=2.0 if activation else 1.0)
    dim = config.core.mvmu_dim
    mvmus = math.ceil(in_features / dim) * math.ceil(out_features / dim)
    return LayerCost(stage=stage, mvmus=mvmus, stages=1)


def lstm_layer_cost(config: PumaConfig, input_size: int, hidden_size: int,
                    proj_size: int = 0) -> LayerCost:
    """One LSTM step: fused gate matvec, cell update, optional projection."""
    state = proj_size if proj_size else hidden_size
    gate = _matvec_stage(config, input_size + state, 4 * hidden_size,
                         vector_ops_per_out=0.0)
    # Cell update: 4 transcendental + 4 elementwise ops over hidden-size
    # vectors, distributed over the cores holding the gate column tiles.
    core = config.core
    col_tiles = math.ceil(4 * hidden_size / core.mvmu_dim)
    col_cores = max(1, col_tiles // core.num_mvmus)
    cell_ops = 8 * hidden_size
    cell_cycles = math.ceil(cell_ops / col_cores / core.vfu_width)
    tiles_spanned = math.ceil(col_cores / config.tile.num_cores)
    network_words = 0
    if tiles_spanned > 1:
        # The i/f/o/c~ segments combined by the cell update live in
        # different tiles: gather/scatter serializes per word.
        cell_cycles += hidden_size * CROSS_TILE_EWISE_CYCLES_PER_WORD
        network_words = 3 * hidden_size
    cell = StageCost(latency_cycles=float(cell_cycles),
                     mvm_activations=0, vfu_ops=cell_ops,
                     memory_words=2 * hidden_size,
                     network_words=network_words,
                     instructions=8 * max(1, hidden_size // core.mvmu_dim))
    stage = gate.merge(cell)
    mvmus = (math.ceil((input_size + state) / core.mvmu_dim)
             * math.ceil(4 * hidden_size / core.mvmu_dim))
    if proj_size:
        proj = _matvec_stage(config, hidden_size, proj_size,
                             vector_ops_per_out=0.0)
        stage = stage.merge(proj)
        mvmus += (math.ceil(hidden_size / core.mvmu_dim)
                  * math.ceil(proj_size / core.mvmu_dim))
    return LayerCost(stage=stage, mvmus=mvmus, stages=1)


def conv_layer_cost(config: PumaConfig, window: int, out_channels: int,
                    positions: int) -> LayerCost:
    """One conv layer: a matvec stage per window position."""
    stage = _matvec_stage(config, window, out_channels,
                          vector_ops_per_out=2.0)
    dim = config.core.mvmu_dim
    mvmus = math.ceil(window / dim) * math.ceil(out_channels / dim)
    return LayerCost(stage=stage, mvmus=mvmus, stages=positions)


def pool_layer_cost(config: PumaConfig, channels: int, positions: int,
                    window: int = 4) -> LayerCost:
    core = config.core
    ops = channels * window
    cycles = math.ceil(ops / core.vfu_width) + 2 * (
        MEMORY_ACCESS_CYCLES + math.ceil(channels / BUS_WORDS_PER_CYCLE))
    stage = StageCost(latency_cycles=float(cycles), mvm_activations=0,
                      vfu_ops=ops, memory_words=2 * channels,
                      network_words=0, instructions=window + 2)
    return LayerCost(stage=stage, mvmus=0, stages=positions)


def stage_energy_j(config: PumaConfig, stage: StageCost) -> float:
    """Energy of one stage from the Table 3 component rates."""
    core = config.core
    cycle_s = config.cycle_ns * 1e-9
    input_steps = core.fixed_point.total_bits // core.bits_per_input
    mvm_j = (mvmu_power_mw(core.mvmu_dim, core.bits_per_cell) * MW
             * mvm_latency_cycles(core.mvmu_dim, input_steps) * cycle_s)
    vfu_j_per_op = (TABLE3["vfu"].power_mw + TABLE3["register_file"].power_mw) \
        * MW * cycle_s / max(core.vfu_width, 1) * core.vfu_width
    smem_scale = config.tile.shared_memory_bytes / 65536
    mem_j_per_word = ((TABLE3["tile_data_memory"].power_mw * smem_scale
                       + TABLE3["tile_memory_bus"].power_mw
                       + TABLE3["tile_attribute_memory"].power_mw
                       * (config.tile.attribute_entries / 32768)) * MW
                      * cycle_s / BUS_WORDS_PER_CYCLE)
    fetch_j = (TABLE3["instruction_memory"].power_mw
               + TABLE3["control_pipeline"].power_mw) * MW * cycle_s
    noc_j_per_word = NOC_FLIT_HOP_ENERGY_J * AVG_HOPS / 2  # 2 words/flit
    return (stage.mvm_activations * mvm_j
            + stage.vfu_ops * vfu_j_per_op
            + stage.memory_words * mem_j_per_word
            + stage.network_words * noc_j_per_word
            + stage.instructions * fetch_j)


def layer_cost(config: PumaConfig, layer) -> LayerCost:
    """Dispatch a workload-spec layer to its cost function."""
    from repro.workloads.spec import (ConvLayer, DenseLayer, LstmLayer,
                                      PoolLayer)

    if isinstance(layer, DenseLayer):
        return dense_layer_cost(config, layer.in_features,
                                layer.out_features,
                                activation=bool(layer.activation))
    if isinstance(layer, LstmLayer):
        return lstm_layer_cost(config, layer.input_size, layer.hidden_size,
                               layer.proj_size)
    if isinstance(layer, ConvLayer):
        return conv_layer_cost(config, layer.window, layer.out_channels,
                               layer.positions)
    if isinstance(layer, PoolLayer):
        return pool_layer_cost(config, layer.channels,
                               layer.out_h * layer.out_w)
    raise TypeError(f"no PUMA cost model for {layer!r}")
