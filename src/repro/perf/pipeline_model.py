"""Whole-network PUMA latency/energy: spatial pipelining and batching.

Network-level composition rules (Sections 4.1.2, 7.2):

* **MLP**, batch 1: no inter-layer parallelism for a single input — the
  latency is the sum of layer stages.  A batch streams through the layer
  pipeline, so batch latency is fill + (B-1) x bottleneck stage.
* **LSTM/RNN**: layers pipeline across time steps (wavefront); the
  recurrence serializes consecutive steps of the same layer.  Measured
  overlap in the detailed simulator falls short of the ideal wavefront
  because synchronization through shared memory serializes the gate/cell/
  projection chain, captured by ``PIPELINE_EFFICIENCY``.
* **CNN**: convolution layers pipeline across window positions.  Early
  layers have far more positions than late ones, so their crossbars are
  *replicated* until the per-layer position counts balance (the standard
  spatial-CNN mapping); replication spends spare MVMUs but does not change
  the operation count, hence latency drops while energy stays put.

Energy is operation-count based (the simulator's event-energy view): MVM
activations, VFU ops, memory words, network words, instruction fetches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import PumaConfig
from repro.energy.model import mvm_initiation_interval_cycles
from repro.perf.layer_model import layer_cost, stage_energy_j
from repro.workloads.spec import WorkloadSpec

# Fraction of the ideal recurrent wavefront actually achieved; calibrated
# against the detailed simulator on small LSTMs (synchronization through
# the shared-memory valid/count protocol serializes parts of each step).
PIPELINE_EFFICIENCY = 0.5
# The analytic stage model tracks the critical path; the detailed simulator
# additionally serializes instruction issue and synchronization retries.
# Measured detailed/analytic latency ratio on compiled small networks
# (tests/test_perf_validation.py) — applied as a global correction.
DETAILED_SIM_CORRECTION = 1.4
# Convolution layers replicate crossbars until the busiest layer processes
# at most this many window positions per inference — the design point where
# further replication costs more area than the latency it buys (the
# standard ISAAC-style pipeline balancing PUMA inherits).
REPLICATION_TARGET_POSITIONS = 640


@dataclass(frozen=True)
class PumaEstimate:
    """PUMA latency/energy estimate for one workload at one batch size."""

    workload: str
    batch: int
    latency_s: float
    energy_j: float
    mvmus_used: int
    nodes_used: int

    @property
    def latency_per_inference_s(self) -> float:
        return self.latency_s / self.batch

    @property
    def energy_per_inference_j(self) -> float:
        return self.energy_j / self.batch

    @property
    def throughput_ips(self) -> float:
        return self.batch / self.latency_s


def _mvmus_per_node(config: PumaConfig) -> int:
    return (config.node.num_tiles * config.tile.num_cores
            * config.core.num_mvmus)


def estimate_puma(spec: WorkloadSpec, config: PumaConfig | None = None,
                  batch: int = 1) -> PumaEstimate:
    """Latency and energy of ``batch`` inferences of ``spec`` on PUMA."""
    config = config if config is not None else PumaConfig()
    cycle_s = config.cycle_ns * 1e-9
    costs = [layer_cost(config, layer) for layer in spec.layers]
    weight_mvmus = sum(c.mvmus for c in costs)
    per_node = _mvmus_per_node(config)

    recurrent = spec.dnn_type in ("DeepLSTM", "WideLSTM", "RNN")
    is_cnn = spec.dnn_type == "CNN"

    core = config.core
    interval = mvm_initiation_interval_cycles(
        core.mvmu_dim, core.fixed_point.total_bits // core.bits_per_input)

    if is_cnn:
        replicas = [max(1, math.ceil(c.stages / REPLICATION_TARGET_POSITIONS))
                    for c in costs]
        replicated = weight_mvmus + sum(
            (r - 1) * c.mvmus for c, r in zip(costs, replicas))
        nodes = max(1, math.ceil(replicated / per_node))
        fill = sum(c.stage.latency_cycles for c in costs)
        bottleneck = max(
            (c.stages / r) * max(interval, c.stage.latency_cycles
                                 if c.stages == 1 else interval)
            for c, r in zip(costs, replicas))
        steady = bottleneck
        latency_cycles = fill + batch * steady
        mvmus_used = weight_mvmus + sum(
            (r - 1) * c.mvmus for c, r in zip(costs, replicas))
    elif recurrent:
        step_chain = sum(c.stage.latency_cycles for c in costs)
        bottleneck = max(c.stage.latency_cycles for c in costs)
        ideal = step_chain + (spec.seq_len - 1) * bottleneck
        per_sequence = ideal / PIPELINE_EFFICIENCY
        # Batched sequences stream through the same wavefront.
        latency_cycles = (step_chain
                          + batch * spec.seq_len * bottleneck
                          / PIPELINE_EFFICIENCY)
        latency_cycles = max(latency_cycles, per_sequence)
        nodes = max(1, math.ceil(weight_mvmus / per_node))
        mvmus_used = weight_mvmus
    else:  # MLP and friends: serial layers per input, pipelined batch
        chain = sum(c.stage.latency_cycles for c in costs)
        bottleneck = max(c.stage.latency_cycles for c in costs)
        latency_cycles = chain + (batch - 1) * bottleneck
        nodes = max(1, math.ceil(weight_mvmus / per_node))
        mvmus_used = weight_mvmus

    steps = spec.seq_len if recurrent else 1
    energy_one = sum(stage_energy_j(config, c.stage) * c.stages * steps
                     for c in costs)
    return PumaEstimate(
        workload=spec.name,
        batch=batch,
        latency_s=latency_cycles * cycle_s * DETAILED_SIM_CORRECTION,
        energy_j=energy_one * batch,
        mvmus_used=mvmus_used,
        nodes_used=max(nodes, math.ceil(mvmus_used / per_node)),
    )
