"""The serving API: typed requests/results and the async front-end.

* :class:`RunResult` / :class:`InferenceRequest` — the typed values
  crossing the serving boundary (:mod:`repro.serve.types`);
* :class:`PumaServer` — asyncio request queue + scheduled micro-batching
  over an :class:`~repro.engine.InferenceEngine`
  (:mod:`repro.serve.server`);
* :class:`~repro.serve.scheduler.BatchScheduler` and friends — the
  pluggable batch-formation policies: EDF with deadline-pressure early
  close, and the fixed-window FIFO baseline
  (:mod:`repro.serve.scheduler`);
* :class:`~repro.serve.continuous.ContinuousBatcher` — continuous
  batching for sequence workloads: cohorts of lanes join/leave the
  shared node at recorded step boundaries
  (:mod:`repro.serve.continuous`);
* :class:`~repro.serve.clock.VirtualClock` — the deterministic-time
  test harness every wall-clock decision runs on
  (:mod:`repro.serve.clock`);
* :class:`ShardedEngine` — data-parallel batch fan-out across engine
  replicas, merged bitwise-identically (:mod:`repro.serve.sharding`).
"""

from repro.serve.types import InferenceRequest, RunResult
from repro.serve.clock import Clock, MonotonicClock, VirtualClock
from repro.serve.continuous import ContinuousBatcher, ContinuousUnsupported
from repro.serve.scheduler import (
    SCHEDULER_POLICIES,
    BatchScheduler,
    EdfScheduler,
    FifoScheduler,
    SchedulerCounters,
    ServiceTimeTracker,
    make_scheduler,
)
from repro.serve.sharding import (
    SHARD_POLICIES,
    ShardedEngine,
    ShardExecutionError,
    apportion_lanes,
    shard_lanes,
)
from repro.serve.server import (
    AdmissionError,
    DeadlineExceeded,
    PumaServer,
    ServerCounters,
)

__all__ = [
    "AdmissionError",
    "BatchScheduler",
    "Clock",
    "ContinuousBatcher",
    "ContinuousUnsupported",
    "DeadlineExceeded",
    "EdfScheduler",
    "FifoScheduler",
    "InferenceRequest",
    "MonotonicClock",
    "RunResult",
    "PumaServer",
    "SCHEDULER_POLICIES",
    "SchedulerCounters",
    "ServerCounters",
    "ServiceTimeTracker",
    "SHARD_POLICIES",
    "ShardedEngine",
    "ShardExecutionError",
    "VirtualClock",
    "apportion_lanes",
    "make_scheduler",
    "shard_lanes",
]
