"""The serving API: typed requests/results and the async front-end.

* :class:`RunResult` / :class:`InferenceRequest` — the typed values
  crossing the serving boundary (:mod:`repro.serve.types`);
* :class:`PumaServer` — asyncio request queue + dynamic micro-batching
  over an :class:`~repro.engine.InferenceEngine`
  (:mod:`repro.serve.server`);
* :class:`ShardedEngine` — data-parallel batch fan-out across engine
  replicas, merged bitwise-identically (:mod:`repro.serve.sharding`).
"""

from repro.serve.types import InferenceRequest, RunResult
from repro.serve.sharding import (
    SHARD_POLICIES,
    ShardedEngine,
    ShardExecutionError,
)
from repro.serve.server import (
    AdmissionError,
    DeadlineExceeded,
    PumaServer,
    ServerCounters,
)

__all__ = [
    "AdmissionError",
    "DeadlineExceeded",
    "InferenceRequest",
    "RunResult",
    "PumaServer",
    "ServerCounters",
    "SHARD_POLICIES",
    "ShardedEngine",
    "ShardExecutionError",
]
