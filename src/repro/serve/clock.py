"""Injectable time for the serving stack.

Every wall-clock decision in the serving layer — batch windows, deadline
math, EDF ordering, early-close slack, retry backoff — goes through a
:class:`Clock` so tests can replace real time with a
:class:`VirtualClock` and drive the schedule deterministically: no real
sleeps, no timing flakes, and a 5-second batch window costs 0 wall
seconds to test.

Production uses :class:`MonotonicClock`, a thin veneer over the event
loop's monotonic time and ``asyncio.sleep`` — behaviorally identical to
the pre-clock code.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """The time surface the serving stack consumes.

    ``now()`` is monotonic seconds (arbitrary epoch); ``sleep(delay)``
    suspends the calling coroutine for ``delay`` seconds *of this
    clock*.  Implementations must guarantee that a sleeper never wakes
    before ``now()`` has advanced past its wake time.
    """

    def now(self) -> float:  # pragma: no cover - protocol
        ...

    async def sleep(self, delay: float) -> None:  # pragma: no cover
        ...


class MonotonicClock:
    """Real time: ``time.monotonic`` + ``asyncio.sleep``."""

    def now(self) -> float:
        return time.monotonic()

    async def sleep(self, delay: float) -> None:
        await asyncio.sleep(delay)


class VirtualClock:
    """Deterministic simulated time, advanced explicitly by the test.

    ``sleep(delay)`` parks the caller on a heap of waiters; nothing
    wakes until the test calls ``await advance(dt)``, which steps
    ``now()`` through each due wake time in order (releasing waiters and
    yielding to the loop at every step, so a woken coroutine runs — and
    may schedule new sleeps — before time moves past it).  Time never
    passes on its own, so a test can assert *exactly* what happens at a
    window boundary.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._sleepers: list[tuple[float, int, asyncio.Future]] = []
        self._tie = itertools.count()

    def now(self) -> float:
        return self._now

    async def sleep(self, delay: float) -> None:
        if delay <= 0:
            # Still a suspension point, like asyncio.sleep(0).
            await asyncio.sleep(0)
            return
        loop = asyncio.get_running_loop()
        waiter: asyncio.Future = loop.create_future()
        heapq.heappush(self._sleepers,
                       (self._now + delay, next(self._tie), waiter))
        await waiter

    async def advance(self, delta: float) -> None:
        """Move simulated time forward by ``delta`` seconds.

        Wakes every sleeper whose wake time falls inside the step, in
        wake-time order, yielding to the event loop between wakes (and
        generously at the end) so the woken coroutines get scheduled
        under the intermediate timestamps they expect.
        """
        if delta < 0:
            raise ValueError(f"cannot advance time backwards ({delta})")
        target = self._now + delta
        while self._sleepers and self._sleepers[0][0] <= target:
            wake_at, _, waiter = heapq.heappop(self._sleepers)
            self._now = max(self._now, wake_at)
            if not waiter.done():  # cancelled sleeps just drop out
                waiter.set_result(None)
            # Let the woken coroutine (and anything it triggers) run
            # before time advances further.
            for _ in range(3):
                await asyncio.sleep(0)
        self._now = target
        for _ in range(3):
            await asyncio.sleep(0)

    @property
    def pending_sleepers(self) -> int:
        """How many coroutines are parked waiting for ``advance``."""
        return sum(1 for _, _, w in self._sleepers if not w.done())
