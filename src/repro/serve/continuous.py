"""Continuous batching: cohorts share one node, joining at step boundaries.

Fixed-window batching makes every rider wait for the batch to *form*;
continuous batching (the key scheduling trick of modern LLM serving)
lets requests join and leave the active batch at recorded step
boundaries instead.  The batch-generic execution tape (PR 8,
:mod:`repro.sim.tape`) makes this a *slice choice*: every data-carrying
closure it records operates on ``array[:, start:stop]`` — all lanes, one
address range.  Re-binding the same steps over an explicit lane-index
array (``array[lanes, start:stop]``) yields closures that touch **only
the named lanes' rows**, so groups of lanes ("cohorts") can sit at
*different positions* of the same tape on one shared node without
observing each other.

Why per-lane isolation is exact, not approximate:

* Register files, tile memories, and the NoC payloads are all
  ``(batch, width)`` arrays, and every recorded step addresses them
  row-wise.  The one recorded closure that *broadcast* across lanes —
  ``ALU_INT``, which writes a scalar loop-counter to ``reg[:, dest]``
  — is control bookkeeping (control-uniform programs compute identical
  values in every lane); here it is re-bound to read the cohort's lane
  0 and write the cohort's lanes only.
* NoC flows become per-cohort deques: the k-th receive of a flow
  consumes the k-th send *of the same cohort*, exactly the recorded
  pairing.
* Cohort start re-zeroes the cohort's register rows and re-preloads its
  constant-memory rows — the same per-run initialization
  :class:`~repro.sim.tape.TapeReplayer` performs, restricted to the
  joining lanes.

Consequently each lane's value trajectory is identical to a sequential
single-request replay — bitwise, regardless of which cohorts share the
node or where segment boundaries fall (asserted by
``tests/test_scheduler_properties.py`` and ``tests/test_serve_stress.py``).

**Step boundaries.**  A cohort may only join while no other cohort is
mid-segment, so boundary granularity sets refill latency, not
correctness.  Boundaries are derived from the tape: after the last step
that *reads* each program input's memory region (a ``load`` or a tile
``send`` overlapping the input's ``input_layout`` slot) — the points
where a sequence workload has consumed one conceptual input chunk —
plus the end of the tape.  For a single-consumption MLP this degenerates
to one segment (continuous == dynamic batching); for the LSTM/RNN tapes
it yields one boundary per recurrent step region.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.arch.mvmu import MVMU
from repro.isa.opcodes import AluOp, Opcode
from repro.isa.program import NodeProgram
from repro.sim.tape import ExecutionTape, TapeStep, TapeValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import InferenceEngine

# A lane-sliced op: (lanes, flows) -> None.  ``lanes`` is the cohort's
# lane-index array, ``flows`` its private NoC deques.
_LaneOp = Callable[[np.ndarray, dict], None]


class ContinuousUnsupported(RuntimeError):
    """This engine cannot serve continuous batches.

    Raised at server start for interpreter-mode engines, ``seed=None``
    engines, and RANDOM-op programs — exactly the tape-replay blockers:
    continuous batching *is* tape replay with lane-sliced bindings.
    """


def segment_boundaries(tape: ExecutionTape,
                       program: NodeProgram) -> tuple[int, ...]:
    """Join points: after the last read of each input's memory region.

    Returns ascending end-exclusive step indices; the final entry is
    always ``len(tape.steps)``.  Boundary placement affects only how
    soon a freed lane can be refilled — per-lane outputs are invariant
    to it (lane isolation), which the property suite asserts by
    comparing against sequential references across cohort layouts.
    """
    regions = [(tile_id, addr, addr + length)
               for (tile_id, addr, length) in program.input_layout.values()]
    last_read: dict[int, int] = {}
    for index, step in enumerate(tape.steps):
        instr = step.instruction
        if instr.opcode == Opcode.LOAD or (step.core_id is None
                                           and instr.opcode == Opcode.SEND):
            lo = step.eff_addr
            hi = lo + instr.vec_width
            for slot, (tile_id, start, stop) in enumerate(regions):
                if step.tile_id == tile_id and lo < stop and hi > start:
                    last_read[slot] = index
    total = len(tape.steps)
    cuts = sorted({index + 1 for index in last_read.values()}
                  - {total})
    return tuple(cuts) + (total,)


# -- lane-sliced step bindings ---------------------------------------------
#
# These mirror repro.sim.tape's batch-generic bindings closure for
# closure, with ``array[:, a:b]`` replaced by ``array[lanes, a:b]``.
# Numpy note: mixing an integer-array index with a slice selects the
# named rows over the sliced columns; *reads* materialize a copy (so no
# aliasing hazards survive), *writes* scatter into exactly those rows.


def _bind_mvm(core, instr) -> _LaneOp:
    config = core.config
    active = [i for i in range(config.num_mvmus) if instr.mask & (1 << i)]
    if not active:
        raise TapeValidationError("recorded MVM selects no MVMU")
    dim = config.mvmu_dim
    reg = core.registers._data
    units = [(core.mvmus[i], config.xbar_in_base(i), config.xbar_out_base(i))
             for i in active]
    filter_, stride = instr.filter, instr.stride

    def step(lanes: np.ndarray, _flows: dict) -> None:
        for mvmu, in_base, out_base in units:
            x = reg[lanes, in_base:in_base + dim]
            if filter_:
                x = MVMU.shuffle_inputs(x, filter_, stride)
            reg[lanes, out_base:out_base + dim] = mvmu.execute(x)

    return step


def _bind_alu(core, instr) -> _LaneOp:
    apply_op = core.vfu._apply
    reg = core.registers._data
    op = instr.alu_op
    w = instr.vec_width
    dest, src1, src2 = instr.dest, instr.src1, instr.src2
    if op == AluOp.SUBSAMPLE:
        def step(lanes: np.ndarray, _flows: dict) -> None:
            a = reg[lanes, src1:src1 + w]  # fancy read: already a copy
            result = apply_op(op, a, reg[lanes, src2:src2 + 1])
            reg[lanes, dest:dest + result.shape[-1]] = result
    elif op.num_sources == 2:
        def step(lanes: np.ndarray, _flows: dict) -> None:
            reg[lanes, dest:dest + w] = apply_op(
                op, reg[lanes, src1:src1 + w], reg[lanes, src2:src2 + w])
    else:
        def step(lanes: np.ndarray, _flows: dict) -> None:
            reg[lanes, dest:dest + w] = apply_op(
                op, reg[lanes, src1:src1 + w], None)
    return step


def _bind_alui(core, instr) -> _LaneOp:
    apply_op = core.vfu._apply
    reg = core.registers._data
    op, w, dest, src1 = instr.alu_op, instr.vec_width, instr.dest, instr.src1
    imm_vec = core._imm_vector(instr.imm, w)  # cached, read-only

    def step(lanes: np.ndarray, _flows: dict) -> None:
        reg[lanes, dest:dest + w] = apply_op(
            op, reg[lanes, src1:src1 + w], imm_vec)

    return step


def _bind_alu_int(core, instr) -> _LaneOp:
    # The lane-isolation fix relative to the plain tape binding: read the
    # scalar from the cohort's own lane 0 (control-uniform, so any lane
    # agrees) and write only the cohort's rows — never reg[:, dest].
    sfu_execute = core.sfu.execute
    reg = core.registers._data
    op, dest, src1 = instr.alu_op, instr.dest, instr.src1

    if instr.imm_mode:
        imm = instr.imm

        def step(lanes: np.ndarray, _flows: dict) -> None:
            reg[lanes, dest] = sfu_execute(op, int(reg[lanes[0], src1]), imm)
    else:
        src2 = instr.src2

        def step(lanes: np.ndarray, _flows: dict) -> None:
            reg[lanes, dest] = sfu_execute(op, int(reg[lanes[0], src1]),
                                           int(reg[lanes[0], src2]))
    return step


def _bind_set(core, instr) -> _LaneOp:
    reg = core.registers._data
    dest, w = instr.dest, instr.vec_width
    imm_vec = core._imm_vector(instr.imm, w)  # cached, read-only

    def step(lanes: np.ndarray, _flows: dict) -> None:
        reg[lanes, dest:dest + w] = imm_vec

    return step


def _bind_copy(core, instr) -> _LaneOp:
    reg = core.registers._data
    dest, src1, w = instr.dest, instr.src1, instr.vec_width

    def step(lanes: np.ndarray, _flows: dict) -> None:
        # The fancy read materializes a copy, so overlap is always safe.
        reg[lanes, dest:dest + w] = reg[lanes, src1:src1 + w]

    return step


def _bind_load(core, mem: np.ndarray, instr, eff_addr: int) -> _LaneOp:
    reg = core.registers._data
    dest, w = instr.dest, instr.vec_width

    def step(lanes: np.ndarray, _flows: dict) -> None:
        reg[lanes, dest:dest + w] = mem[lanes, eff_addr:eff_addr + w]

    return step


def _bind_store(core, mem: np.ndarray, instr, eff_addr: int) -> _LaneOp:
    reg = core.registers._data
    src1, w = instr.src1, instr.vec_width

    def step(lanes: np.ndarray, _flows: dict) -> None:
        mem[lanes, eff_addr:eff_addr + w] = reg[lanes, src1:src1 + w]

    return step


def _bind_send(mem: np.ndarray, instr, eff_addr: int, key: tuple) -> _LaneOp:
    w = instr.vec_width

    def step(lanes: np.ndarray, flows: dict) -> None:
        # Fancy read = snapshot copy, mirroring the plain binding's
        # explicit .copy(); the payload rides the cohort's own flow.
        flows[key].append(mem[lanes, eff_addr:eff_addr + w])

    return step


def _bind_receive(mem: np.ndarray, instr, eff_addr: int,
                  key: tuple) -> _LaneOp:
    w = instr.vec_width

    def step(lanes: np.ndarray, flows: dict) -> None:
        mem[lanes, eff_addr:eff_addr + w] = flows[key].popleft()

    return step


class Cohort:
    """A group of lanes advancing through the tape in lockstep.

    Attributes:
        lanes: the node lane indices this cohort occupies.
        tag: opaque caller payload (the server parks its pending-request
            records here).
        position: next segment index to execute.
        flows: this cohort's private per-``(destination, fifo)`` NoC
            payload queues.
    """

    __slots__ = ("lanes", "tag", "position", "flows")

    def __init__(self, lanes: np.ndarray, tag: Any) -> None:
        self.lanes = lanes
        self.tag = tag
        self.position = 0
        self.flows: dict[tuple, deque] = defaultdict(deque)

    def __len__(self) -> int:
        return int(self.lanes.size)


class ContinuousBatcher:
    """One shared node serving multiple in-flight cohorts of lanes.

    Built once at server start from the engine's batch-generic tape;
    the server's continuous loop then alternates ``start_cohort`` (fill
    free lanes from the queue) and ``tick`` (advance every active
    cohort one segment; collect finished cohorts and their outputs).

    Args:
        engine: the serving engine; must be tape-replayable (anything
            :meth:`~repro.engine.InferenceEngine.warm` can tape).
        max_lanes: node batch width = most requests in flight at once.
    """

    def __init__(self, engine: "InferenceEngine", max_lanes: int) -> None:
        if max_lanes < 1:
            raise ValueError(f"max_lanes must be >= 1, got {max_lanes}")
        blocker = engine._replay_blocker()
        if blocker is not None:
            raise ContinuousUnsupported(
                f"continuous batching requires tape replay: {blocker}")
        engine.warm(batch=1)
        tape = engine.compiled.execution_tapes.get(engine._fingerprint)
        if tape is None:  # pragma: no cover - warm() guarantees a tape
            raise ContinuousUnsupported("no execution tape was recorded")
        self.engine = engine
        self.tape = tape
        self.program = engine.program
        self.max_lanes = max_lanes
        self.node = engine._fresh_node(max_lanes)
        self._register_files: list[np.ndarray] = []
        try:
            self._ops = [self._bind_one(step) for step in tape.steps]
        except (KeyError, IndexError, AttributeError) as error:
            raise TapeValidationError(
                f"tape does not match the node/program: {error}") from error
        self.boundaries = segment_boundaries(tape, self.program)
        self._free = list(range(max_lanes))
        self._cohorts: list[Cohort] = []

    # -- binding -----------------------------------------------------------

    def _track_registers(self, core) -> None:
        regs = core.registers._data
        if not any(regs is seen for seen in self._register_files):
            self._register_files.append(regs)

    def _bind_one(self, step: TapeStep) -> _LaneOp:
        tile_id, core_id, instr, eff_addr = step
        tile = self.node.tiles[tile_id]
        mem = tile.memory._data
        op = instr.opcode
        if core_id is None:
            if op == Opcode.SEND:
                return _bind_send(mem, instr, eff_addr,
                                  (instr.target, instr.fifo_id))
            if op == Opcode.RECEIVE:
                return _bind_receive(mem, instr, eff_addr,
                                     (tile_id, instr.fifo_id))
            raise TapeValidationError(
                f"unexpected tile-stream opcode {op.name} on tape")
        core = tile.cores[core_id]
        self._track_registers(core)
        if op == Opcode.MVM:
            return _bind_mvm(core, instr)
        if op == Opcode.ALU:
            return _bind_alu(core, instr)
        if op == Opcode.ALUI:
            return _bind_alui(core, instr)
        if op == Opcode.ALU_INT:
            return _bind_alu_int(core, instr)
        if op == Opcode.SET:
            return _bind_set(core, instr)
        if op == Opcode.COPY:
            return _bind_copy(core, instr)
        if op == Opcode.LOAD:
            return _bind_load(core, mem, instr, eff_addr)
        if op == Opcode.STORE:
            return _bind_store(core, mem, instr, eff_addr)
        raise TapeValidationError(
            f"unexpected core-stream opcode {op.name} on tape")

    # -- occupancy ---------------------------------------------------------

    @property
    def free_lanes(self) -> int:
        return len(self._free)

    @property
    def active_cohorts(self) -> int:
        return len(self._cohorts)

    def busy(self) -> bool:
        return bool(self._cohorts)

    def cohorts(self) -> list[Cohort]:
        """The active cohorts (crash handling fails their riders)."""
        return list(self._cohorts)

    # -- lifecycle of one cohort -------------------------------------------

    def start_cohort(self, rows: list[dict[str, np.ndarray]],
                     tag: Any = None) -> Cohort:
        """Admit ``rows`` (float input dicts, one per request) as a cohort.

        Performs the same per-run initialization a fresh replay would,
        restricted to the joining lanes: zeroed registers, re-preloaded
        constant memory, quantized inputs written to the input layout.
        """
        count = len(rows)
        if count == 0:
            raise ValueError("cannot start an empty cohort")
        if count > len(self._free):
            raise ValueError(f"{count} requests need {count} lanes; "
                             f"only {len(self._free)} free")
        lanes = np.asarray(self._free[:count], dtype=np.intp)
        del self._free[:count]
        for registers in self._register_files:
            registers[lanes, :] = 0
        for tile_id, entries in self.program.const_memory.items():
            mem = self.node.tiles[tile_id].memory._data
            for addr, values in entries:
                arr = np.atleast_1d(np.asarray(values, dtype=np.int64))
                mem[lanes, addr:addr + arr.shape[-1]] = arr[np.newaxis, :]
        for name, (tile_id, addr, length) in \
                self.program.input_layout.items():
            stacked = np.stack([np.asarray(row[name], dtype=np.float64)
                                for row in rows])
            if stacked.shape != (count, length):
                raise ValueError(
                    f"input {name!r} expects {length} values per request, "
                    f"got shape {stacked.shape}")
            words = np.asarray(self.engine.quantize(stacked),
                               dtype=np.int64)
            self.node.tiles[tile_id].memory._data[
                lanes, addr:addr + length] = words
        cohort = Cohort(lanes, tag)
        self._cohorts.append(cohort)
        return cohort

    def tick(self) -> list[tuple[Cohort, dict[str, np.ndarray]]]:
        """Advance every active cohort one segment; return the finishers.

        Each finished entry is ``(cohort, words)`` with ``words`` the
        fixed-point output rows ``(len(cohort), length)`` per output
        name, read straight off the cohort's lanes.  Finished cohorts'
        lanes return to the free pool before this call returns, so the
        caller can refill them ahead of the next tick.
        """
        finished: list[tuple[Cohort, dict[str, np.ndarray]]] = []
        for cohort in list(self._cohorts):
            start = (0 if cohort.position == 0
                     else self.boundaries[cohort.position - 1])
            stop = self.boundaries[cohort.position]
            for op in self._ops[start:stop]:
                op(cohort.lanes, cohort.flows)
            cohort.position += 1
            if cohort.position == len(self.boundaries):
                self._cohorts.remove(cohort)
                self._free.extend(int(lane) for lane in cohort.lanes)
                self._free.sort()
                words = {
                    name: self._read_output(name, cohort.lanes)
                    for name in self.program.output_layout
                }
                self.tape.replay_count += 1
                finished.append((cohort, words))
        return finished

    def _read_output(self, name: str, lanes: np.ndarray) -> np.ndarray:
        tile_id, addr, length = self.program.output_layout[name]
        mem = self.node.tiles[tile_id].memory._data
        return mem[lanes, addr:addr + length]  # fancy read: a fresh copy
