"""SLO-aware batch formation: priorities, deadlines, EDF, early close.

This is the pluggable policy layer between request intake and engine
dispatch.  :class:`~repro.serve.server.PumaServer` owns the asyncio
plumbing (futures, the arrival event, the executor); the scheduler owns
*which requests form the next batch and how long to keep the window
open*:

* **FIFO** (``"fifo"``) — arrival order, fixed ``batch_window_s`` hold.
  The pre-scheduler behavior, kept as the benchmark baseline.
* **EDF** (``"edf"``, the default) — the queue is ordered by
  ``(-priority, deadline, arrival)``: higher ``priority`` strictly
  first, earliest deadline next, arrival order last.  With no
  priorities or deadlines this degenerates to exact FIFO order, which
  is why it is safe as the default.

**Early close.**  An EDF window additionally closes *early* when the
most urgent queued deadline no longer affords waiting: with ``d`` the
earliest absolute deadline in the queue and ``s`` the EWMA-observed
service time of the batch we would dispatch (tracked per batch size by
:class:`ServiceTimeTracker`), the remaining slack is ``d - now - s``.
When slack runs out before the window does, the batch dispatches
immediately — trading batch fill for deadline attainment — and the
event counts in :attr:`SchedulerCounters.early_closes`.

Counter conservation (asserted by
``tests/test_scheduler_properties.py``): every admitted request is
eventually dispatched, shed, or drained::

    admitted == dispatched + shed + drained + len(queue)
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any

SCHEDULER_POLICIES = ("fifo", "edf")


@dataclass
class SchedulerCounters:
    """Queue-side accounting, one conservation law.

    Attributes:
        admitted: requests accepted into the queue (post-validation,
            post-admission-control).
        dispatched: requests handed to the engine in some batch.
        shed: requests removed because their deadline expired while
            queued.
        drained: requests removed administratively (server stopping
            without drain, or the batching loop crashing).
        early_closes: batch windows closed early by deadline pressure.
        refills: lanes of a continuous batch refilled from the queue at
            a step boundary (0 unless continuous batching is on).
    """

    admitted: int = 0
    dispatched: int = 0
    shed: int = 0
    drained: int = 0
    early_closes: int = 0
    refills: int = 0

    def in_balance(self, queued: int) -> bool:
        """The conservation law; ``queued`` is the live queue depth."""
        return self.admitted == (self.dispatched + self.shed
                                 + self.drained + queued)

    def as_dict(self) -> dict:
        return {
            "admitted": self.admitted,
            "dispatched": self.dispatched,
            "shed": self.shed,
            "drained": self.drained,
            "early_closes": self.early_closes,
            "refills": self.refills,
        }


class ServiceTimeTracker:
    """EWMA of observed per-batch service time, keyed by batch size.

    The server reports every engine pass (``observe(batch_size,
    seconds)``, measured on the injected clock); the scheduler asks
    ``estimate(batch_size)`` for the early-close rule.  An exact match
    is preferred; otherwise the nearest observed batch size answers
    (service time is monotone-ish in batch size, and a nearby size is a
    far better predictor than nothing).  Returns ``None`` until the
    first observation — no estimate means no early close, never a
    guessed one.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._ewma: dict[int, float] = {}

    def observe(self, batch_size: int, seconds: float) -> None:
        if batch_size < 1 or not math.isfinite(seconds) or seconds < 0:
            return
        previous = self._ewma.get(batch_size)
        if previous is None:
            self._ewma[batch_size] = seconds
        else:
            self._ewma[batch_size] = (self.alpha * seconds
                                      + (1 - self.alpha) * previous)

    def estimate(self, batch_size: int) -> float | None:
        if not self._ewma:
            return None
        if batch_size in self._ewma:
            return self._ewma[batch_size]
        nearest = min(self._ewma, key=lambda size: (abs(size - batch_size),
                                                    size))
        return self._ewma[nearest]

    def seed(self, batch_size: int, seconds: float) -> None:
        """Pin an estimate directly (deterministic tests, warm starts)."""
        self._ewma[int(batch_size)] = float(seconds)

    def snapshot(self) -> dict[int, float]:
        return dict(self._ewma)


@dataclass(order=True)
class _Entry:
    sort_key: tuple
    item: Any = field(compare=False)
    priority: int = field(compare=False, default=0)
    deadline_at: float | None = field(compare=False, default=None)


class BatchScheduler:
    """Base: a priority/deadline-aware queue plus the window-hold policy.

    Subclasses choose the ordering (``_sort_key``) and the hold rule
    (:meth:`hold_for`).  Items are opaque to the scheduler — the server
    queues its ``_Pending`` records and gets them back in dispatch
    order.
    """

    policy = "base"

    def __init__(self, *, max_batch_size: int = 16,
                 batch_window_s: float = 0.002,
                 service_times: ServiceTimeTracker | None = None) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, "
                             f"got {max_batch_size}")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        self.max_batch_size = max_batch_size
        self.batch_window_s = batch_window_s
        self.service_times = service_times or ServiceTimeTracker()
        self.counters = SchedulerCounters()
        self._heap: list[_Entry] = []
        self._seq = itertools.count()

    # -- ordering ----------------------------------------------------------

    def _sort_key(self, priority: int, deadline_at: float | None,
                  seq: int) -> tuple:
        raise NotImplementedError

    # -- queue operations --------------------------------------------------

    def push(self, item: Any, *, priority: int = 0,
             deadline_at: float | None = None) -> None:
        """Admit one request into the queue."""
        seq = next(self._seq)
        heapq.heappush(self._heap, _Entry(
            self._sort_key(priority, deadline_at, seq), item,
            priority=priority, deadline_at=deadline_at))
        self.counters.admitted += 1

    def __len__(self) -> int:
        return len(self._heap)

    def pop_batch(self, limit: int | None = None) -> list[Any]:
        """Remove and return the next batch, most urgent first."""
        limit = self.max_batch_size if limit is None else limit
        batch: list[Any] = []
        while self._heap and len(batch) < limit:
            batch.append(heapq.heappop(self._heap).item)
        self.counters.dispatched += len(batch)
        return batch

    def pop_expired(self, now: float) -> list[Any]:
        """Remove and return every queued request whose deadline passed."""
        expired = [e for e in self._heap
                   if e.deadline_at is not None and now >= e.deadline_at]
        if expired:
            self._heap = [e for e in self._heap
                          if not (e.deadline_at is not None
                                  and now >= e.deadline_at)]
            heapq.heapify(self._heap)
            self.counters.shed += len(expired)
        return [e.item for e in expired]

    def drain(self) -> list[Any]:
        """Remove and return everything queued (shutdown/crash path)."""
        drained = [e.item for e in sorted(self._heap)]
        self.counters.drained += len(drained)
        self._heap.clear()
        return drained

    # -- the hold policy ---------------------------------------------------

    def earliest_deadline(self) -> float | None:
        deadlines = [e.deadline_at for e in self._heap
                     if e.deadline_at is not None]
        return min(deadlines) if deadlines else None

    def hold_for(self, now: float, window_started_at: float) -> float:
        """Seconds to keep the forming batch open; ``<= 0`` = dispatch."""
        raise NotImplementedError

    def observe_service(self, batch_size: int, seconds: float) -> None:
        self.service_times.observe(batch_size, seconds)

    def stats(self) -> dict:
        return {
            "policy": self.policy,
            "queue_depth": len(self._heap),
            "service_time_ewma_s": {
                str(size): seconds
                for size, seconds in
                sorted(self.service_times.snapshot().items())},
            **self.counters.as_dict(),
        }


class FifoScheduler(BatchScheduler):
    """Arrival order, fixed window — the baseline policy."""

    policy = "fifo"

    def _sort_key(self, priority: int, deadline_at: float | None,
                  seq: int) -> tuple:
        return (seq,)

    def hold_for(self, now: float, window_started_at: float) -> float:
        return (window_started_at + self.batch_window_s) - now


class EdfScheduler(BatchScheduler):
    """Priority-then-earliest-deadline order with deadline-pressure close."""

    policy = "edf"

    def _sort_key(self, priority: int, deadline_at: float | None,
                  seq: int) -> tuple:
        deadline_key = math.inf if deadline_at is None else deadline_at
        return (-priority, deadline_key, seq)

    def hold_for(self, now: float, window_started_at: float) -> float:
        window_left = (window_started_at + self.batch_window_s) - now
        if window_left <= 0:
            return window_left
        earliest = self.earliest_deadline()
        if earliest is None:
            return window_left
        estimate = self.service_times.estimate(
            min(len(self._heap), self.max_batch_size))
        if estimate is None:
            # No observation yet: the deadline itself still bounds the
            # hold — never wait past the point of guaranteed failure.
            slack = earliest - now
        else:
            slack = (earliest - now) - estimate
        if slack < window_left:
            if slack <= 0:
                self.counters.early_closes += 1
            return slack
        return window_left


def make_scheduler(policy: str, *, max_batch_size: int = 16,
                   batch_window_s: float = 0.002,
                   service_times: ServiceTimeTracker | None = None,
                   ) -> BatchScheduler:
    """Build the named scheduling policy (see :data:`SCHEDULER_POLICIES`)."""
    classes = {"fifo": FifoScheduler, "edf": EdfScheduler}
    if policy not in classes:
        raise ValueError(f"unknown scheduler policy {policy!r}; "
                         f"choose from {SCHEDULER_POLICIES}")
    return classes[policy](max_batch_size=max_batch_size,
                           batch_window_s=batch_window_s,
                           service_times=service_times)
