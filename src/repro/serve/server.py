"""PumaServer: an async serving front-end with dynamic micro-batching.

The programmed crossbars are a fixed endpoint (Section 3.2.5: weights are
written once at configuration time); serving is software's job.
:class:`PumaServer` is that layer: concurrent clients submit single
inferences, the server coalesces whatever is waiting — up to
``max_batch_size`` requests, gathered for at most ``batch_window_s``
seconds — into one SIMD-over-batch pass on the
:class:`~repro.engine.InferenceEngine`, and each client gets back its own
:class:`~repro.serve.types.RunResult`.  Because batched execution is
bitwise identical to sequential single-input runs (the engine's core
guarantee), coalescing is invisible to clients except in throughput.

Usage::

    engine = InferenceEngine(model, seed=0)
    async with PumaServer(engine, max_batch_size=16) as server:
        results = await asyncio.gather(
            *(server.submit({"x": x}) for x in requests))
    print(server.counters.summary())
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.serve.sharding import ShardedEngine
from repro.serve.types import InferenceRequest, RunResult

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.engine import InferenceEngine


class DeadlineExceeded(RuntimeError):
    """The request's deadline passed before it reached an engine.

    Raised to the submitter when a deadline-carrying request is shed at
    batch-formation time (it never occupies a batch lane) or was
    already expired on arrival.  The fleet maps this to HTTP 504 with
    reason ``deadline_exceeded``.
    """


class AdmissionError(RuntimeError):
    """The server's bounded queue is full; the request was not enqueued.

    Fast rejection is the point: under a burst the client gets this
    immediately (HTTP 429 + ``Retry-After`` at the fleet layer) instead
    of queueing toward an inevitable timeout.
    """


@dataclass
class ServerCounters:
    """Aggregate serving statistics, updated per coalesced batch.

    Attributes:
        max_batch_size: the server's batching limit (denominator of
            :attr:`mean_occupancy`).
        requests_served: requests answered successfully.
        requests_failed: requests answered with an exception.
        requests_shed: deadline-expired requests failed at batch
            formation (they never occupy a lane).
        requests_rejected: requests refused at admission (queue full).
        batches_formed: simulator passes executed.
        lanes_simulated: total batch lanes across all passes (equals
            ``requests_served`` + failed lanes).
    """

    max_batch_size: int = 1
    requests_served: int = 0
    requests_failed: int = 0
    requests_shed: int = 0
    requests_rejected: int = 0
    batches_formed: int = 0
    lanes_simulated: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Average number of requests coalesced per simulator pass."""
        if self.batches_formed == 0:
            return 0.0
        return self.lanes_simulated / self.batches_formed

    @property
    def mean_occupancy(self) -> float:
        """Mean batch fill fraction relative to ``max_batch_size``."""
        return self.mean_batch_size / self.max_batch_size

    def summary(self) -> str:
        return (f"requests served: {self.requests_served}, "
                f"batches formed: {self.batches_formed}, "
                f"mean batch size: {self.mean_batch_size:.2f} "
                f"({self.mean_occupancy * 100:.0f}% of "
                f"max {self.max_batch_size})")


@dataclass
class _Pending:
    """A queued request plus the future its client is awaiting."""

    request: InferenceRequest
    future: "asyncio.Future[RunResult]" = field(repr=False)
    # Absolute loop.time() after which the request is shed, or None.
    deadline_at: float | None = None


_STOP = object()


class PumaServer:
    """Queueing + dynamic-batching front-end over one inference engine.

    Args:
        engine: the :class:`~repro.engine.InferenceEngine` to serve.  The
            engine's compiled program and seed are fixed for the server's
            lifetime (program the crossbars once, stream requests through).
        max_batch_size: most requests coalesced into one simulator pass.
        batch_window_s: how long to hold an under-full batch open waiting
            for more arrivals before dispatching it.
        num_shards: engine replicas each coalesced micro-batch is fanned
            out across (:class:`~repro.serve.sharding.ShardedEngine`);
            1 (the default) serves every batch on the single engine.
            Per-request results are bitwise identical either way.
        shard_policy: lane assignment for the fan-out (``"contiguous"``
            or ``"interleaved"``); only meaningful with ``num_shards > 1``.
        shard_executor: worker pool kind for the fan-out (``"auto"``,
            ``"thread"``, or ``"process"``).
        artifact_dir: persistent artifact store directory
            (:mod:`repro.store`).  On :meth:`start` the engine
            warm-starts from (or populates) the store — a freshly-spawned
            serving process skips compilation, crossbar programming, and
            tape recording when a prior process left an artifact.
        max_queue_depth: admission bound; when this many requests are
            already waiting, :meth:`submit` raises
            :class:`AdmissionError` instead of enqueueing (``None`` =
            unbounded, the pre-resilience behavior).

    Requests are float-first: clients submit 1-D float vectors per model
    input and receive dequantized floats (plus the fixed-point words) in
    their :class:`RunResult`.  Validation happens at ``submit`` time, so a
    malformed request fails fast in the caller instead of poisoning a
    batch.
    """

    def __init__(self, engine: "InferenceEngine", *,
                 max_batch_size: int = 16,
                 batch_window_s: float = 0.002,
                 num_shards: int = 1,
                 shard_policy: str = "contiguous",
                 shard_executor: str = "auto",
                 artifact_dir=None,
                 max_queue_depth: int | None = None) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, "
                             f"got {max_batch_size}")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, "
                             f"got {max_queue_depth}")
        self.engine = engine
        self.max_batch_size = max_batch_size
        self.batch_window_s = batch_window_s
        self.num_shards = num_shards
        self.shard_policy = shard_policy
        self.shard_executor = shard_executor
        self.artifact_dir = artifact_dir
        self.max_queue_depth = max_queue_depth
        self.counters = ServerCounters(max_batch_size=max_batch_size)
        self._queue: asyncio.Queue | None = None
        self._batcher_task: asyncio.Task | None = None
        self._sharded: ShardedEngine | None = None
        self._closed = False
        self._next_request_id = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "PumaServer":
        """Spawn the batching loop (and the shard pool); idempotent."""
        if self._batcher_task is None:
            if self.artifact_dir is not None or \
                    self.engine.artifact_dir is not None:
                # Cross-process warm start: adopt (or write) the on-disk
                # artifact before serving, with a tape pre-recorded for
                # full coalesced batches.
                self.engine.ensure_artifacts(self.artifact_dir,
                                             batch=self.max_batch_size)
            if self.num_shards > 1 and self._sharded is None:
                # Eager: fork/spawn shard workers now, from the caller's
                # thread, not lazily inside the serving executor thread.
                self._sharded = ShardedEngine(
                    self.engine, num_shards=self.num_shards,
                    shard_policy=self.shard_policy,
                    executor=self.shard_executor,
                    artifact_dir=self.artifact_dir).start()
            self._queue = asyncio.Queue()
            self._closed = False
            self._batcher_task = asyncio.create_task(self._batch_loop())
        return self

    async def stop(self, *, drain: bool = True) -> None:
        """Shut down without abandoning anyone.

        With ``drain=True`` (the default) every request already queued is
        still served before the batching loop exits — shutdown is
        invisible to clients that made it into the queue.  With
        ``drain=False`` the in-flight micro-batch (the one already
        executing on the engine) completes, but requests still waiting in
        the queue fail immediately with a clear :class:`RuntimeError`
        instead of being served — the fast path for tearing down a
        misbehaving replica.

        Either way the method guarantees **no pending future is ever
        abandoned**: even if the batching loop died mid-batch (its
        exception is re-raised here), every queued request has been
        failed with the loop's error rather than left hanging.
        """
        if self._batcher_task is None:
            return
        self._closed = True
        if not drain:
            self._fail_queued(RuntimeError(
                "PumaServer stopped before this request was served "
                "(stop(drain=False) fails queued requests; the in-flight "
                "micro-batch still completes)"))
        self._queue.put_nowait(_STOP)
        try:
            await self._batcher_task
        finally:
            self._batcher_task = None
            self._queue = None
            if self._sharded is not None:
                self._sharded.close()
                self._sharded = None

    async def __aenter__(self) -> "PumaServer":
        return await self.start()

    async def __aexit__(self, *_exc) -> None:
        await self.stop()

    # -- client API --------------------------------------------------------

    async def submit(self, inputs: dict[str, np.ndarray], *,
                     deadline_s: float | None = None) -> RunResult:
        """Submit one inference (float 1-D vectors by input name).

        Returns this request's :class:`RunResult` once the batch it was
        coalesced into completes.  Raises :class:`ValueError` immediately
        for unknown/missing input names or wrong vector lengths,
        :class:`RuntimeError` if the server is not running,
        :class:`AdmissionError` if the bounded queue is full, and
        :class:`DeadlineExceeded` if ``deadline_s`` (remaining time
        budget in seconds) runs out before the request reaches a batch.
        """
        if self._batcher_task is None or self._closed:
            raise RuntimeError("server is not running (use 'async with "
                               "PumaServer(engine):' or await start())")
        if self.max_queue_depth is not None and \
                self._queue.qsize() >= self.max_queue_depth:
            self.counters.requests_rejected += 1
            raise AdmissionError(
                f"queue full ({self.max_queue_depth} requests waiting); "
                f"retry later")
        loop = asyncio.get_running_loop()
        deadline_at = None
        if deadline_s is not None:
            if deadline_s <= 0:
                self.counters.requests_shed += 1
                raise DeadlineExceeded(
                    f"deadline expired {-deadline_s * 1000:.0f}ms before "
                    f"the request was enqueued")
            deadline_at = loop.time() + deadline_s
        request = InferenceRequest(
            inputs={name: np.asarray(values, dtype=np.float64)
                    for name, values in inputs.items()},
            request_id=self._next_request_id)
        self._next_request_id += 1
        self.engine.validate_request(request.inputs)
        future: asyncio.Future = loop.create_future()
        self._queue.put_nowait(_Pending(request, future, deadline_at))
        return await future

    # -- batching loop -----------------------------------------------------

    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        batch: list[_Pending] = []
        try:
            while True:
                first = await self._queue.get()
                if first is _STOP:
                    if self._queue.empty():
                        return
                    # Requests raced in behind the sentinel: serve them,
                    # then re-check.
                    self._queue.put_nowait(_STOP)
                    continue
                batch = [first]
                stopping = self._drain_into(batch)
                if not stopping and len(batch) < self.max_batch_size:
                    stopping = await self._wait_for_arrivals(loop, batch)
                batch = self._shed_expired(batch, loop)
                if batch:
                    await self._serve_batch(batch)
                batch = []
                if stopping:
                    self._queue.put_nowait(_STOP)
        except BaseException as error:
            # The loop itself crashed (not a per-batch engine error —
            # _serve_batch contains those).  A dead loop must not leave
            # clients awaiting futures that will never resolve: fail the
            # claimed batch and everything still queued, then surface the
            # error to stop().
            failure = RuntimeError(
                f"PumaServer batching loop crashed: "
                f"{type(error).__name__}: {error}")
            failure.__cause__ = error
            for pending in batch:
                self.counters.requests_failed += 1
                if not pending.future.done():
                    pending.future.set_exception(failure)
            self._fail_queued(failure)
            if isinstance(error, asyncio.CancelledError):
                raise
            raise failure from error

    def _shed_expired(self, batch: list, loop) -> list:
        """Fail deadline-expired requests now; return the live remainder.

        Shedding happens at batch-formation time, before a lane is
        spent: a request whose deadline already passed gets a prompt
        :class:`DeadlineExceeded` instead of riding (and slowing) a
        batch whose answer nobody is waiting for anymore.
        """
        now = loop.time()
        alive: list[_Pending] = []
        for pending in batch:
            if pending.deadline_at is not None and now >= pending.deadline_at:
                self.counters.requests_shed += 1
                if not pending.future.done():
                    pending.future.set_exception(DeadlineExceeded(
                        f"deadline passed while request "
                        f"{pending.request.request_id} waited in the "
                        f"batch queue"))
            else:
                alive.append(pending)
        return alive

    def _fail_queued(self, error: BaseException) -> None:
        """Resolve every still-queued request with ``error`` (no hangs)."""
        if self._queue is None:
            return
        requeue_stop = False
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is _STOP:
                requeue_stop = True
                continue
            self.counters.requests_failed += 1
            if not item.future.done():
                item.future.set_exception(error)
        if requeue_stop:
            self._queue.put_nowait(_STOP)

    def _drain_into(self, batch: list) -> bool:
        """Move already-queued requests into ``batch`` (no waiting).

        Returns True if the stop sentinel was seen.
        """
        while len(batch) < self.max_batch_size:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return False
            if item is _STOP:
                return True
            batch.append(item)
        return False

    async def _wait_for_arrivals(self, loop, batch: list) -> bool:
        """Hold the batch open for up to ``batch_window_s`` more seconds."""
        deadline = loop.time() + self.batch_window_s
        while len(batch) < self.max_batch_size:
            remaining = deadline - loop.time()
            if remaining <= 0:
                return False
            try:
                item = await asyncio.wait_for(self._queue.get(), remaining)
            except asyncio.TimeoutError:
                return False
            if item is _STOP:
                return True
            batch.append(item)
            if self._drain_into(batch):
                return True
        return False

    async def _serve_batch(self, batch: list) -> None:
        """One coalesced SIMD-over-batch pass; resolve every future.

        Every failure mode inside the pass — stacking, the engine run,
        lane slicing — resolves the riders' futures with the exception;
        nothing escapes to kill the batching loop.
        """
        loop = asyncio.get_running_loop()
        self.counters.batches_formed += 1
        self.counters.lanes_simulated += len(batch)
        runner = (self._sharded.predict if self._sharded is not None
                  else self.engine.predict)
        try:
            stacked = {
                name: np.stack([p.request.inputs[name] for p in batch])
                for name in batch[0].request.inputs
            }
            # The simulator pass is pure CPU; run it off-loop so new
            # requests keep queueing (and coalescing) while it executes.
            result = await loop.run_in_executor(None, runner, stacked)
        except Exception as exc:  # noqa: BLE001 - fail every rider
            self.counters.requests_failed += len(batch)
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        for index, pending in enumerate(batch):
            self.counters.requests_served += 1
            if not pending.future.done():
                pending.future.set_result(result.lane(index))

    # -- observability -----------------------------------------------------

    def stats(self) -> dict:
        """One observable snapshot of this server's health.

        Combines the per-server batching counters with the process-wide
        cache counters every serving layer shares — the execution-tape
        cache (recordings/replays/**fallbacks**), the compile cache
        (hits/misses), and the artifact store (saves/loads/rejections) —
        so an operator (or the fleet ``/metrics`` endpoint,
        :mod:`repro.fleet`) can see cache health per worker without
        poking process internals.
        """
        from repro.engine import compile_cache_info, tape_cache_info
        from repro.store import store_info

        return {
            "requests_served": self.counters.requests_served,
            "requests_failed": self.counters.requests_failed,
            "requests_shed": self.counters.requests_shed,
            "requests_rejected": self.counters.requests_rejected,
            "batches_formed": self.counters.batches_formed,
            "lanes_simulated": self.counters.lanes_simulated,
            "mean_batch_size": self.counters.mean_batch_size,
            "mean_occupancy": self.counters.mean_occupancy,
            "max_batch_size": self.max_batch_size,
            "queue_depth": (self._queue.qsize()
                            if self._queue is not None else 0),
            "running": self._batcher_task is not None and not self._closed,
            "tape_cache": tape_cache_info()._asdict(),
            "compile_cache": compile_cache_info()._asdict(),
            "artifact_store": store_info()._asdict(),
        }
