"""PumaServer: an async serving front-end with SLO-aware micro-batching.

The programmed crossbars are a fixed endpoint (Section 3.2.5: weights are
written once at configuration time); serving is software's job.
:class:`PumaServer` is that layer: concurrent clients submit single
inferences (optionally carrying a ``priority`` and a ``deadline_s``
budget), a pluggable scheduler (:mod:`repro.serve.scheduler`) orders the
queue and decides when the forming batch dispatches, and each client gets
back its own :class:`~repro.serve.types.RunResult`.  Because batched
execution is bitwise identical to sequential single-input runs (the
engine's core guarantee), coalescing is invisible to clients except in
latency and throughput.

Three scheduling modes:

* **Fixed-window FIFO** (``scheduler="fifo"``) — the original behavior:
  arrival order, ``batch_window_s`` hold.  Kept as the benchmark
  baseline.
* **EDF** (``scheduler="edf"``, the default) — priority-then-earliest-
  deadline order with an early-close rule: the window also closes when
  the most urgent queued deadline can no longer afford waiting, given
  the EWMA-observed per-batch service time.  Degenerates to exact FIFO
  when no request carries a priority or deadline.
* **Continuous** (``continuous=True``) — sequence workloads join and
  leave the active batch at recorded step boundaries
  (:mod:`repro.serve.continuous`): a lane freed at sequence end refills
  from the queue instead of idling until the longest rider drains.

All wall-clock decisions go through an injectable :class:`Clock`
(:mod:`repro.serve.clock`), so the deterministic test harness drives
windows, deadlines, and EDF order on virtual time.

Usage::

    engine = InferenceEngine(model, seed=0)
    async with PumaServer(engine, max_batch_size=16) as server:
        results = await asyncio.gather(
            *(server.submit({"x": x}, deadline_s=0.2) for x in requests))
    print(server.counters.summary())
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.serve.clock import Clock, MonotonicClock
from repro.serve.continuous import ContinuousBatcher, Cohort
from repro.serve.scheduler import BatchScheduler, make_scheduler
from repro.serve.sharding import ShardedEngine
from repro.serve.types import InferenceRequest, RunResult

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.engine import InferenceEngine


class DeadlineExceeded(RuntimeError):
    """The request's deadline passed before it reached an engine.

    Raised to the submitter when a deadline-carrying request is shed at
    batch-formation time (it never occupies a batch lane) or was
    already expired on arrival.  The fleet maps this to HTTP 504 with
    reason ``deadline_exceeded``.
    """


class AdmissionError(RuntimeError):
    """The server's bounded queue is full; the request was not enqueued.

    Fast rejection is the point: under a burst the client gets this
    immediately (HTTP 429 + ``Retry-After`` at the fleet layer) instead
    of queueing toward an inevitable timeout.
    """


@dataclass
class ServerCounters:
    """Aggregate serving statistics, updated per coalesced batch.

    Attributes:
        max_batch_size: the server's batching limit (denominator of
            :attr:`mean_occupancy`).
        requests_served: requests answered successfully.
        requests_failed: requests answered with an exception.
        requests_shed: deadline-expired requests failed at batch
            formation or on arrival (they never occupy a lane).
        requests_rejected: requests refused at admission (queue full).
        batches_formed: engine passes executed (cohorts started, in
            continuous mode).
        lanes_simulated: total batch lanes across all passes (equals
            ``requests_served`` + failed lanes).
    """

    max_batch_size: int = 1
    requests_served: int = 0
    requests_failed: int = 0
    requests_shed: int = 0
    requests_rejected: int = 0
    batches_formed: int = 0
    lanes_simulated: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Average number of requests coalesced per simulator pass."""
        if self.batches_formed == 0:
            return 0.0
        return self.lanes_simulated / self.batches_formed

    @property
    def mean_occupancy(self) -> float:
        """Mean batch fill fraction relative to ``max_batch_size``."""
        return self.mean_batch_size / self.max_batch_size

    def summary(self) -> str:
        return (f"requests served: {self.requests_served}, "
                f"batches formed: {self.batches_formed}, "
                f"mean batch size: {self.mean_batch_size:.2f} "
                f"({self.mean_occupancy * 100:.0f}% of "
                f"max {self.max_batch_size})")


@dataclass
class _Pending:
    """A queued request plus the future its client is awaiting."""

    request: InferenceRequest
    future: "asyncio.Future[RunResult]" = field(repr=False)
    # Absolute clock.now() after which the request is shed, or None.
    deadline_at: float | None = None
    priority: int = 0


class PumaServer:
    """Queueing + scheduled micro-batching front-end over one engine.

    Args:
        engine: the :class:`~repro.engine.InferenceEngine` to serve.  The
            engine's compiled program and seed are fixed for the server's
            lifetime (program the crossbars once, stream requests through).
        max_batch_size: most requests coalesced into one simulator pass
            (in continuous mode: the node's lane count — the most
            requests in flight at once).
        batch_window_s: how long to hold an under-full batch open waiting
            for more arrivals before dispatching it (the EDF early-close
            rule can only shorten this, never extend it).
        num_shards: engine replicas each coalesced micro-batch is fanned
            out across (:class:`~repro.serve.sharding.ShardedEngine`);
            1 (the default) serves every batch on the single engine.
            Per-request results are bitwise identical either way.
        shard_policy: lane assignment for the fan-out (``"contiguous"``,
            ``"interleaved"``, or ``"proportional"`` — observed-throughput
            weighted); only meaningful with ``num_shards > 1``.
        shard_executor: worker pool kind for the fan-out (``"auto"``,
            ``"thread"``, or ``"process"``).
        artifact_dir: persistent artifact store directory
            (:mod:`repro.store`).  On :meth:`start` the engine
            warm-starts from (or populates) the store — a freshly-spawned
            serving process skips compilation, crossbar programming, and
            tape recording when a prior process left an artifact.
        max_queue_depth: admission bound; when this many requests are
            already waiting, :meth:`submit` raises
            :class:`AdmissionError` instead of enqueueing (``None`` =
            unbounded, the pre-resilience behavior).
        scheduler: batch-formation policy — ``"edf"`` (default),
            ``"fifo"``, or a pre-built
            :class:`~repro.serve.scheduler.BatchScheduler` instance
            (tests seed its service-time tracker directly).
        continuous: serve via continuous batching
            (:mod:`repro.serve.continuous`): requests join/leave the
            active batch at recorded step boundaries.  Requires a
            tape-replayable engine and is mutually exclusive with
            ``num_shards > 1``.
        clock: time source for windows, deadlines, and EDF decisions
            (default: real monotonic time).  Tests inject a
            :class:`~repro.serve.clock.VirtualClock`.

    Requests are float-first: clients submit 1-D float vectors per model
    input and receive dequantized floats (plus the fixed-point words) in
    their :class:`RunResult`.  Validation happens at ``submit`` time —
    *before* any counter or queue-slot side effect — so a malformed
    request fails fast in the caller instead of poisoning a batch.
    """

    def __init__(self, engine: "InferenceEngine", *,
                 max_batch_size: int = 16,
                 batch_window_s: float = 0.002,
                 num_shards: int = 1,
                 shard_policy: str = "contiguous",
                 shard_executor: str = "auto",
                 artifact_dir=None,
                 max_queue_depth: int | None = None,
                 scheduler: str | BatchScheduler = "edf",
                 continuous: bool = False,
                 clock: Clock | None = None) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, "
                             f"got {max_batch_size}")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, "
                             f"got {max_queue_depth}")
        if continuous and num_shards > 1:
            raise ValueError(
                "continuous=True is mutually exclusive with num_shards > 1 "
                "(cohorts share one node; shard the fleet instead)")
        self.engine = engine
        self.max_batch_size = max_batch_size
        self.batch_window_s = batch_window_s
        self.num_shards = num_shards
        self.shard_policy = shard_policy
        self.shard_executor = shard_executor
        self.artifact_dir = artifact_dir
        self.max_queue_depth = max_queue_depth
        self.continuous = continuous
        self._clock: Clock = clock if clock is not None else MonotonicClock()
        if isinstance(scheduler, BatchScheduler):
            self._scheduler = scheduler
        else:
            self._scheduler = make_scheduler(
                scheduler, max_batch_size=max_batch_size,
                batch_window_s=batch_window_s)
        self.counters = ServerCounters(max_batch_size=max_batch_size)
        self._arrival: asyncio.Event | None = None
        self._batcher_task: asyncio.Task | None = None
        self._sharded: ShardedEngine | None = None
        self._batcher: ContinuousBatcher | None = None
        self._closed = False
        self._next_request_id = 0

    @property
    def scheduler(self) -> BatchScheduler:
        """The live scheduling policy (counters, service-time EWMA)."""
        return self._scheduler

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "PumaServer":
        """Spawn the batching loop (and the shard pool); idempotent."""
        if self._batcher_task is None:
            loop = asyncio.get_running_loop()
            if self.artifact_dir is not None or \
                    self.engine.artifact_dir is not None:
                # Cross-process warm start: adopt (or write) the on-disk
                # artifact before serving, with a tape pre-recorded for
                # full coalesced batches.
                self.engine.ensure_artifacts(self.artifact_dir,
                                             batch=self.max_batch_size)
            if self.num_shards > 1 and self._sharded is None:
                # Eager: fork/spawn shard workers now, from the caller's
                # thread, not lazily inside the serving executor thread.
                self._sharded = ShardedEngine(
                    self.engine, num_shards=self.num_shards,
                    shard_policy=self.shard_policy,
                    executor=self.shard_executor,
                    artifact_dir=self.artifact_dir).start()
            if self.continuous and self._batcher is None:
                # Warm-up (tape recording) is a blocking interpreter
                # pass; keep it off the event loop.
                self._batcher = await loop.run_in_executor(
                    None, ContinuousBatcher, self.engine,
                    self.max_batch_size)
            self._arrival = asyncio.Event()
            self._closed = False
            runner = (self._continuous_loop() if self.continuous
                      else self._batch_loop())
            self._batcher_task = asyncio.create_task(runner)
        return self

    async def stop(self, *, drain: bool = True) -> None:
        """Shut down without abandoning anyone.

        With ``drain=True`` (the default) every request already queued is
        still served before the batching loop exits — shutdown is
        invisible to clients that made it into the queue.  With
        ``drain=False`` the in-flight micro-batch (the one already
        executing on the engine) completes, but requests still waiting in
        the queue fail immediately with a clear :class:`RuntimeError`
        instead of being served — the fast path for tearing down a
        misbehaving replica.

        Either way the method guarantees **no pending future is ever
        abandoned**: even if the batching loop died mid-batch (its
        exception is re-raised here), every queued request has been
        failed with the loop's error rather than left hanging.
        """
        if self._batcher_task is None:
            return
        self._closed = True
        if not drain:
            self._fail_queued(RuntimeError(
                "PumaServer stopped before this request was served "
                "(stop(drain=False) fails queued requests; the in-flight "
                "micro-batch still completes)"))
        self._arrival.set()
        try:
            await self._batcher_task
        finally:
            self._batcher_task = None
            self._arrival = None
            self._batcher = None
            if self._sharded is not None:
                self._sharded.close()
                self._sharded = None

    async def __aenter__(self) -> "PumaServer":
        return await self.start()

    async def __aexit__(self, *_exc) -> None:
        await self.stop()

    # -- client API --------------------------------------------------------

    async def submit(self, inputs: dict[str, np.ndarray], *,
                     deadline_s: float | None = None,
                     priority: int = 0) -> RunResult:
        """Submit one inference (float 1-D vectors by input name).

        Args:
            inputs: 1-D float vector per model input name.
            deadline_s: remaining time budget in seconds; the request is
                shed (:class:`DeadlineExceeded`) if it has not reached an
                engine pass when the budget runs out.  Must be finite.
            priority: larger = served strictly sooner under the EDF
                scheduler (ties broken by deadline, then arrival).
                Ignored by the FIFO baseline.

        Returns this request's :class:`RunResult` once the batch it was
        coalesced into completes.  Raises :class:`ValueError` immediately
        for unknown/missing input names, wrong vector lengths, or a
        non-finite ``deadline_s``; :class:`RuntimeError` if the server is
        not running; :class:`DeadlineExceeded` if the deadline already
        expired on arrival (counted as shed — the request will never be
        servable, so it is not charged against the queue bound);
        and :class:`AdmissionError` if the bounded queue is full.

        Ordering note: all *validation* happens before any side effect —
        a rejected request never increments a counter, consumes a
        request id, or occupies a queue slot.
        """
        if self._batcher_task is None or self._closed:
            raise RuntimeError("server is not running (use 'async with "
                               "PumaServer(engine):' or await start())")
        # Pure validation first: no counter, id, or queue-slot side
        # effects until the request is known to be well-formed.
        request_inputs = {name: np.asarray(values, dtype=np.float64)
                          for name, values in inputs.items()}
        self.engine.validate_request(request_inputs)
        priority = int(priority)
        if deadline_s is not None:
            deadline_s = float(deadline_s)
            if not math.isfinite(deadline_s):
                raise ValueError(
                    f"deadline_s must be finite, got {deadline_s} "
                    f"(omit it for no deadline)")
        if deadline_s is not None and deadline_s <= 0:
            self.counters.requests_shed += 1
            raise DeadlineExceeded(
                f"deadline expired {-deadline_s * 1000:.0f}ms before "
                f"the request was enqueued")
        if self.max_queue_depth is not None and \
                len(self._scheduler) >= self.max_queue_depth:
            self.counters.requests_rejected += 1
            raise AdmissionError(
                f"queue full ({self.max_queue_depth} requests waiting); "
                f"retry later")
        deadline_at = (self._clock.now() + deadline_s
                       if deadline_s is not None else None)
        request = InferenceRequest(
            inputs=request_inputs, request_id=self._next_request_id)
        self._next_request_id += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._scheduler.push(
            _Pending(request, future, deadline_at, priority),
            priority=priority, deadline_at=deadline_at)
        self._arrival.set()
        return await future

    # -- shared loop helpers -----------------------------------------------

    async def _wait_arrival(self, timeout: float | None) -> None:
        """Park until a new arrival/stop signal, or ``timeout`` clock-secs.

        The caller must have *cleared* the arrival event before checking
        the condition it is waiting on (a submit between the check and
        this wait then completes the event immediately — no lost wakeup).
        """
        waiter = asyncio.ensure_future(self._arrival.wait())
        if timeout is None:
            await waiter
            return
        sleeper = asyncio.ensure_future(self._clock.sleep(timeout))
        _done, pending = await asyncio.wait(
            {waiter, sleeper}, return_when=asyncio.FIRST_COMPLETED)
        for task in pending:
            task.cancel()
        await asyncio.gather(*pending, return_exceptions=True)

    def _shed_expired_queued(self) -> None:
        """Shed every queued request whose deadline has passed.

        Shedding happens at batch-formation time, before a lane is
        spent: a request whose deadline already passed gets a prompt
        :class:`DeadlineExceeded` instead of riding (and slowing) a
        batch whose answer nobody is waiting for anymore.
        """
        for pending in self._scheduler.pop_expired(self._clock.now()):
            self.counters.requests_shed += 1
            if not pending.future.done():
                pending.future.set_exception(DeadlineExceeded(
                    f"deadline passed while request "
                    f"{pending.request.request_id} waited in the "
                    f"batch queue"))

    def _fail_queued(self, error: BaseException) -> None:
        """Resolve every still-queued request with ``error`` (no hangs)."""
        if self._scheduler is None:
            return
        for pending in self._scheduler.drain():
            self.counters.requests_failed += 1
            if not pending.future.done():
                pending.future.set_exception(error)

    def _crash(self, error: BaseException,
               claimed: list[_Pending]) -> RuntimeError:
        """Fail the claimed batch + queue after a loop crash; wrap it."""
        failure = RuntimeError(
            f"PumaServer batching loop crashed: "
            f"{type(error).__name__}: {error}")
        failure.__cause__ = error
        for pending in claimed:
            self.counters.requests_failed += 1
            if not pending.future.done():
                pending.future.set_exception(failure)
        self._fail_queued(failure)
        return failure

    # -- discrete batching loop --------------------------------------------

    async def _batch_loop(self) -> None:
        batch: list[_Pending] = []
        try:
            while True:
                # Outer wait: idle until work (or stop) arrives.
                while True:
                    self._arrival.clear()
                    if len(self._scheduler):
                        break
                    if self._closed:
                        return
                    await self._wait_arrival(None)
                # Formation: hold the window open per the scheduler's
                # policy (fixed for FIFO; deadline-pressure early close
                # for EDF), re-evaluated on every arrival.
                window_started_at = self._clock.now()
                while True:
                    self._arrival.clear()
                    self._shed_expired_queued()
                    depth = len(self._scheduler)
                    if depth == 0 or depth >= self.max_batch_size \
                            or self._closed:
                        break
                    hold = self._scheduler.hold_for(
                        self._clock.now(), window_started_at)
                    if hold <= 0:
                        break
                    await self._wait_arrival(hold)
                batch = self._scheduler.pop_batch(self.max_batch_size)
                if batch:
                    await self._serve_batch(batch)
                batch = []
        except BaseException as error:
            # The loop itself crashed (not a per-batch engine error —
            # _serve_batch contains those).  A dead loop must not leave
            # clients awaiting futures that will never resolve: fail the
            # claimed batch and everything still queued, then surface the
            # error to stop().
            failure = self._crash(error, batch)
            if isinstance(error, asyncio.CancelledError):
                raise
            raise failure from error

    async def _serve_batch(self, batch: list[_Pending]) -> None:
        """One coalesced SIMD-over-batch pass; resolve every future.

        Every failure mode inside the pass — stacking, the engine run,
        lane slicing — resolves the riders' futures with the exception;
        nothing escapes to kill the batching loop.
        """
        loop = asyncio.get_running_loop()
        self.counters.batches_formed += 1
        self.counters.lanes_simulated += len(batch)
        runner = (self._sharded.predict if self._sharded is not None
                  else self.engine.predict)
        try:
            stacked = {
                name: np.stack([p.request.inputs[name] for p in batch])
                for name in batch[0].request.inputs
            }
            # The simulator pass is pure CPU; run it off-loop so new
            # requests keep queueing (and coalescing) while it executes.
            started_at = self._clock.now()
            result = await loop.run_in_executor(None, runner, stacked)
            self._scheduler.observe_service(
                len(batch), self._clock.now() - started_at)
        except Exception as exc:  # noqa: BLE001 - fail every rider
            self.counters.requests_failed += len(batch)
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        for index, pending in enumerate(batch):
            self.counters.requests_served += 1
            if not pending.future.done():
                pending.future.set_result(result.lane(index))

    # -- continuous batching loop ------------------------------------------

    async def _continuous_loop(self) -> None:
        batcher = self._batcher
        loop = asyncio.get_running_loop()
        window_started_at: float | None = None
        try:
            while True:
                self._arrival.clear()
                self._shed_expired_queued()
                depth = len(self._scheduler)
                if not batcher.busy() and depth == 0:
                    window_started_at = None
                    if self._closed:
                        return
                    await self._wait_arrival(None)
                    continue
                if not batcher.busy() and not self._closed \
                        and depth < min(self.max_batch_size,
                                        batcher.max_lanes):
                    # Idle node, under-full queue: hold the window open
                    # exactly like the discrete loop.  Once cohorts are
                    # in flight, ticks happen anyway and arrivals join
                    # at the next step boundary with no extra hold.
                    if window_started_at is None:
                        window_started_at = self._clock.now()
                    hold = self._scheduler.hold_for(
                        self._clock.now(), window_started_at)
                    if hold > 0:
                        await self._wait_arrival(hold)
                        continue
                window_started_at = None
                if batcher.free_lanes and len(self._scheduler):
                    refill = batcher.busy()
                    riders = self._scheduler.pop_batch(batcher.free_lanes)
                    if riders:
                        self._start_cohort(riders, refill=refill)
                if not batcher.busy():
                    continue  # admission failed or everything shed
                finished = await loop.run_in_executor(None, batcher.tick)
                for cohort, words in finished:
                    await self._finish_cohort(cohort, words)
        except BaseException as error:
            claimed = [rider for cohort in batcher.cohorts()
                       for rider in cohort.tag[0]]
            failure = self._crash(error, claimed)
            if isinstance(error, asyncio.CancelledError):
                raise
            raise failure from error

    def _start_cohort(self, riders: list[_Pending], *,
                      refill: bool) -> None:
        """Admit ``riders`` onto free lanes as one cohort."""
        batcher = self._batcher
        try:
            cohort = batcher.start_cohort(
                [p.request.inputs for p in riders],
                tag=(riders, self._clock.now()))
        except Exception as exc:  # noqa: BLE001 - fail these riders only
            self.counters.requests_failed += len(riders)
            for pending in riders:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        self.counters.batches_formed += 1
        self.counters.lanes_simulated += len(riders)
        if refill:
            self._scheduler.counters.refills += len(riders)
        return

    async def _finish_cohort(self, cohort: Cohort,
                             words: dict[str, np.ndarray]) -> None:
        """Resolve one finished cohort's riders from its output rows."""
        riders, started_at = cohort.tag
        loop = asyncio.get_running_loop()
        try:
            # Timing stats are batch-size dependent; derive (cached on
            # the tape after first use) off-loop — a shadow simulation.
            stats = await loop.run_in_executor(
                None, self.engine._stats_for_batch, self._batcher.tape,
                len(riders))
            result = RunResult(words=words, fmt=self.engine.fmt,
                               stats=stats, batch=len(riders),
                               execution="continuous")
            lanes = [result.lane(i) for i in range(len(riders))]
        except Exception as exc:  # noqa: BLE001 - fail these riders only
            self.counters.requests_failed += len(riders)
            for pending in riders:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        self._scheduler.observe_service(
            len(riders), self._clock.now() - started_at)
        for pending, lane in zip(riders, lanes):
            self.counters.requests_served += 1
            if not pending.future.done():
                pending.future.set_result(lane)

    # -- observability -----------------------------------------------------

    def stats(self) -> dict:
        """One observable snapshot of this server's health.

        Combines the per-server batching counters and the scheduler's
        queue-side accounting (policy, admission/dispatch/shed/early-
        close counts, service-time EWMA) with the process-wide cache
        counters every serving layer shares — the execution-tape cache
        (recordings/replays/**fallbacks**), the compile cache
        (hits/misses), and the artifact store (saves/loads/rejections) —
        so an operator (or the fleet ``/metrics`` endpoint,
        :mod:`repro.fleet`) can see cache health per worker without
        poking process internals.
        """
        from repro.engine import compile_cache_info, tape_cache_info
        from repro.store import store_info

        return {
            "requests_served": self.counters.requests_served,
            "requests_failed": self.counters.requests_failed,
            "requests_shed": self.counters.requests_shed,
            "requests_rejected": self.counters.requests_rejected,
            "batches_formed": self.counters.batches_formed,
            "lanes_simulated": self.counters.lanes_simulated,
            "mean_batch_size": self.counters.mean_batch_size,
            "mean_occupancy": self.counters.mean_occupancy,
            "max_batch_size": self.max_batch_size,
            "queue_depth": len(self._scheduler),
            "running": self._batcher_task is not None and not self._closed,
            "continuous": self.continuous,
            "scheduler": self._scheduler.stats(),
            "tape_cache": tape_cache_info()._asdict(),
            "compile_cache": compile_cache_info()._asdict(),
            "artifact_store": store_info()._asdict(),
        }
