"""Sharded serving: fan one batch out across engine replicas.

PUMA's throughput story (Fig 11c/d) is spatial replication: many nodes
each hold a copy of the programmed weights and serve a slice of the
traffic.  :class:`ShardedEngine` is that data-parallel layer in software:
a ``(batch, length)`` request is split into ``num_shards`` lane subsets,
each shard runs as its own SIMD-over-batch pass on an
:class:`~repro.engine.InferenceEngine` replica — concurrently, on a
thread pool or a pool of forked worker processes — and the per-shard
:class:`~repro.serve.types.RunResult`\\ s are merged back into one result
whose output words are **bitwise identical** to a single-engine
``run_batch`` over the same inputs (lane *i* of the merged result is lane
*i* of the unsharded pass, bit for bit — the engine's batched==sequential
guarantee makes every lane independent of its batch-mates).

Merged statistics model replicas running concurrently:

* ``cycles`` — the **max** over shards (the batch finishes when the
  slowest replica does), so ``cycles_per_inference`` reflects the
  sharded throughput win;
* ``energy`` and the instruction/stall/NoC counters — **summed** over
  shards (every replica really spent them);
* per-shard stats are preserved on ``RunResult.shard_stats`` and lane
  slicing (``result.lane(i)``) works exactly as for an unsharded run.

Replication is cheap: replicas share the process-wide compile cache, the
compiled model's programmed-crossbar state, *and* its execution tapes
(:mod:`repro.sim.tape`) — a replica engine costs neither a compilation
nor a programming pass, and a shard batch size any replica has recorded
replays everywhere (each replica binds its own replayer node; the tape
itself is shared).  Worker processes are forked *after* the primary
engine is warmed, inheriting the caches copy-on-write.

Known limit (inherited from the batch engine, see ROADMAP "Batch
execution semantics"): workloads using the stochastic RANDOM op draw
per-lane noise, so their sharded outputs are reproducible but not
lane-comparable to a differently-sharded run.

Usage::

    engine = InferenceEngine(model, seed=0)
    with ShardedEngine(engine, num_shards=4) as sharded:
        result = sharded.predict({"x": x})      # (64, n) floats
    assert result.shard_stats is not None
"""

from __future__ import annotations

import itertools
import multiprocessing
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.serve.types import RunResult
from repro.sim.stats import SimulationStats

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.engine import InferenceEngine

SHARD_POLICIES = ("contiguous", "interleaved")

# Handoff registry for fork-based worker pools: the parent registers its
# engine under a unique token, workers fork and capture it into
# _WORKER_ENGINE via the initializer (initargs carry only the token —
# models and engines are never pickled), and the entry stays registered
# for the pool's whole lifetime so replacement workers respawned by
# multiprocessing.Pool after a crash fork with the engine still in
# place.  close() deregisters.  Distinct tokens keep concurrently-built
# pools from racing on a shared slot.
_FORK_ENGINES: "dict[int, InferenceEngine]" = {}
_fork_tokens = itertools.count()
_WORKER_ENGINE: "InferenceEngine | None" = None


class ShardExecutionError(RuntimeError):
    """A shard's worker raised; carries the failing shard's index."""

    def __init__(self, shard_index: int, num_shards: int,
                 cause: BaseException) -> None:
        super().__init__(
            f"shard {shard_index}/{num_shards} failed: "
            f"{type(cause).__name__}: {cause}")
        self.shard_index = shard_index


def shard_lanes(batch: int, num_shards: int,
                policy: str = "contiguous") -> list[np.ndarray]:
    """Assign batch lanes to shards; returns one index array per shard.

    The shard count is clamped to the batch size (no empty shards — a
    4-way engine serving a 2-lane micro-batch forms 2 shards), so every
    returned array is non-empty and together they partition
    ``range(batch)``.

    Policies:

    * ``"contiguous"`` — consecutive lane runs (``np.array_split``
      semantics: sizes differ by at most one);
    * ``"interleaved"`` — lane *i* goes to shard ``i % k`` (round-robin).

    >>> [lanes.tolist() for lanes in shard_lanes(5, 2)]
    [[0, 1, 2], [3, 4]]
    >>> [lanes.tolist() for lanes in shard_lanes(5, 2, "interleaved")]
    [[0, 2, 4], [1, 3]]
    >>> [lanes.tolist() for lanes in shard_lanes(2, 4)]  # clamped: no empties
    [[0], [1]]
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if policy not in SHARD_POLICIES:
        raise ValueError(
            f"unknown shard policy {policy!r}; choose from {SHARD_POLICIES}")
    k = min(num_shards, batch)
    lanes = np.arange(batch)
    if policy == "contiguous":
        return list(np.array_split(lanes, k))
    return [lanes[i::k] for i in range(k)]


def split_batch(inputs: Mapping[str, np.ndarray],
                lane_sets: Sequence[np.ndarray]
                ) -> list[dict[str, np.ndarray]]:
    """Slice a batched input dict into per-shard input dicts.

    ``(batch, length)`` inputs are split by lane; 1-D inputs (broadcast
    conditioning vectors) are passed to every shard unchanged.
    """
    shards = []
    for lanes in lane_sets:
        shard: dict[str, np.ndarray] = {}
        for name, values in inputs.items():
            arr = np.asarray(values)
            shard[name] = arr[lanes] if arr.ndim == 2 else arr
        shards.append(shard)
    return shards


def merge_stats(shard_stats: Sequence[SimulationStats]) -> SimulationStats:
    """Merge per-shard stats as concurrently-running replicas.

    Cycles take the max (the batch completes with the slowest shard);
    energy, instruction counts, stall/busy counters, and NoC traffic sum
    (each replica really executed its pass).  ``cycle_ns`` must agree
    across shards — replicas are identically configured by construction.
    """
    if not shard_stats:
        raise ValueError("merge_stats needs at least one shard")
    merged = SimulationStats(cycle_ns=shard_stats[0].cycle_ns)
    merged.cycles = max(s.cycles for s in shard_stats)
    for stats in shard_stats:
        if stats.cycle_ns != merged.cycle_ns:
            raise ValueError("shards ran at different cycle periods")
        merged.energy.merge(stats.energy)
        for opcode, count in stats.dynamic_instructions.items():
            merged.dynamic_instructions[opcode] = (
                merged.dynamic_instructions.get(opcode, 0) + count)
        for opcode, words in stats.words_by_opcode.items():
            merged.words_by_opcode[opcode] = (
                merged.words_by_opcode.get(opcode, 0) + words)
        for agent, count in stats.stall_events.items():
            merged.stall_events[agent] = (
                merged.stall_events.get(agent, 0) + count)
        for agent, cycles in stats.busy_cycles.items():
            merged.busy_cycles[agent] = (
                merged.busy_cycles.get(agent, 0) + cycles)
        merged.noc_flit_hops += stats.noc_flit_hops
        merged.noc_packets += stats.noc_packets
        merged.offchip_words += stats.offchip_words
    return merged


def merge_results(shard_results: Sequence[RunResult],
                  lane_sets: Sequence[np.ndarray],
                  batch: int) -> RunResult:
    """Stitch per-shard results back into one batch-ordered result.

    Lane ``lane_sets[s][j]`` of the merged words is row *j* of shard *s*
    — bitwise, no re-quantization.  Stats are merged per
    :func:`merge_stats`; the shards' own stats ride along on
    ``shard_stats``.
    """
    if len(shard_results) != len(lane_sets):
        raise ValueError(
            f"{len(shard_results)} results for {len(lane_sets)} shards")
    first = shard_results[0]
    words: dict[str, np.ndarray] = {}
    for name in first.words:
        rows = np.atleast_2d(np.asarray(first.words[name]))
        out = np.empty((batch, rows.shape[-1]), dtype=rows.dtype)
        for lanes, result in zip(lane_sets, shard_results):
            out[lanes] = np.atleast_2d(np.asarray(result.words[name]))
        words[name] = out
    executions = {r.execution for r in shard_results}
    return RunResult(
        words=words, fmt=first.fmt,
        stats=merge_stats([r.stats for r in shard_results]),
        batch=batch,
        shard_stats=tuple(r.stats for r in shard_results),
        execution=executions.pop() if len(executions) == 1 else None)


def _init_fork_worker(token: int) -> None:
    """Runs in each forked worker: adopt the parent's engine object."""
    global _WORKER_ENGINE
    _WORKER_ENGINE = _FORK_ENGINES[token]


def _run_shard_in_worker(inputs: dict[str, np.ndarray]
                         ) -> tuple[dict[str, np.ndarray],
                                    SimulationStats, int, str | None]:
    """One shard's pass inside a worker process (plain tuples over IPC)."""
    result = _WORKER_ENGINE.run_batch(inputs)
    return result.words, result.stats, result.batch, result.execution


class ShardedEngine:
    """Data-parallel fan-out of batched inference over engine replicas.

    Args:
        engine: the primary :class:`~repro.engine.InferenceEngine`.  Its
            model, config, crossbar model, and seed define every replica.
        num_shards: replica count a batch is split across.  Batches
            smaller than this form fewer shards; ``num_shards=1`` (or a
            1-lane batch) bypasses the pool entirely and behaves exactly
            like the plain engine.
        shard_policy: lane assignment, ``"contiguous"`` (default) or
            ``"interleaved"`` — see :func:`shard_lanes`.  Either way the
            merged result is in original lane order.
        executor: ``"process"`` (forked worker processes — real
            parallelism, the default where ``fork`` exists),
            ``"thread"`` (in-process pool; GIL-bound but dependency-free
            and exception-transparent), or ``"auto"``.
        artifact_dir: persistent artifact store directory
            (:mod:`repro.store`).  Before the pool is built the primary
            engine warm-starts from (or populates) the store, so a
            sharded server in a brand-new process skips compilation,
            crossbar programming, and tape recording.

    The worker pool is created lazily on the first sharded call — after
    warming the primary engine so forked replicas inherit the compiled
    program and programmed-crossbar state copy-on-write — and is shut
    down by :meth:`close` (or leaving the ``with`` block).
    """

    def __init__(self, engine: "InferenceEngine", *,
                 num_shards: int = 2,
                 shard_policy: str = "contiguous",
                 executor: str = "auto",
                 artifact_dir=None) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if shard_policy not in SHARD_POLICIES:
            raise ValueError(
                f"unknown shard policy {shard_policy!r}; "
                f"choose from {SHARD_POLICIES}")
        if executor not in ("auto", "thread", "process"):
            raise ValueError(
                f"executor must be 'auto', 'thread', or 'process', "
                f"got {executor!r}")
        if executor == "auto":
            executor = ("process" if "fork" in
                        multiprocessing.get_all_start_methods() else "thread")
        elif executor == "process" and \
                "fork" not in multiprocessing.get_all_start_methods():
            raise ValueError(
                "executor='process' requires the fork start method "
                "(unavailable on this platform); use 'thread'")
        if engine.seed is None:
            # seed=None asks every programming pass for fresh entropy, so
            # replicas would program *different* noisy crossbars and the
            # merged result could not equal the single-engine pass.
            raise ValueError(
                "ShardedEngine requires a seeded engine (seed is None): "
                "replicas must program identical crossbars for the merged "
                "result to be bitwise identical to the unsharded run")
        self.engine = engine
        self.num_shards = num_shards
        self.shard_policy = shard_policy
        self.executor = executor
        self.artifact_dir = artifact_dir
        self._pool = None
        self._fork_token: int | None = None
        self._replicas: "list[InferenceEngine]" = []

    # -- engine facade -----------------------------------------------------

    @property
    def fmt(self):
        return self.engine.fmt

    @property
    def program(self):
        return self.engine.program

    @property
    def compiled(self):
        return self.engine.compiled

    def quantize(self, values: np.ndarray) -> np.ndarray:
        return self.engine.quantize(values)

    def dequantize(self, words: np.ndarray) -> np.ndarray:
        return self.engine.dequantize(words)

    def validate_request(self, inputs: Mapping[str, np.ndarray]) -> None:
        self.engine.validate_request(inputs)

    # -- pool lifecycle ----------------------------------------------------

    def _make_replica(self) -> "InferenceEngine":
        """A replica engine: same compilation (cache hit), same seed."""
        from repro.engine import InferenceEngine

        primary = self.engine
        if primary.model is not None:
            return InferenceEngine(
                primary.model, primary.config, primary.options,
                crossbar_model=primary.crossbar_model, seed=primary.seed,
                execution_mode=primary.execution_mode,
                artifact_dir=primary.artifact_dir)
        return InferenceEngine.from_compiled(
            primary.compiled, primary.config,
            crossbar_model=primary.crossbar_model, seed=primary.seed,
            execution_mode=primary.execution_mode,
            artifact_dir=primary.artifact_dir)

    def _ensure_pool(self) -> None:
        if self._pool is not None:
            return
        # Warm before forking/replicating: children and replicas then
        # share the programmed-crossbar state instead of re-deriving it.
        # With an artifact store configured, warm *through* it — load the
        # on-disk state if a prior process left one, and persist ours
        # otherwise, so replicas in brand-new processes (not just forked
        # children) warm-start too.
        if self.artifact_dir is not None or self.engine.artifact_dir \
                is not None:
            self.engine.ensure_artifacts(self.artifact_dir)
        self.engine.warm()
        if self.executor == "process":
            context = multiprocessing.get_context("fork")
            token = next(_fork_tokens)
            _FORK_ENGINES[token] = self.engine
            try:
                # multiprocessing.Pool forks all workers eagerly; the
                # registry entry outlives them (until close()) so crashed
                # workers can be respawned with the engine still there.
                self._pool = context.Pool(processes=self.num_shards,
                                          initializer=_init_fork_worker,
                                          initargs=(token,))
            except BaseException:
                _FORK_ENGINES.pop(token, None)
                raise
            self._fork_token = token
        else:
            self._replicas = [self._make_replica()
                              for _ in range(self.num_shards)]
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_shards,
                thread_name_prefix="puma-shard")

    def start(self) -> "ShardedEngine":
        """Warm the primary engine and spawn the worker pool eagerly.

        Optional — the first sharded call does this lazily — but servers
        should call it at startup so worker processes fork from the main
        thread, before any event loop or executor threads exist.
        """
        self._ensure_pool()
        return self

    def close(self) -> None:
        """Shut the worker pool down; idempotent, safe after failures."""
        pool, self._pool = self._pool, None
        token, self._fork_token = self._fork_token, None
        self._replicas = []
        try:
            if isinstance(pool, ThreadPoolExecutor):
                pool.shutdown(wait=True)
            elif pool is not None:
                pool.close()
                pool.join()
        finally:
            # Deregister only after join: a worker respawned during the
            # shutdown window must still find the engine.
            if token is not None:
                _FORK_ENGINES.pop(token, None)

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    # -- execution ---------------------------------------------------------

    def predict(self, inputs: Mapping[str, np.ndarray]) -> RunResult:
        """Float-first sharded inference (mirrors ``InferenceEngine``)."""
        arrays = {name: np.asarray(values, dtype=np.float64)
                  for name, values in inputs.items()}
        return self.run_batch({name: self.engine.quantize(arr)
                               for name, arr in arrays.items()})

    def run_batch(self, inputs: Mapping[str, np.ndarray]) -> RunResult:
        """Shard, run concurrently, merge — bitwise == unsharded.

        Output words equal ``self.engine.run_batch(inputs)`` bit for bit;
        ``stats`` follows the sharded-merge rules (cycles = max over
        shards, energy/counters summed) and ``shard_stats`` carries each
        shard's own pass.
        """
        self.engine._check_names(inputs)
        batch = self.engine._infer_batch(inputs)
        lane_sets = shard_lanes(batch, self.num_shards, self.shard_policy)
        if len(lane_sets) == 1:
            return self.engine.run_batch(inputs)
        shard_inputs = split_batch(inputs, lane_sets)
        self._ensure_pool()
        if self.executor == "process":
            shard_results = self._run_shards_process(shard_inputs)
        else:
            shard_results = self._run_shards_thread(shard_inputs)
        return merge_results(shard_results, lane_sets, batch)

    def _collect(self, outcomes: "list[tuple[RunResult | None, BaseException | None]]"
                 ) -> list[RunResult]:
        """Raise the first shard failure (all shards already settled)."""
        for index, (_result, error) in enumerate(outcomes):
            if error is not None:
                raise ShardExecutionError(index, len(outcomes),
                                          error) from error
        return [result for result, _error in outcomes]

    def _run_shards_process(self, shard_inputs: list[dict[str, np.ndarray]]
                            ) -> list[RunResult]:
        handles = [self._pool.apply_async(_run_shard_in_worker, (shard,))
                   for shard in shard_inputs]
        outcomes: list = []
        for handle in handles:
            # Settle every shard before raising so no work is left
            # dangling in the pool when an error propagates.
            try:
                words, stats, shard_batch, execution = handle.get()
                outcomes.append((RunResult(words=words, fmt=self.engine.fmt,
                                           stats=stats, batch=shard_batch,
                                           execution=execution),
                                 None))
            except Exception as exc:  # noqa: BLE001 - reported per shard
                outcomes.append((None, exc))
        return self._collect(outcomes)

    def _run_shards_thread(self, shard_inputs: list[dict[str, np.ndarray]]
                           ) -> list[RunResult]:
        futures = [
            self._pool.submit(self._replicas[i % len(self._replicas)]
                              .run_batch, shard)
            for i, shard in enumerate(shard_inputs)
        ]
        outcomes: list = []
        for future in futures:
            try:
                outcomes.append((future.result(), None))
            except Exception as exc:  # noqa: BLE001 - reported per shard
                outcomes.append((None, exc))
        return self._collect(outcomes)
